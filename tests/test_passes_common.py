"""Tests of the shared optimisation passes: DCE, CSE, LICM, folding, pipelines."""

import pytest

from repro.dialects import arith, builtin, func, scf
from repro.ir import Builder, FunctionType, LambdaPass, PassManager, PassRegistry, f64, i32, index
from repro.dialects.stencil import AccessOp, ApplyOp, ReturnOp, StencilBoundsAttr, TempType
from repro.ir.core import Block
from repro.transforms.common import (
    canonicalize,
    eliminate_common_subexpressions,
    eliminate_dead_code,
    fold_constants,
    hoist_loop_invariant_code,
)


def make_function(name="f", inputs=(), outputs=()):
    kernel = func.FuncOp(name, FunctionType(list(inputs), list(outputs)))
    return kernel, Builder.at_end(kernel.body.block)


class TestDeadCodeElimination:
    def test_unused_pure_op_removed(self):
        kernel, b = make_function()
        b.insert(arith.ConstantOp.from_int(1, i32))
        b.insert(func.ReturnOp([]))
        module = builtin.ModuleOp([kernel])
        assert eliminate_dead_code(module) == 1
        assert len(kernel.body.block.ops) == 1

    def test_chain_of_dead_ops_removed(self):
        kernel, b = make_function()
        one = b.insert(arith.ConstantOp.from_int(1, i32)).result
        two = b.insert(arith.AddiOp(one, one)).result
        b.insert(arith.MuliOp(two, two))
        b.insert(func.ReturnOp([]))
        module = builtin.ModuleOp([kernel])
        assert eliminate_dead_code(module) == 3

    def test_used_and_impure_ops_kept(self):
        kernel, b = make_function(outputs=[i32])
        one = b.insert(arith.ConstantOp.from_int(1, i32)).result
        b.insert(func.CallOp("extern", [], []))
        b.insert(func.ReturnOp([one]))
        module = builtin.ModuleOp([kernel])
        assert eliminate_dead_code(module) == 0


class TestCommonSubexpressionElimination:
    def test_duplicate_constants_merged(self):
        kernel, b = make_function(outputs=[i32])
        a = b.insert(arith.ConstantOp.from_int(7, i32)).result
        c = b.insert(arith.ConstantOp.from_int(7, i32)).result
        total = b.insert(arith.AddiOp(a, c)).result
        b.insert(func.ReturnOp([total]))
        module = builtin.ModuleOp([kernel])
        assert eliminate_common_subexpressions(module) == 1
        add = next(op for op in module.walk() if isinstance(op, arith.AddiOp))
        assert add.operands[0] is add.operands[1]

    def test_different_attributes_not_merged(self):
        kernel, b = make_function()
        x = b.insert(arith.ConstantOp.from_int(1, i32)).result
        y = b.insert(arith.ConstantOp.from_int(2, i32)).result
        b.insert(arith.AddiOp(x, y))
        b.insert(func.ReturnOp([]))
        assert eliminate_common_subexpressions(builtin.ModuleOp([kernel])) == 0

    def test_stencil_access_offsets_not_conflated(self):
        """Regression: offsets (-1, 0) and (-2, 0) must stay distinct (hash(-1)==hash(-2))."""
        temp = TempType(StencilBoundsAttr([0, 0], [4, 4]), f64)
        block = Block(arg_types=[temp])
        first = AccessOp(block.args[0], [-1, 0])
        second = AccessOp(block.args[0], [-2, 0])
        block.add_op(first)
        block.add_op(second)
        total = arith.AddfOp(first.result, second.result)
        block.add_op(total)
        block.add_op(ReturnOp([total.result]))
        kernel = func.FuncOp("f", FunctionType([], []))
        kernel.body.block.add_op(
            func.ReturnOp([])
        )
        module = builtin.ModuleOp([kernel])
        # Attach the hand-built block through a region-bearing op for CSE to see it.
        from repro.ir import Region
        wrapper = ApplyOp.create(operands=[], result_types=[], regions=[Region(block)])
        kernel.body.block.insert_op_before(wrapper, kernel.body.block.ops[0])
        eliminate_common_subexpressions(module)
        accesses = [op for op in module.walk() if isinstance(op, AccessOp)]
        assert len(accesses) == 2

    def test_memory_ops_not_merged(self):
        from repro.dialects import memref
        from repro.ir import MemRefType

        kernel, b = make_function()
        buffer = b.insert(memref.AllocOp(MemRefType([4], f64))).memref
        zero = b.insert(arith.ConstantOp.from_int(0)).result
        b.insert(memref.LoadOp(buffer, [zero]))
        b.insert(memref.LoadOp(buffer, [zero]))
        b.insert(func.ReturnOp([]))
        # Loads read memory and must not be deduplicated.
        assert eliminate_common_subexpressions(builtin.ModuleOp([kernel])) == 0


class TestConstantFolding:
    def test_integer_and_float_folds(self):
        kernel, b = make_function(outputs=[i32])
        a = b.insert(arith.ConstantOp.from_int(6, i32)).result
        c = b.insert(arith.ConstantOp.from_int(7, i32)).result
        product = b.insert(arith.MuliOp(a, c)).result
        b.insert(func.ReturnOp([product]))
        module = builtin.ModuleOp([kernel])
        assert fold_constants(module) >= 1
        returned = next(op for op in module.walk() if isinstance(op, func.ReturnOp))
        producer = returned.operands[0].owner
        assert isinstance(producer, arith.ConstantOp)
        assert producer.literal() == 42

    def test_cmpi_and_select_fold(self):
        kernel, b = make_function(outputs=[i32])
        one = b.insert(arith.ConstantOp.from_int(1, i32)).result
        two = b.insert(arith.ConstantOp.from_int(2, i32)).result
        cmp = b.insert(arith.CmpiOp("slt", one, two)).result
        chosen = b.insert(arith.SelectOp(cmp, one, two)).result
        b.insert(func.ReturnOp([chosen]))
        module = builtin.ModuleOp([kernel])
        fold_constants(module)
        returned = next(op for op in module.walk() if isinstance(op, func.ReturnOp))
        assert isinstance(returned.operands[0].owner, arith.ConstantOp)
        assert returned.operands[0].owner.literal() == 1

    def test_algebraic_identities(self):
        kernel, b = make_function(outputs=[f64])
        x = kernel.body.block.add_arg(f64)
        kernel.attributes["function_type"] = FunctionType([f64], [f64])
        zero = b.insert(arith.ConstantOp.from_float(0.0, f64)).result
        one = b.insert(arith.ConstantOp.from_float(1.0, f64)).result
        plus_zero = b.insert(arith.AddfOp(x, zero)).result
        times_one = b.insert(arith.MulfOp(plus_zero, one)).result
        b.insert(func.ReturnOp([times_one]))
        module = builtin.ModuleOp([kernel])
        fold_constants(module)
        returned = next(op for op in module.walk() if isinstance(op, func.ReturnOp))
        assert returned.operands[0] is x

    def test_division_by_zero_not_crashing(self):
        kernel, b = make_function(outputs=[i32])
        a = b.insert(arith.ConstantOp.from_int(1, i32)).result
        z = b.insert(arith.ConstantOp.from_int(0, i32)).result
        q = b.insert(arith.DivSIOp(a, z)).result
        b.insert(func.ReturnOp([q]))
        fold_constants(builtin.ModuleOp([kernel]))  # must not raise


class TestLoopInvariantCodeMotion:
    def test_invariant_hoisted(self):
        kernel, b = make_function(inputs=[index, f64])
        upper, value = kernel.args
        zero = b.insert(arith.ConstantOp.from_int(0)).result
        one = b.insert(arith.ConstantOp.from_int(1)).result
        loop = scf.ForOp(zero, upper, one)
        b.insert(loop)
        inner = Builder.at_end(loop.body.block)
        invariant = inner.insert(arith.MulfOp(value, value))
        inner.insert(arith.AddfOp(invariant.result, invariant.result))
        inner.insert(scf.YieldOp([]))
        b.insert(func.ReturnOp([]))
        module = builtin.ModuleOp([kernel])
        hoisted = hoist_loop_invariant_code(module)
        assert hoisted >= 1
        assert invariant.parent_block is kernel.body.block

    def test_iv_dependent_not_hoisted(self):
        kernel, b = make_function(inputs=[index])
        zero = b.insert(arith.ConstantOp.from_int(0)).result
        one = b.insert(arith.ConstantOp.from_int(1)).result
        loop = scf.ForOp(zero, kernel.args[0], one)
        b.insert(loop)
        inner = Builder.at_end(loop.body.block)
        dependent = inner.insert(arith.AddiOp(loop.induction_variable, one))
        inner.insert(scf.YieldOp([]))
        b.insert(func.ReturnOp([]))
        hoist_loop_invariant_code(builtin.ModuleOp([kernel]))
        assert dependent.parent_block is loop.body.block


class TestPassManager:
    def test_pipeline_runs_and_reports(self, ctx):
        kernel, b = make_function()
        x = b.insert(arith.ConstantOp.from_int(2, i32)).result
        b.insert(arith.AddiOp(x, x))
        b.insert(func.ReturnOp([]))
        module = builtin.ModuleOp([kernel])
        pm = PassRegistry.parse_pipeline(ctx, "constant-folding,cse,dce")
        report = pm.run(module)
        assert len(report.statistics) == 3
        assert report.total_seconds >= 0
        assert "cse" in pm.pipeline_string()
        assert len(kernel.body.block.ops) == 1  # only the return survives

    def test_unknown_pass_rejected(self, ctx):
        with pytest.raises(KeyError):
            PassRegistry.get("does-not-exist")

    def test_lambda_pass(self, ctx):
        seen = []
        module = builtin.ModuleOp([])
        PassManager(ctx, [LambdaPass("probe", lambda c, m: seen.append(m))]).run(module)
        assert seen == [module]

    def test_canonicalize_fixpoint(self):
        kernel, b = make_function(outputs=[i32])
        a = b.insert(arith.ConstantOp.from_int(3, i32)).result
        c = b.insert(arith.ConstantOp.from_int(4, i32)).result
        s1 = b.insert(arith.AddiOp(a, c)).result
        s2 = b.insert(arith.AddiOp(a, c)).result
        total = b.insert(arith.AddiOp(s1, s2)).result
        b.insert(func.ReturnOp([total]))
        module = builtin.ModuleOp([kernel])
        canonicalize(module)
        constants = [op for op in module.walk() if isinstance(op, arith.ConstantOp)]
        assert any(op.literal() == 14 for op in constants)
