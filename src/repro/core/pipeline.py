"""The shared compilation pipeline.

``compile_stencil_program`` is the entry point every frontend uses: it takes a
*stencil-level* module (the common abstraction of fig. 1b) and a
:class:`~repro.core.targets.Target`, and progressively lowers it:

    stencil  ->  [dmp]  ->  [mpi]  ->  scf/memref/arith (+ omp / gpu / hls)

returning a :class:`CompiledProgram` that carries the lowered module, the
characteristics used by the performance models, and (for distributed targets)
the decomposition summary needed to scatter/gather data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..interp.vectorize import CompiledKernel

from ..dialects.builtin import ModuleOp
from ..ir.context import MLContext, default_context
from ..obs import compile_tracing
from ..machine.kernel_model import ProgramCharacteristics, characterize_module
from ..transforms.common import canonicalize, hoist_loop_invariant_code
from ..transforms.distribute import (
    GridSlicingStrategy,
    distribute_stencil,
    eliminate_redundant_swaps,
    lower_dmp_to_mpi,
)
from ..transforms.distribute.stencil_to_dmp import DistributionSummary
from ..transforms.mpi import lower_mpi_to_func
from ..transforms.smp import convert_scf_to_openmp, count_parallel_regions
from ..transforms.stencil import (
    HLSKernelInfo,
    count_gpu_kernels,
    infer_shapes,
    lower_stencil_to_gpu,
    lower_stencil_to_hls,
    lower_stencil_to_scf,
    stencil_precodegen_pipeline,
)
from .targets import Target, TargetKind


class CompilationError(Exception):
    """Raised when a stencil program cannot be compiled for the given target."""


@dataclass
class CompiledProgram:
    """The result of running the shared pipeline on a stencil program."""

    module: ModuleOp
    target: Target
    #: Characteristics measured on the stencil-level module (before lowering).
    characteristics: ProgramCharacteristics
    #: Number of stencil regions after fusion (== OpenMP regions / GPU kernels).
    stencil_regions: int
    #: Decomposition information for distributed targets.
    distribution: Optional[DistributionSummary] = None
    #: Structural summary of the HLS lowering for FPGA targets.
    hls_kernels: list[HLSKernelInfo] = field(default_factory=list)
    #: OpenMP parallel regions in the lowered module (smp/dmp targets).
    parallel_regions: int = 0
    #: GPU kernels in the lowered module (gpu target).
    gpu_kernels: int = 0
    #: Cache of vectorized kernels keyed by function name, so repeated
    #: ``run_local`` / ``run_distributed`` calls skip nest recompilation.
    _kernel_cache: dict[str, "CompiledKernel"] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Cache of megakernels (or their CodegenFallback) keyed by
    #: ``(function, rank, size, signature, overlap)``; see
    #: :meth:`repro.core.session.Plan.compile`.
    _megakernel_cache: dict = field(default_factory=dict, repr=False, compare=False)
    #: Lazily computed content hash (see :attr:`fingerprint`).
    _fingerprint: Optional[str] = field(default=None, repr=False, compare=False)
    #: Compile-phase trace (a :class:`repro.obs.TraceRecord` with pipeline
    #: stage and per-pass spans); merged into every traced run's timeline.
    compile_record: Optional[object] = field(default=None, repr=False, compare=False)

    def __getstate__(self) -> dict:
        """Pickle support (the process runtime ships programs to workers).

        The vectorized-kernel and megakernel caches are process-local — nests
        are keyed by operation identity and megakernels close over this
        process's buffers — so they are dropped on the wire and rebuilt
        lazily by the receiver.  The fingerprint *is* shipped: it hashes the
        printed module, so the worker's rebuilt megakernels stay keyed to the
        same program identity without re-printing.  The worker pool's
        shipping key is likewise parent-private.
        """
        state = self.__dict__.copy()
        state["_kernel_cache"] = {}
        state["_megakernel_cache"] = {}
        state.pop("_pool_program_key", None)
        return state

    @property
    def fingerprint(self) -> str:
        """A stable content hash of the lowered module + target.

        Computed once from the printed IR (the module is frozen after
        :func:`compile_stencil_program` returns) and shipped with the
        program, this keys the session's cross-run megakernel cache.
        """
        if self._fingerprint is None:
            from ..interp.codegen import program_fingerprint
            from ..ir.printer import print_module

            self._fingerprint = program_fingerprint(
                print_module(self.module) + "\n" + repr(self.target)
            )
        return self._fingerprint

    def compiled_kernel(self, function_name: str) -> "CompiledKernel":
        """The vectorized kernel for one function (compiled once, then cached).

        The cache assumes ``module`` is no longer mutated after compilation —
        which holds for every pipeline in this project, since
        :func:`compile_stencil_program` finishes all rewrites before returning.
        """
        kernel = self._kernel_cache.get(function_name)
        if kernel is None:
            from ..interp.vectorize import compile_kernel

            kernel = compile_kernel(self.module, function_name)
            self._kernel_cache[function_name] = kernel
        return kernel

    @property
    def function_names(self) -> list[str]:
        from ..dialects import func

        return [
            op.sym_name
            for op in self.module.walk()
            if isinstance(op, func.FuncOp) and not op.is_declaration
        ]


def compile_stencil_program(
    module: ModuleOp,
    target: Target,
    *,
    ctx: Optional[MLContext] = None,
) -> CompiledProgram:
    """Lower a stencil-level module for ``target`` (in place) and describe it.

    Every stage runs inside the thread-local compile-tracing scope: when a
    frontend ``compile()`` already opened one, stage spans join the
    frontend's track; otherwise this function owns the tracer.  Either way
    the resulting :class:`~repro.obs.TraceRecord` travels on
    :attr:`CompiledProgram.compile_record`.
    """
    ctx = ctx or default_context()
    with compile_tracing() as tracer:
        with tracer.span("pipeline.verify"):
            module.verify()

        # Stencil-level preparation shared by every target: the staged
        # pre-codegen pipeline (fusion, then CSE/DCE/canonicalize) runs while
        # the program is still at the stencil level, before any lowering
        # erases the apply structure.
        with tracer.span("pipeline.infer-shapes"):
            infer_shapes(module)
        with tracer.span("pipeline.precodegen"):
            stencil_precodegen_pipeline(ctx, fuse=target.fuse_stencils).run(module)
        with tracer.span("pipeline.characterize"):
            characteristics = characterize_module(module)
        stencil_regions = characteristics.stencil_regions

        distribution: Optional[DistributionSummary] = None
        hls_kernels: list[HLSKernelInfo] = []
        parallel_regions = 0
        gpu_kernels = 0

        if target.is_distributed:
            assert target.rank_grid is not None
            with tracer.span("pipeline.distribute"):
                strategy = GridSlicingStrategy(target.rank_grid)
                distribution = distribute_stencil(module, strategy)
                eliminate_redundant_swaps(module)

        with tracer.span("pipeline.lower-stencil"):
            if target.kind == TargetKind.FPGA:
                hls_kernels = lower_stencil_to_hls(
                    module, optimize=target.fpga_optimize)
                lower_stencil_to_scf(module)
            elif target.kind == TargetKind.GPU:
                gpu_kernels = lower_stencil_to_gpu(module)
            else:
                lower_stencil_to_scf(module, tile_sizes=target.tile_sizes)

        if target.is_distributed and target.lower_to_library_calls:
            with tracer.span("pipeline.lower-mpi"):
                lower_dmp_to_mpi(module)
                lower_mpi_to_func(module)

        if target.kind in (TargetKind.CPU_OPENMP, TargetKind.DISTRIBUTED):
            with tracer.span("pipeline.openmp"):
                convert_scf_to_openmp(module, num_threads=target.threads)
                parallel_regions = count_parallel_regions(module)
        if target.kind == TargetKind.GPU:
            gpu_kernels = count_gpu_kernels(module)

        with tracer.span("pipeline.finalize"):
            hoist_loop_invariant_code(module)
            canonicalize(module)
            module.verify()

        program = CompiledProgram(
            module=module,
            target=target,
            characteristics=characteristics,
            stencil_regions=stencil_regions,
            distribution=distribution,
            hls_kernels=hls_kernels,
            parallel_regions=parallel_regions,
            gpu_kernels=gpu_kernels,
        )
        program.compile_record = tracer.record()
    return program
