"""Equivalence of the execution backends: interpreter vs vectorized NumPy.

Every compiled program must produce *bit-identical* field contents and
identical ``cells_updated`` / ``halo_swaps`` statistics regardless of which
backend executes it; the vectorized backend is purely a performance feature.
"""

import numpy as np
import pytest

from repro.core import (
    ExecutionError,
    compile_stencil_program,
    cpu_target,
    dmp_target,
    fpga_target,
    gather_field,
    gpu_target,
    run_distributed,
    run_local,
    scatter_field,
    smp_target,
)
from repro.dialects import arith, builtin, func, memref, scf
from repro.interp import CompiledNest, Interpreter, compile_kernel, compile_loop_nest
from repro.ir import Builder, FunctionType, MemRefType, f64, index
from repro.transforms.distribute import GridSlicingStrategy
from repro.workloads import acoustic_wave, heat_diffusion
from tests.conftest import build_jacobi_module, jacobi_reference


def _jacobi_inputs(n, halo, seed):
    rng = np.random.default_rng(seed)
    data = np.zeros(n + 2 * halo)
    data[halo : halo + n] = rng.standard_normal(n)
    return data


def _run_both(program, make_args, steps, function=None):
    """Run one program through both backends; return both argument sets."""
    args_interp = make_args()
    args_vector = make_args()
    result_interp = run_local(
        program, [*args_interp, steps], function=function, backend="interpreter"
    )
    result_vector = run_local(
        program, [*args_vector, steps], function=function, backend="auto"
    )
    stats_interp, stats_vector = result_interp.statistics[0], result_vector.statistics[0]
    assert stats_interp.cells_updated == stats_vector.cells_updated
    assert stats_interp.kernel_launches == stats_vector.kernel_launches
    return args_interp, args_vector


class TestSingleRankEquivalence:
    @pytest.mark.parametrize(
        "target",
        [
            cpu_target(),
            cpu_target(tile_sizes=(3,)),
            smp_target(threads=4),
            gpu_target(),
            fpga_target(),
        ],
        ids=["cpu", "cpu-tiled", "smp", "gpu", "fpga"],
    )
    def test_jacobi_bit_identical_across_targets(self, target):
        program = compile_stencil_program(build_jacobi_module(), target)
        initial = _jacobi_inputs(8, 1, seed=11)
        interp_args, vector_args = _run_both(
            program, lambda: [initial.copy(), initial.copy()], steps=3
        )
        for a, b in zip(interp_args, vector_args):
            assert np.array_equal(a, b)
        latest = interp_args[0] if 3 % 2 == 0 else interp_args[1]
        assert np.allclose(latest, jacobi_reference(initial, 3))

    @pytest.mark.parametrize("seed", range(5))
    def test_jacobi_property_random_configurations(self, seed):
        """Property-style sweep: random sizes/halos/coefficients/steps."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 16))
        halo = int(rng.integers(1, 3))
        steps = int(rng.integers(0, 5))
        coefficient = float(rng.uniform(0.1, 0.9))
        program = compile_stencil_program(
            build_jacobi_module(n, halo, coefficient), cpu_target()
        )
        initial = _jacobi_inputs(n, halo, seed=seed + 100)
        interp_args, vector_args = _run_both(
            program, lambda: [initial.copy(), initial.copy()], steps=steps
        )
        for a, b in zip(interp_args, vector_args):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("space_order", [2, 4])
    def test_devito_heat_bit_identical(self, space_order):
        workload = heat_diffusion((12, 12), space_order=space_order, dtype=np.float64)
        workload.initialise(seed=5)
        operator = workload.operator(backend="xdsl")
        program = operator.compile(workload.dt)
        reference = operator._field_arguments()
        _assert_bitwise_backend_match(program, reference, steps=3)

    def test_devito_wave_inplace_buffer_bit_identical(self):
        # The wave update stores into the buffer it also reads (t-1) at the
        # same offset: the pointwise-aliasing fast path must stay exact.
        workload = acoustic_wave((8, 8, 8), space_order=2, dtype=np.float64)
        workload.initialise(seed=6)
        operator = workload.operator(backend="xdsl")
        program = operator.compile(workload.dt)
        reference = operator._field_arguments()
        _assert_bitwise_backend_match(program, reference, steps=2)


def _assert_bitwise_backend_match(program, field_arrays, steps):
    interp_args = [a.copy() for a in field_arrays]
    vector_args = [a.copy() for a in field_arrays]
    run_local(program, [*interp_args, steps], function="kernel", backend="interpreter")
    run_local(program, [*vector_args, steps], function="kernel", backend="vectorized")
    for a, b in zip(interp_args, vector_args):
        assert np.array_equal(a, b)


class TestDistributedEquivalence:
    @pytest.mark.parametrize("library_calls", [False, True], ids=["dmp", "mpi"])
    def test_distributed_jacobi_bit_identical(self, library_calls):
        initial = _jacobi_inputs(8, 1, seed=21)
        results = {}
        for backend in ("interpreter", "vectorized"):
            program = compile_stencil_program(
                build_jacobi_module(),
                dmp_target((2,), lower_to_library_calls=library_calls),
            )
            a, b = initial.copy(), initial.copy()
            result = run_distributed(program, [a, b], [3], backend=backend)
            results[backend] = (a, b, result)
        a_i, b_i, r_i = results["interpreter"]
        a_v, b_v, r_v = results["vectorized"]
        assert np.array_equal(a_i, a_v)
        assert np.array_equal(b_i, b_v)
        assert r_i.total_cells_updated == r_v.total_cells_updated
        assert r_i.total_halo_swaps == r_v.total_halo_swaps
        assert r_i.messages_sent == r_v.messages_sent


class TestRuntimeFallback:
    def _inplace_shifted_module(self):
        """u[i] = u[i] + u[i+1] over one buffer: per-cell order is observable,
        so the vectorized nest must refuse it at run time."""
        kernel = func.FuncOp("kernel", FunctionType([MemRefType([10], f64)], []))
        u = kernel.args[0]
        b = Builder.at_end(kernel.body.block)
        zero = b.insert(arith.ConstantOp.from_int(0)).result
        one = b.insert(arith.ConstantOp.from_int(1)).result
        eight = b.insert(arith.ConstantOp.from_int(8)).result
        loop = scf.ParallelOp([zero], [eight], [one])
        inner = Builder.at_end(loop.body.block)
        iv = loop.induction_variables[0]
        here = inner.insert(memref.LoadOp(u, [iv])).result
        shifted_index = inner.insert(arith.AddiOp(iv, one)).result
        there = inner.insert(memref.LoadOp(u, [shifted_index])).result
        total = inner.insert(arith.AddfOp(here, there)).result
        inner.insert(memref.StoreOp(total, u, [iv]))
        inner.insert(scf.YieldOp([]))
        b.insert(loop)
        b.insert(func.ReturnOp([]))
        return builtin.ModuleOp([kernel])

    def test_aliased_shifted_store_falls_back_bit_identical(self):
        module = self._inplace_shifted_module()
        nest = compile_loop_nest(next(op for op in module.walk() if isinstance(op, scf.ParallelOp)))
        assert nest is not None  # statically it looks vectorizable...
        kernel = compile_kernel(module, "kernel")
        data = np.arange(10, dtype=np.float64)
        expected = data.copy()
        Interpreter(module).call("kernel", expected)
        observed = data.copy()
        Interpreter(module, kernel=kernel).call("kernel", observed)
        # ...but the run-time aliasing check must bounce it to the tree
        # walker, preserving the sequential prefix-sum-like semantics.
        assert np.array_equal(observed, expected)

    def test_empty_iteration_space(self):
        program = compile_stencil_program(build_jacobi_module(), cpu_target())
        initial = _jacobi_inputs(8, 1, seed=31)
        interp_args, vector_args = _run_both(
            program, lambda: [initial.copy(), initial.copy()], steps=0
        )
        for a, b in zip(interp_args, vector_args):
            assert np.array_equal(a, b)


class TestNestCompiler:
    def test_loop_carried_for_is_rejected(self):
        module = build_jacobi_module()
        time_loop = next(op for op in module.walk() if isinstance(op, scf.ForOp))
        assert compile_loop_nest(time_loop) is None

    def test_plain_for_nest_is_accepted(self):
        kernel = func.FuncOp("fill", FunctionType([MemRefType([6], f64)], []))
        b = Builder.at_end(kernel.body.block)
        zero = b.insert(arith.ConstantOp.from_int(0)).result
        one = b.insert(arith.ConstantOp.from_int(1)).result
        six = b.insert(arith.ConstantOp.from_int(6)).result
        loop = scf.ForOp(zero, six, one)
        inner = Builder.at_end(loop.body.block)
        value = inner.insert(arith.ConstantOp.from_float(2.5, f64)).result
        inner.insert(memref.StoreOp(value, kernel.args[0], [loop.induction_variable]))
        inner.insert(scf.YieldOp([]))
        b.insert(loop)
        b.insert(func.ReturnOp([]))
        module = builtin.ModuleOp([kernel])
        nest = compile_loop_nest(loop)
        assert isinstance(nest, CompiledNest)
        data = np.zeros(6)
        Interpreter(module, kernel=compile_kernel(module, "fill")).call("fill", data)
        assert np.array_equal(data, np.full(6, 2.5))

    def test_data_dependent_control_flow_is_rejected(self):
        kernel = func.FuncOp("kernel", FunctionType([MemRefType([4], f64)], []))
        b = Builder.at_end(kernel.body.block)
        zero = b.insert(arith.ConstantOp.from_int(0)).result
        one = b.insert(arith.ConstantOp.from_int(1)).result
        four = b.insert(arith.ConstantOp.from_int(4)).result
        loop = scf.ParallelOp([zero], [four], [one])
        inner = Builder.at_end(loop.body.block)
        loaded = inner.insert(memref.LoadOp(kernel.args[0], [loop.induction_variables[0]])).result
        threshold = inner.insert(arith.ConstantOp.from_float(0.0, f64)).result
        cond = inner.insert(arith.CmpfOp("ogt", loaded, threshold)).result
        if_op = scf.IfOp(cond)
        Builder.at_end(if_op.then_region.block).insert(scf.YieldOp([]))
        inner.insert(if_op)
        inner.insert(scf.YieldOp([]))
        b.insert(loop)
        b.insert(func.ReturnOp([]))
        assert compile_loop_nest(loop) is None

    def test_kernel_cache_hit(self):
        program = compile_stencil_program(build_jacobi_module(), cpu_target())
        first = program.compiled_kernel("kernel")
        assert program.compiled_kernel("kernel") is first
        assert first.nest_count >= 1


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        program = compile_stencil_program(build_jacobi_module(), cpu_target())
        with pytest.raises(ExecutionError):
            run_local(program, [np.zeros(10), np.zeros(10), 1], backend="jit")

    def test_vectorized_requires_a_vectorizable_nest(self):
        kernel = func.FuncOp("kernel", FunctionType([], []))
        Builder.at_end(kernel.body.block).insert(func.ReturnOp([]))
        module = builtin.ModuleOp([kernel])
        # Build the CompiledProgram by hand: the full pipeline has nothing to
        # lower in a module without stencil ops.
        from repro.core.pipeline import CompiledProgram
        from repro.machine.kernel_model import characterize_module

        program = CompiledProgram(
            module=module,
            target=cpu_target(),
            characteristics=characterize_module(module),
            stencil_regions=0,
        )
        with pytest.raises(ExecutionError):
            run_local(program, [], backend="vectorized")

    def test_default_function_requires_unambiguous_name(self):
        from repro.core.pipeline import CompiledProgram
        from repro.machine.kernel_model import characterize_module

        ops = []
        for name in ("zeta", "alpha"):
            fn = func.FuncOp(name, FunctionType([], []))
            Builder.at_end(fn.body.block).insert(func.ReturnOp([]))
            ops.append(fn)
        module = builtin.ModuleOp(ops)
        program = CompiledProgram(
            module=module,
            target=cpu_target(),
            characteristics=characterize_module(module),
            stencil_regions=0,
        )
        with pytest.raises(ExecutionError, match="alpha.*zeta"):
            run_local(program, [])


class TestAsymmetricHaloScatterGather:
    def test_round_trip_with_asymmetric_halos(self):
        strategy = GridSlicingStrategy([2, 2])
        halo_lower, halo_upper = (2, 1), (1, 2)
        margin = (2, 2)
        core = (8, 6)
        global_array = np.arange(
            (core[0] + 2 * margin[0]) * (core[1] + 2 * margin[1]), dtype=float
        ).reshape(core[0] + 2 * margin[0], core[1] + 2 * margin[1])
        reconstructed = np.zeros_like(global_array)
        reconstructed[:] = global_array
        locals_ = []
        for rank in range(4):
            local = scatter_field(
                global_array, strategy, rank, halo_lower, halo_upper, margin
            )
            start, end = strategy.global_slab(core, rank)
            expected_shape = tuple(
                (e - s) + lo + hi
                for s, e, lo, hi in zip(start, end, halo_lower, halo_upper)
            )
            assert local.shape == expected_shape
            locals_.append(local)
        for rank, local in enumerate(locals_):
            gather_field(
                reconstructed, local, strategy, rank, halo_lower, halo_upper, margin
            )
        assert np.array_equal(reconstructed, global_array)


class TestReviewRegressions:
    """Regression tests for defects found in review of the vectorized backend."""

    def test_parallel_with_inner_for_counts_parallel_points_only(self):
        # scf.parallel(i: 0..4) { scf.for(j: 0..8) { b[i*?]: store } }: the
        # tree walker counts cells_updated once per *parallel* point (4), so
        # the flattened vectorized nest must not count 4*8.
        kernel = func.FuncOp("kernel", FunctionType([MemRefType([4, 8], f64)], []))
        b = Builder.at_end(kernel.body.block)
        zero = b.insert(arith.ConstantOp.from_int(0)).result
        one = b.insert(arith.ConstantOp.from_int(1)).result
        four = b.insert(arith.ConstantOp.from_int(4)).result
        eight = b.insert(arith.ConstantOp.from_int(8)).result
        loop = scf.ParallelOp([zero], [four], [one])
        outer = Builder.at_end(loop.body.block)
        inner_for = scf.ForOp(zero, eight, one)
        outer.insert(inner_for)
        outer.insert(scf.YieldOp([]))
        inner = Builder.at_end(inner_for.body.block)
        value = inner.insert(arith.ConstantOp.from_float(1.0, f64)).result
        inner.insert(
            memref.StoreOp(
                value, kernel.args[0],
                [loop.induction_variables[0], inner_for.induction_variable],
            )
        )
        inner.insert(scf.YieldOp([]))
        b.insert(loop)
        b.insert(func.ReturnOp([]))
        module = builtin.ModuleOp([kernel])
        kernel_compiled = compile_kernel(module, "kernel")
        assert kernel_compiled.nest_for(loop) is not None  # flattened 2D nest

        data_interp, data_vector = np.zeros((4, 8)), np.zeros((4, 8))
        interp = Interpreter(module)
        interp.call("kernel", data_interp)
        vector = Interpreter(module, kernel=kernel_compiled)
        vector.call("kernel", data_vector)
        assert np.array_equal(data_interp, data_vector)
        assert vector.stats.cells_updated == interp.stats.cells_updated == 4

    def test_multi_store_reads_pre_update_values(self):
        # v = a[i]; a[i] = v + 1; b[i] = v  — the second store must commit the
        # *pre-update* v, even though the first store mutates the memory the
        # loaded view points at.
        kernel = func.FuncOp(
            "kernel",
            FunctionType([MemRefType([6], f64), MemRefType([6], f64)], []),
        )
        a_arg, b_arg = kernel.args
        b = Builder.at_end(kernel.body.block)
        zero = b.insert(arith.ConstantOp.from_int(0)).result
        one = b.insert(arith.ConstantOp.from_int(1)).result
        six = b.insert(arith.ConstantOp.from_int(6)).result
        loop = scf.ParallelOp([zero], [six], [one])
        inner = Builder.at_end(loop.body.block)
        iv = loop.induction_variables[0]
        loaded = inner.insert(memref.LoadOp(a_arg, [iv])).result
        one_f = inner.insert(arith.ConstantOp.from_float(1.0, f64)).result
        bumped = inner.insert(arith.AddfOp(loaded, one_f)).result
        inner.insert(memref.StoreOp(bumped, a_arg, [iv]))
        inner.insert(memref.StoreOp(loaded, b_arg, [iv]))
        inner.insert(scf.YieldOp([]))
        b.insert(loop)
        b.insert(func.ReturnOp([]))
        module = builtin.ModuleOp([kernel])

        initial = np.arange(6, dtype=np.float64)
        a_i, b_i = initial.copy(), np.zeros(6)
        Interpreter(module).call("kernel", a_i, b_i)
        a_v, b_v = initial.copy(), np.zeros(6)
        Interpreter(module, kernel=compile_kernel(module, "kernel")).call(
            "kernel", a_v, b_v
        )
        assert np.array_equal(a_i, a_v)
        assert np.array_equal(b_i, b_v)
        assert np.array_equal(b_v, initial)  # the pre-update values

    def test_store_with_constant_axis_commits_correct_shape(self):
        # 1-D nest storing into column 3 of a 2-D memref: the store region has
        # a size-1 axis the nest does not iterate, which the commit must shape
        # correctly (and not die on broadcasting after other stores applied).
        kernel = func.FuncOp(
            "kernel",
            FunctionType([MemRefType([5], f64), MemRefType([5, 8], f64)], []),
        )
        src, dst = kernel.args
        b = Builder.at_end(kernel.body.block)
        zero = b.insert(arith.ConstantOp.from_int(0)).result
        one = b.insert(arith.ConstantOp.from_int(1)).result
        five = b.insert(arith.ConstantOp.from_int(5)).result
        three = b.insert(arith.ConstantOp.from_int(3)).result
        loop = scf.ParallelOp([zero], [five], [one])
        inner = Builder.at_end(loop.body.block)
        iv = loop.induction_variables[0]
        loaded = inner.insert(memref.LoadOp(src, [iv])).result
        inner.insert(memref.StoreOp(loaded, dst, [iv, three]))
        inner.insert(scf.YieldOp([]))
        b.insert(loop)
        b.insert(func.ReturnOp([]))
        module = builtin.ModuleOp([kernel])

        source = np.arange(5, dtype=np.float64)
        dst_i, dst_v = np.zeros((5, 8)), np.zeros((5, 8))
        Interpreter(module).call("kernel", source.copy(), dst_i)
        Interpreter(module, kernel=compile_kernel(module, "kernel")).call(
            "kernel", source.copy(), dst_v
        )
        assert np.array_equal(dst_i, dst_v)
        assert np.array_equal(dst_v[:, 3], source)
        assert dst_v.sum() == source.sum()  # nothing else written

    def test_affine_data_value_with_free_term(self):
        # store[i] = sitofp(i + n) where n is a scalar function argument: the
        # materialised affine must include the nest-external ("free") term.
        kernel = func.FuncOp(
            "kernel", FunctionType([MemRefType([4], f64), index], [])
        )
        out, n_arg = kernel.args
        b = Builder.at_end(kernel.body.block)
        zero = b.insert(arith.ConstantOp.from_int(0)).result
        one = b.insert(arith.ConstantOp.from_int(1)).result
        four = b.insert(arith.ConstantOp.from_int(4)).result
        loop = scf.ParallelOp([zero], [four], [one])
        inner = Builder.at_end(loop.body.block)
        iv = loop.induction_variables[0]
        shifted = inner.insert(arith.AddiOp(iv, n_arg)).result
        as_float = inner.insert(arith.SIToFPOp(shifted, f64)).result
        inner.insert(memref.StoreOp(as_float, out, [iv]))
        inner.insert(scf.YieldOp([]))
        b.insert(loop)
        b.insert(func.ReturnOp([]))
        module = builtin.ModuleOp([kernel])
        compiled = compile_kernel(module, "kernel")
        assert compiled.nest_count == 1

        data_interp, data_vector = np.zeros(4), np.zeros(4)
        Interpreter(module).call("kernel", data_interp, 10)
        Interpreter(module, kernel=compiled).call("kernel", data_vector, 10)
        assert np.array_equal(data_interp, [10.0, 11.0, 12.0, 13.0])
        assert np.array_equal(data_interp, data_vector)
