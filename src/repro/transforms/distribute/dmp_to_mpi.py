"""Lower dmp.swap to explicit MPI communication (paper §4.3 and fig. 4).

For every ``dmp.swap`` the pass emits, per declared exchange:

* static computation of the neighbour rank from ``mpi.comm_rank`` and the
  Cartesian grid (including an in-bounds check, so ranks on the physical
  boundary skip the exchange and set their requests to MPI_REQUEST_NULL),
* allocation of temporary send/receive buffers,
* packing of the send region (``memref.subview`` + ``memref.copy``),
* non-blocking ``mpi.isend`` / ``mpi.irecv`` pairs,

followed by a single ``mpi.waitall`` synchronisation and the unpacking copies
of the received halo regions back into the local buffer.

Message tags encode the dimension and direction of travel so that the send of
one rank matches the receive of its neighbour.
"""

from __future__ import annotations

from typing import Sequence

from ...dialects import arith, memref, mpi, scf
from ...dialects.dmp import ExchangeAttr, SwapOp
from ...ir.attributes import IntegerAttr
from ...ir.builder import Builder
from ...ir.context import MLContext
from ...ir.core import Block, Operation, Region, SSAValue
from ...ir.pass_manager import ModulePass, PassRegistry
from ...ir.types import MemRefType, i1, i32


def _travel_tag(exchange: ExchangeAttr, sending: bool) -> int:
    """A tag identifying the dimension and direction a message travels in."""
    dim = next(
        (d for d, offset in enumerate(exchange.neighbor) if offset != 0), 0
    )
    offset = exchange.neighbor[dim]
    direction_of_travel = offset if sending else -offset
    return dim * 2 + (1 if direction_of_travel > 0 else 0)


class _SwapLowering:
    """Lowers a single dmp.swap operation."""

    def __init__(self, swap: SwapOp):
        self.swap = swap
        self.builder = Builder.before(swap)
        self.grid = swap.grid
        self.exchanges = swap.swaps
        self.data = swap.data

    def _const_i32(self, value: int) -> SSAValue:
        return self.builder.insert(
            arith.ConstantOp(IntegerAttr(value, i32), i32)
        ).result

    def run(self) -> None:
        if not self.exchanges:
            self.swap.erase()
            return
        data_type = self.data.type
        if not isinstance(data_type, MemRefType):
            raise ValueError("dmp.swap data must be a memref for the MPI lowering")
        element_type = data_type.element_type

        rank = self.builder.insert(mpi.CommRankOp()).rank
        request_count = 2 * len(self.exchanges)
        requests = self.builder.insert(mpi.AllocateRequestsOp(request_count)).requests

        in_bounds_flags: list[SSAValue] = []
        recv_buffers: list[SSAValue] = []
        send_buffers: list[SSAValue] = []

        for exchange_index, exchange in enumerate(self.exchanges):
            in_bounds, neighbor = self._neighbor_of(rank, exchange)
            in_bounds_flags.append(in_bounds)

            buffer_type = MemRefType(exchange.size, element_type)
            send_buffer = self.builder.insert(memref.AllocOp(buffer_type)).memref
            recv_buffer = self.builder.insert(memref.AllocOp(buffer_type)).memref
            send_buffers.append(send_buffer)
            recv_buffers.append(recv_buffer)

            send_request = self.builder.insert(
                mpi.GetRequestOp(requests, 2 * exchange_index)
            ).results[0]
            recv_request = self.builder.insert(
                mpi.GetRequestOp(requests, 2 * exchange_index + 1)
            ).results[0]

            then_block = Block()
            then_builder = Builder.at_end(then_block)
            send_offsets, send_sizes = exchange.send_region
            send_view = then_builder.insert(
                memref.SubviewOp(self.data, send_offsets, send_sizes)
            ).result
            then_builder.insert(memref.CopyOp(send_view, send_buffer))
            send_unwrap = then_builder.insert(mpi.UnwrapMemrefOp(send_buffer))
            recv_unwrap = then_builder.insert(mpi.UnwrapMemrefOp(recv_buffer))
            send_tag = then_builder.insert(
                arith.ConstantOp(IntegerAttr(_travel_tag(exchange, True), i32), i32)
            ).result
            recv_tag = then_builder.insert(
                arith.ConstantOp(IntegerAttr(_travel_tag(exchange, False), i32), i32)
            ).result
            then_builder.insert(
                mpi.IsendOp(
                    send_unwrap.ptr, send_unwrap.count, send_unwrap.dtype,
                    neighbor, send_tag, send_request,
                )
            )
            then_builder.insert(
                mpi.IrecvOp(
                    recv_unwrap.ptr, recv_unwrap.count, recv_unwrap.dtype,
                    neighbor, recv_tag, recv_request,
                )
            )
            then_builder.insert(scf.YieldOp([]))

            else_block = Block()
            else_builder = Builder.at_end(else_block)
            else_builder.insert(mpi.NullRequestOp(send_request))
            else_builder.insert(mpi.NullRequestOp(recv_request))
            else_builder.insert(scf.YieldOp([]))

            self.builder.insert(
                scf.IfOp(in_bounds, [], Region(then_block), Region(else_block))
            )

        waitall_count = self._const_i32(request_count)
        self.builder.insert(mpi.WaitallOp(requests, waitall_count))

        # Copy-back phase: unpack every received halo region.
        for exchange, in_bounds, recv_buffer, send_buffer in zip(
            self.exchanges, in_bounds_flags, recv_buffers, send_buffers
        ):
            then_block = Block()
            then_builder = Builder.at_end(then_block)
            recv_offsets, recv_sizes = exchange.recv_region
            recv_view = then_builder.insert(
                memref.SubviewOp(self.data, recv_offsets, recv_sizes)
            ).result
            then_builder.insert(memref.CopyOp(recv_buffer, recv_view))
            then_builder.insert(scf.YieldOp([]))
            self.builder.insert(scf.IfOp(in_bounds, [], Region(then_block)))
            self.builder.insert(memref.DeallocOp(send_buffer))
            self.builder.insert(memref.DeallocOp(recv_buffer))

        self.swap.erase()

    def _neighbor_of(
        self, rank: SSAValue, exchange: ExchangeAttr
    ) -> tuple[SSAValue, SSAValue]:
        """Emit IR computing (neighbour exists?, neighbour rank) for an exchange."""
        grid = self.grid
        strides = _row_major_strides(grid.shape)

        in_bounds: SSAValue | None = None
        neighbor = rank
        for dim, offset in enumerate(exchange.neighbor):
            if offset == 0:
                continue
            stride = self._const_i32(strides[dim])
            extent = self._const_i32(grid.shape[dim])
            coordinate = self.builder.insert(
                arith.RemSIOp(
                    self.builder.insert(arith.DivSIOp(rank, stride)).result, extent
                )
            ).result
            shifted = self.builder.insert(
                arith.AddiOp(coordinate, self._const_i32(offset))
            ).result
            zero = self._const_i32(0)
            lower_ok = self.builder.insert(arith.CmpiOp("sge", shifted, zero)).result
            upper_ok = self.builder.insert(arith.CmpiOp("slt", shifted, extent)).result
            dim_ok = self.builder.insert(arith.AndIOp(lower_ok, upper_ok, i1)).result
            in_bounds = (
                dim_ok
                if in_bounds is None
                else self.builder.insert(arith.AndIOp(in_bounds, dim_ok, i1)).result
            )
            step = self._const_i32(offset * strides[dim])
            neighbor = self.builder.insert(arith.AddiOp(neighbor, step)).result
        if in_bounds is None:
            in_bounds = self.builder.insert(
                arith.ConstantOp(IntegerAttr(1, i1), i1)
            ).result
        return in_bounds, neighbor


def _row_major_strides(shape: Sequence[int]) -> list[int]:
    strides = [1] * len(shape)
    for dim in range(len(shape) - 2, -1, -1):
        strides[dim] = strides[dim + 1] * shape[dim + 1]
    return strides


def lower_dmp_to_mpi(module: Operation) -> int:
    """Lower every dmp.swap under ``module``; return the number lowered."""
    swaps = [op for op in module.walk() if isinstance(op, SwapOp)]
    for swap in swaps:
        _SwapLowering(swap).run()
    return len(swaps)


class ConvertDMPToMPIPass(ModulePass):
    """Lower declarative halo exchanges to non-blocking MPI communication."""

    name = "convert-dmp-to-mpi"

    def apply(self, ctx: MLContext, module: Operation) -> None:
        lower_dmp_to_mpi(module)


PassRegistry.register("convert-dmp-to-mpi", ConvertDMPToMPIPass)
