"""FPGA dataflow performance model (paper Table 1, Stencil-HMLS).

Two configurations are modelled:

* *initial*: the unchanged Von Neumann formulation placed on the FPGA - the
  loop is not pipelined across stencil accesses, and every access pays the
  external DDR latency.  Throughput is cycles-bound at roughly
  ``points * ddr_latency`` cycles per cell.
* *optimized*: the compiler restructures the kernel into dataflow stages with
  a 3D shift buffer; the pipeline computes one cell per cycle (II = 1) and
  reads a single new value from DDR per cycle, so throughput is
  ``min(clock * efficiency, DDR bandwidth limit)`` cells per second, divided
  by the number of stencil regions that must run back to back.
"""

from __future__ import annotations

from dataclasses import dataclass

from .kernel_model import ProgramCharacteristics
from .specs import FPGASpec


@dataclass
class FPGAEstimate:
    """Predicted FPGA execution."""

    seconds: float
    cells_updated: float
    cycles_per_cell: float

    @property
    def gpoints_per_second(self) -> float:
        return self.cells_updated / self.seconds / 1e9 if self.seconds > 0 else 0.0


def estimate_fpga(
    program: ProgramCharacteristics,
    timesteps: int,
    fpga: FPGASpec,
    *,
    optimized: bool,
    dtype_bytes: int = 4,
) -> FPGAEstimate:
    """Estimate FPGA execution time of a stencil program."""
    clock = fpga.cycles_per_second()
    total_seconds = 0.0
    total_cells = program.cells_per_step * timesteps
    cycles_per_cell_acc = 0.0

    if optimized:
        # The dataflow transformation chains stencil regions into pipelines;
        # on-chip resources (DSPs / BRAM for shift buffers) bound how many
        # regions fit one pipeline, so long kernels need several passes.
        passes = max(1, -(-program.stencil_regions // 8))
        cells = program.cells_per_step
        cycles_per_cell = passes / fpga.pipeline_efficiency
        ddr_limited = passes * (dtype_bytes * cells) / (fpga.ddr_bandwidth_gbs * 1e9)
        total_seconds = max(cells * cycles_per_cell / clock, ddr_limited)
        cycles_per_cell_acc = cycles_per_cell
    else:
        for apply_chars in program.applies:
            cells = apply_chars.cells_per_step
            # Unpipelined: every stencil access is an individual DDR transaction.
            cycles_per_cell = apply_chars.stencil_points * fpga.ddr_latency_cycles
            total_seconds += cells * cycles_per_cell / clock
            cycles_per_cell_acc += cycles_per_cell

    return FPGAEstimate(
        seconds=total_seconds * timesteps,
        cells_updated=total_cells,
        cycles_per_cell=cycles_per_cell_acc,
    )
