"""Textual printer for the IR.

Prints operations in an MLIR-like *generic* syntax::

    %0 = "arith.constant"() {"value" = 42 : i32} : () -> (i32)
    %1 = "arith.addi"(%0, %0) : (i32, i32) -> (i32)

Dialect-defined attributes and types are printed as ``#dialect.name<...>`` and
``!dialect.name<...>`` where the angle-bracket payload is produced by the
attribute's ``print_parameters`` method.  The output round-trips through
:mod:`repro.ir.parser`.
"""

from __future__ import annotations

import io

from .attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    DenseArrayAttr,
    DenseIntOrFPElementsAttr,
    DictionaryAttr,
    FloatAttr,
    FloatData,
    IntAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttribute,
    UnitAttr,
)
from .core import Block, Operation, Region, SSAValue
from .types import (
    Float16Type,
    Float32Type,
    Float64Type,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    NoneType,
    TensorType,
    VectorType,
    DYNAMIC,
)


class Printer:
    """Stateful printer assigning stable names to SSA values."""

    def __init__(self):
        self._value_names: dict[int, str] = {}
        self._used_names: set[str] = set()
        self._next_id = 0

    # -- value naming --------------------------------------------------------
    def _name_of(self, value: SSAValue) -> str:
        key = id(value)
        if key in self._value_names:
            return self._value_names[key]
        if value.name_hint and value.name_hint not in self._used_names:
            name = value.name_hint
        else:
            name = str(self._next_id)
            self._next_id += 1
            while name in self._used_names:
                name = str(self._next_id)
                self._next_id += 1
        self._value_names[key] = name
        self._used_names.add(name)
        return name

    # -- attribute / type printing ---------------------------------------------
    def print_type(self, type_: Attribute) -> str:
        if isinstance(type_, IntegerType):
            return f"i{type_.width}"
        if isinstance(type_, IndexType):
            return "index"
        if isinstance(type_, Float16Type):
            return "f16"
        if isinstance(type_, Float32Type):
            return "f32"
        if isinstance(type_, Float64Type):
            return "f64"
        if isinstance(type_, NoneType):
            return "none"
        if isinstance(type_, FunctionType):
            ins = ", ".join(self.print_type(t) for t in type_.inputs)
            outs = ", ".join(self.print_type(t) for t in type_.outputs)
            return f"({ins}) -> ({outs})"
        if isinstance(type_, (MemRefType, TensorType, VectorType)):
            keyword = {
                MemRefType: "memref",
                TensorType: "tensor",
                VectorType: "vector",
            }[type(type_)]
            dims = "x".join(
                "?" if d == DYNAMIC else str(d) for d in type_.shape
            )
            sep = "x" if type_.shape else ""
            return f"{keyword}<{dims}{sep}{self.print_type(type_.element_type)}>"
        if hasattr(type_, "print_parameters"):
            params = type_.print_parameters(self)  # type: ignore[attr-defined]
            if params:
                return f"!{type_.name}<{params}>"
            return f"!{type_.name}"
        raise NotImplementedError(f"cannot print type {type_!r}")

    def print_attribute(self, attr: Attribute) -> str:
        if isinstance(attr, TypeAttribute):
            return self.print_type(attr)
        if isinstance(attr, IntegerAttr):
            return f"{attr.value} : {self.print_type(attr.type)}"
        if isinstance(attr, FloatAttr):
            return f"{_format_float(attr.value)} : {self.print_type(attr.type)}"
        if isinstance(attr, BoolAttr):
            return "true" if attr.data else "false"
        if isinstance(attr, IntAttr):
            return str(attr.data)
        if isinstance(attr, FloatData):
            return _format_float(attr.data)
        if isinstance(attr, StringAttr):
            return '"' + attr.data.replace("\\", "\\\\").replace('"', '\\"') + '"'
        if isinstance(attr, UnitAttr):
            return "unit"
        if isinstance(attr, SymbolRefAttr):
            return f"@{attr.root}"
        if isinstance(attr, ArrayAttr):
            return "[" + ", ".join(self.print_attribute(a) for a in attr) + "]"
        if isinstance(attr, DictionaryAttr):
            inner = ", ".join(
                f'"{k}" = {self.print_attribute(v)}' for k, v in attr.data.items()
            )
            return "{" + inner + "}"
        if isinstance(attr, DenseArrayAttr):
            elems = ", ".join(str(e) for e in attr.data)
            return f"array<{self.print_type(attr.element_type)}: {elems}>"
        if isinstance(attr, DenseIntOrFPElementsAttr):
            elems = ", ".join(str(e) for e in attr.data)
            return f"dense<[{elems}]> : {self.print_type(attr.type)}"
        if hasattr(attr, "print_parameters"):
            params = attr.print_parameters(self)  # type: ignore[attr-defined]
            if params:
                return f"#{attr.name}<{params}>"
            return f"#{attr.name}"
        raise NotImplementedError(f"cannot print attribute {attr!r}")

    # -- operation printing ---------------------------------------------------------
    def print_op(self, op: Operation, indent: int = 0) -> str:
        out = io.StringIO()
        self._print_op(op, out, indent)
        return out.getvalue()

    def _print_op(self, op: Operation, out: io.StringIO, indent: int) -> None:
        pad = "  " * indent
        out.write(pad)
        if op.results:
            out.write(", ".join(f"%{self._name_of(r)}" for r in op.results))
            out.write(" = ")
        out.write(f'"{op.name}"')
        out.write("(")
        out.write(", ".join(f"%{self._name_of(o)}" for o in op.operands))
        out.write(")")
        if op.regions:
            out.write(" (")
            for i, region in enumerate(op.regions):
                if i:
                    out.write(", ")
                self._print_region(region, out, indent)
            out.write(")")
        if op.attributes:
            out.write(" {")
            out.write(
                ", ".join(
                    f'"{key}" = {self.print_attribute(value)}'
                    for key, value in op.attributes.items()
                )
            )
            out.write("}")
        in_types = ", ".join(self.print_type(o.type) for o in op.operands)
        out_types = ", ".join(self.print_type(r.type) for r in op.results)
        out.write(f" : ({in_types}) -> ({out_types})")

    def _print_region(self, region: Region, out: io.StringIO, indent: int) -> None:
        out.write("{\n")
        for block in region.blocks:
            self._print_block(block, out, indent + 1)
        out.write("  " * indent + "}")

    def _print_block(self, block: Block, out: io.StringIO, indent: int) -> None:
        pad = "  " * indent
        args = ", ".join(
            f"%{self._name_of(a)} : {self.print_type(a.type)}" for a in block.args
        )
        out.write(f"{pad}^bb(")
        out.write(args)
        out.write("):\n")
        for op in block.ops:
            self._print_op(op, out, indent + 1)
            out.write("\n")


def _format_float(value: float) -> str:
    if value != value or value in (float("inf"), float("-inf")):
        return repr(value)
    text = repr(float(value))
    if "e" in text or "." in text or "inf" in text or "nan" in text:
        return text
    return text + ".0"


def print_op(op: Operation) -> str:
    """Print a single operation (and everything nested) to a string."""
    return Printer().print_op(op)


def print_module(module: Operation) -> str:
    """Print a module operation to a string, ending with a newline."""
    text = Printer().print_op(module)
    if not text.endswith("\n"):
        text += "\n"
    return text
