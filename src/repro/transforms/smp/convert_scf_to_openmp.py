"""Lower scf.parallel loops to OpenMP parallel regions.

This mirrors MLIR's ``convert-scf-to-openmp`` including its limitation called
out in the paper's evaluation: *each* ``scf.parallel`` becomes its *own*
``omp.parallel`` region with an implicit barrier at the end, so programs with
many small stencil regions (tracer advection: 18 regions) pay a fork/join +
barrier cost per region, visible as ``kmp_wait_template`` time.  The cost
model consumes the region count; the interpreter executes the loops
sequentially (deterministically), which keeps numerical results identical.
"""

from __future__ import annotations

from typing import Optional

from ...dialects import omp, scf
from ...ir.context import MLContext
from ...ir.core import Block, Operation, Region
from ...ir.pass_manager import ModulePass, PassRegistry


def convert_scf_to_openmp(module: Operation, num_threads: Optional[int] = None) -> int:
    """Wrap every top-level scf.parallel into an omp.parallel region."""
    converted = 0
    for parallel in list(module.walk()):
        if not isinstance(parallel, scf.ParallelOp):
            continue
        if parallel.parent is None:
            continue
        # GPU-mapped loops are not OpenMP targets.
        if "gpu_kernel" in parallel.attributes:
            continue
        # Reduction loops (scf.parallel with init values / results) keep their
        # scf form: omp.wsloop has no reduction clause in this minimal dialect.
        if parallel.results:
            continue
        parent_block = parallel.parent_block
        assert parent_block is not None

        region_block = Block()
        omp_region = omp.ParallelOp(Region(region_block), num_threads=num_threads)
        parent_block.insert_op_before(omp_region, parallel)

        wsloop = omp.WsLoopOp(
            list(parallel.lower_bounds),
            list(parallel.upper_bounds),
            list(parallel.steps),
            body=Region(Block(arg_types=[a.type for a in parallel.body.block.args])),
        )
        region_block.add_op(wsloop)
        region_block.add_op(omp.BarrierOp())
        region_block.add_op(omp.TerminatorOp())

        # Move the loop body into the wsloop, remapping induction variables.
        source_block = parallel.body.block
        target_block = wsloop.body.block
        for old_arg, new_arg in zip(source_block.args, target_block.args):
            old_arg.replace_by(new_arg)
        for op in list(source_block.ops):
            source_block.detach_op(op)
            if isinstance(op, scf.YieldOp):
                target_block.add_op(omp.YieldOp(list(op.operands)))
                op.drop_all_references()
            else:
                target_block.add_op(op)
        if not target_block.ops or not isinstance(target_block.last_op, omp.YieldOp):
            target_block.add_op(omp.YieldOp([]))

        parallel.erase()
        converted += 1
    return converted


def count_parallel_regions(module: Operation) -> int:
    """How many OpenMP parallel regions (fork/join + barrier) the module has."""
    return sum(1 for op in module.walk() if isinstance(op, omp.ParallelOp))


class ConvertSCFToOpenMPPass(ModulePass):
    """Map each scf.parallel onto its own OpenMP parallel region (MLIR-style)."""

    name = "convert-scf-to-openmp"

    def __init__(self, num_threads: Optional[int] = None):
        self.num_threads = num_threads

    def apply(self, ctx: MLContext, module: Operation) -> None:
        convert_scf_to_openmp(module, self.num_threads)


PassRegistry.register("convert-scf-to-openmp", ConvertSCFToOpenMPPass)
