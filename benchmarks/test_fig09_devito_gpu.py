"""Figure 9: heat/wave kernels on a V100 — OpenACC-Devito vs the xDSL CUDA path."""

import numpy as np
import pytest

from bench_helpers import attach_rows
from repro.core import compile_stencil_program, default_session, gpu_target
from repro.evaluation import figure9_devito_gpu
from repro.workloads import heat_diffusion


@pytest.mark.benchmark(group="figure9")
def test_figure9_rows(benchmark):
    rows = benchmark(figure9_devito_gpu)
    attach_rows(benchmark, "figure9", rows)
    three_d = [r for r in rows if r["ndim"] == 3]
    assert all(r["speedup_xdsl_over_openacc"] > 1.3 for r in three_d)
    two_d = [r for r in rows if r["ndim"] == 2]
    assert all(r["speedup_xdsl_over_openacc"] <= 1.3 for r in two_d)


@pytest.mark.benchmark(group="figure9-execution")
def test_gpu_lowered_execution(benchmark):
    """Compile for the GPU target and execute the (simulated) kernel launches."""
    workload = heat_diffusion((16, 16), space_order=2, dtype=np.float64)
    module = workload.operator(backend="xdsl").stencil_module(dt=workload.dt)
    program = compile_stencil_program(module, gpu_target())
    assert program.gpu_kernels == 1

    def run():
        u0 = np.zeros((18, 18))
        u0[8, 8] = 1.0
        u1 = u0.copy()
        return default_session().run(program, [u0, u1, 2])

    result = benchmark(run)
    assert result.statistics[0].kernel_launches == 2
    assert result.statistics[0].host_synchronizations == 2
