"""The PSyclone xDSL backend: PSy-IR -> stencil dialect.

Mirrors §5.2.1: stencils are identified in the Fortran loop nests, each loop
nest becomes one ``stencil.apply`` (with accesses derived from the array
subscripts), and the surrounding iteration (e.g. the tracer-advection outer
loop of 100 iterations) becomes an ``scf.for`` around the stencil sequence.
Arrays become ``!stencil.field`` kernel arguments shared by all stencils.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...core import CompiledProgram, ExecutionConfig, ExecutionResult, Session, Target

from ...dialects import arith, builtin, func, scf, stencil
from ...ir import Builder, FunctionType, f32, f64, index
from .fortran_parser import parse_fortran
from .psyir import (
    ArrayReference,
    Assignment,
    BinaryOperation,
    Comparison,
    Literal,
    Loop,
    Merge,
    Reference,
    Schedule,
    UnaryOperation,
)

#: Fortran relational operators -> ordered arith.cmpf predicates.
_CMPF_PREDICATES = {
    ">": "ogt", "<": "olt", ">=": "oge", "<=": "ole", "==": "oeq", "/=": "one",
}


class StencilExtractionError(Exception):
    """Raised when a loop nest cannot be recognised as a stencil."""


@dataclass
class ExtractedStencil:
    """One stencil identified in the Fortran source."""

    output: str
    inputs: list[str]
    assignment: Assignment
    loop_variables: tuple[str, ...]

    @property
    def accesses(self) -> list[ArrayReference]:
        found: list[ArrayReference] = []

        def visit(node) -> None:
            if isinstance(node, ArrayReference):
                found.append(node)
            elif isinstance(node, (BinaryOperation, Comparison)):
                visit(node.lhs)
                visit(node.rhs)
            elif isinstance(node, UnaryOperation):
                visit(node.operand)
            elif isinstance(node, Merge):
                visit(node.true_value)
                visit(node.false_value)
                visit(node.condition)

        visit(self.assignment.rhs)
        return found

    def halo(self) -> int:
        radius = 0
        for access in self.accesses:
            for offset in access.offsets:
                radius = max(radius, abs(offset))
        return radius


def extract_stencils(schedule: Schedule) -> list[ExtractedStencil]:
    """Identify stencil computations in the loop nests of a schedule."""
    stencils: list[ExtractedStencil] = []
    for node in schedule.body:
        if not isinstance(node, Loop):
            continue
        loop_variables: list[str] = []
        current = node
        while True:
            loop_variables.append(current.variable)
            body = current.body
            if len(body) == 1 and isinstance(body[0], Loop):
                current = body[0]
                continue
            break
        assignments = [stmt for stmt in current.body if isinstance(stmt, Assignment)]
        if not assignments:
            raise StencilExtractionError(
                "innermost loop body contains no array assignments"
            )
        for assignment in assignments:
            inputs: list[str] = []

            def visit(expr) -> None:
                if isinstance(expr, ArrayReference) and expr.name not in inputs:
                    inputs.append(expr.name)
                elif isinstance(expr, (BinaryOperation, Comparison)):
                    visit(expr.lhs)
                    visit(expr.rhs)
                elif isinstance(expr, UnaryOperation):
                    visit(expr.operand)
                elif isinstance(expr, Merge):
                    visit(expr.true_value)
                    visit(expr.false_value)
                    visit(expr.condition)

            visit(assignment.rhs)
            stencils.append(
                ExtractedStencil(
                    output=assignment.lhs.name,
                    inputs=inputs,
                    assignment=assignment,
                    loop_variables=tuple(reversed(loop_variables)),
                )
            )
    if not stencils:
        raise StencilExtractionError("no stencil loop nests found in the subroutine")
    return stencils


class PsycloneXDSLBackend:
    """Compile a Fortran kernel to a stencil-level module."""

    def __init__(self, *, dtype=np.float32):
        self.element_type = f32 if np.dtype(dtype) == np.float32 else f64

    def build_module(
        self,
        source_or_schedule: str | Schedule,
        shape: Sequence[int],
        *,
        iterations: int = 1,
        scalars: Optional[dict[str, float]] = None,
    ) -> builtin.ModuleOp:
        """Build the stencil-level module for a kernel over ``shape`` grid points."""
        schedule = (
            source_or_schedule
            if isinstance(source_or_schedule, Schedule)
            else parse_fortran(source_or_schedule)
        )
        scalars = scalars or {}
        stencils = extract_stencils(schedule)
        shape = tuple(int(s) for s in shape)
        rank = len(shape)
        halo = max((s.halo() for s in stencils), default=0)
        halo = max(halo, 1)

        field_bounds = stencil.StencilBoundsAttr([-halo] * rank, [s + halo for s in shape])
        store_bounds = stencil.StencilBoundsAttr([0] * rank, list(shape))
        field_type = stencil.FieldType(field_bounds, self.element_type)
        temp_type = stencil.TempType(store_bounds, self.element_type)

        array_names = schedule.array_names()
        arg_types = [field_type] * len(array_names) + [index]
        kernel = func.FuncOp(schedule.name, FunctionType(arg_types, []))
        builder = Builder.at_end(kernel.body.block)
        field_args = {name: arg for name, arg in zip(array_names, kernel.args)}
        iterations_arg = kernel.args[len(array_names)]

        zero = builder.insert(arith.ConstantOp.from_int(0)).result
        one = builder.insert(arith.ConstantOp.from_int(1)).result
        outer = scf.ForOp(zero, iterations_arg, one)
        builder.insert(outer)
        builder.insert(func.ReturnOp([]))
        body = Builder.at_end(outer.body.block)

        for extracted in stencils:
            loads = {
                name: body.insert(stencil.LoadOp(field_args[name]))
                for name in extracted.inputs
            }
            apply_op = stencil.ApplyOp(
                [loads[name].result for name in extracted.inputs], [temp_type]
            )
            body.insert(apply_op)
            apply_builder = Builder.at_end(apply_op.body.block)
            operand_index = {name: i for i, name in enumerate(extracted.inputs)}
            loop_variables = extracted.loop_variables

            def emit(node):
                if isinstance(node, Literal):
                    return apply_builder.insert(
                        arith.ConstantOp.from_float(node.value, self.element_type)
                    ).result
                if isinstance(node, Reference):
                    if node.name not in scalars:
                        raise StencilExtractionError(
                            f"scalar {node.name!r} needs a value (pass it via scalars=...)"
                        )
                    return apply_builder.insert(
                        arith.ConstantOp.from_float(scalars[node.name], self.element_type)
                    ).result
                if isinstance(node, UnaryOperation):
                    operand = emit(node.operand)
                    return apply_builder.insert(arith.NegfOp(operand)).result
                if isinstance(node, ArrayReference):
                    offsets = _offsets_in_dimension_order(node, loop_variables)
                    region_arg = apply_op.region_args[operand_index[node.name]]
                    return apply_builder.insert(
                        stencil.AccessOp(region_arg, offsets)
                    ).result
                if isinstance(node, BinaryOperation):
                    lhs = emit(node.lhs)
                    rhs = emit(node.rhs)
                    op_cls = {
                        "+": arith.AddfOp, "-": arith.SubfOp,
                        "*": arith.MulfOp, "/": arith.DivfOp,
                    }[node.operator]
                    return apply_builder.insert(op_cls(lhs, rhs)).result
                if isinstance(node, Comparison):
                    lhs = emit(node.lhs)
                    rhs = emit(node.rhs)
                    predicate = _CMPF_PREDICATES[node.operator]
                    return apply_builder.insert(
                        arith.CmpfOp(predicate, lhs, rhs)
                    ).result
                if isinstance(node, Merge):
                    condition = emit(node.condition)
                    true_value = emit(node.true_value)
                    false_value = emit(node.false_value)
                    return apply_builder.insert(
                        arith.SelectOp(condition, true_value, false_value)
                    ).result
                raise StencilExtractionError(f"cannot lower PSy-IR node {node!r}")

            result = emit(extracted.assignment.rhs)
            apply_builder.insert(stencil.ReturnOp([result]))
            body.insert(
                stencil.StoreOp(
                    apply_op.results[0], field_args[extracted.output], store_bounds
                )
            )

        body.insert(scf.YieldOp([]))
        return builtin.ModuleOp([kernel])

    def compile(
        self,
        source_or_schedule: "str | Schedule",
        shape: Sequence[int],
        *,
        target: Optional["Target"] = None,
        iterations: int = 1,
        scalars: Optional[dict[str, float]] = None,
    ) -> "CompiledProgram":
        """Build the stencil module and run the shared pipeline for ``target``.

        The PSyclone analogue of ``Operator.compile``: one call from Fortran
        source (or a parsed schedule) to a :class:`~repro.core.CompiledProgram`
        ready for a session plan.
        """
        from ...core import compile_stencil_program, cpu_target
        from ...obs import compile_tracing

        with compile_tracing() as tracer:
            span = tracer.begin("psyclone.lower")
            module = self.build_module(
                source_or_schedule, shape, iterations=iterations, scalars=scalars
            )
            tracer.end("psyclone.lower", span)
            program = compile_stencil_program(module, target or cpu_target())
            program.compile_record = tracer.record()
        return program

    def run(
        self,
        program: "CompiledProgram",
        fields: Sequence[np.ndarray],
        iterations: int,
        *,
        function: Optional[str] = None,
        config: Optional["ExecutionConfig"] = None,
        session: Optional["Session"] = None,
        **overrides: Any,
    ) -> "ExecutionResult":
        """Execute a compiled kernel through the Session API.

        ``fields`` are the (halo-extended) global buffers in the kernel's
        argument order — i.e. ``schedule.array_names()`` order — updated in
        place.  ``config``/``overrides`` configure the execution
        (:class:`~repro.core.ExecutionConfig` fields); ``session`` defaults
        to the process-wide default session.
        """
        from ...core import default_session

        active = session or default_session()
        # function=None defers to the plan's default-function resolution
        # (prefer "kernel", error on ambiguity).
        return active.run(
            program, list(fields), [int(iterations)],
            function=function, config=config, **overrides,
        )


def _offsets_in_dimension_order(
    reference: ArrayReference, loop_variables: tuple[str, ...]
) -> list[int]:
    """Map Fortran subscripts (i, j, k) onto stencil offsets in dimension order.

    Fortran arrays are indexed ``(i, j, k)`` with ``i`` the fastest dimension
    while our fields use row-major logical coordinates; the loop nest order
    (outermost first) defines the dimension order of the stencil.
    """
    by_variable = {idx.variable: idx.offset for idx in reference.indices}
    offsets = []
    for variable in loop_variables:
        offsets.append(by_variable.get(variable, 0))
    return offsets
