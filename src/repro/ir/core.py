"""Core IR structures: SSA values, operations, blocks and regions.

The design follows MLIR/xDSL: a *module* is an operation containing a region,
regions contain blocks, blocks contain operations, and operations use and
define SSA values.  Def-use chains are maintained eagerly so that rewrites can
ask "who uses this value?" in O(#uses).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Optional, Sequence, TypeVar

from .attributes import Attribute, TypeAttribute

if TYPE_CHECKING:  # pragma: no cover
    from .traits import OpTrait

OpT = TypeVar("OpT", bound="Operation")


class IRError(Exception):
    """Raised for structural IR violations (bad erasure, dangling uses, ...)."""


class Use:
    """A single use of an SSA value: (operation, operand index)."""

    __slots__ = ("operation", "index")

    def __init__(self, operation: "Operation", index: int):
        self.operation = operation
        self.index = index

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Use)
            and self.operation is other.operation
            and self.index == other.index
        )

    def __hash__(self) -> int:
        return hash((id(self.operation), self.index))


class SSAValue:
    """A value in SSA form; defined once, used by operations."""

    __slots__ = ("type", "uses", "name_hint")

    def __init__(self, type: TypeAttribute):
        self.type = type
        self.uses: list[Use] = []
        self.name_hint: Optional[str] = None

    # -- def-use maintenance ------------------------------------------------
    def add_use(self, use: Use) -> None:
        self.uses.append(use)

    def remove_use(self, use: Use) -> None:
        for i, existing in enumerate(self.uses):
            if existing == use:
                del self.uses[i]
                return
        raise IRError("attempting to remove a use that is not registered")

    def replace_by(self, value: "SSAValue") -> None:
        """Replace every use of this value by ``value``."""
        for use in list(self.uses):
            use.operation.set_operand(use.index, value)
        if value.name_hint is None:
            value.name_hint = self.name_hint

    @property
    def owner(self) -> "Operation | Block":
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        hint = self.name_hint or "?"
        return f"<{type(self).__name__} %{hint}: {self.type}>"


class OpResult(SSAValue):
    """An SSA value produced by an operation."""

    __slots__ = ("op", "index")

    def __init__(self, type: TypeAttribute, op: "Operation", index: int):
        super().__init__(type)
        self.op = op
        self.index = index

    @property
    def owner(self) -> "Operation":
        return self.op


class BlockArgument(SSAValue):
    """An SSA value that is an argument of a block (e.g. a loop induction var)."""

    __slots__ = ("block", "index")

    def __init__(self, type: TypeAttribute, block: "Block", index: int):
        super().__init__(type)
        self.block = block
        self.index = index

    @property
    def owner(self) -> "Block":
        return self.block


class Operation:
    """Base class of all operations.

    Subclasses set the class attribute ``name`` to ``"dialect.opname"`` and
    usually provide a convenience ``__init__``.  The generic constructor
    :meth:`create` is always available (and used by the parser).
    """

    name: str = "builtin.unregistered"
    traits: frozenset = frozenset()

    __slots__ = ("_operands", "results", "attributes", "regions", "parent")

    def __init__(
        self,
        operands: Sequence[SSAValue] = (),
        result_types: Sequence[TypeAttribute] = (),
        attributes: Optional[dict[str, Attribute]] = None,
        regions: Sequence["Region"] = (),
    ):
        self._operands: list[SSAValue] = []
        self.results: list[OpResult] = [
            OpResult(t, self, i) for i, t in enumerate(result_types)
        ]
        self.attributes: dict[str, Attribute] = dict(attributes or {})
        self.regions: list[Region] = []
        self.parent: Optional[Block] = None
        for operand in operands:
            self._append_operand(operand)
        for region in regions:
            self.add_region(region)

    # -- construction helpers ------------------------------------------------
    @classmethod
    def create(
        cls: type[OpT],
        operands: Sequence[SSAValue] = (),
        result_types: Sequence[TypeAttribute] = (),
        attributes: Optional[dict[str, Attribute]] = None,
        regions: Sequence["Region"] = (),
    ) -> OpT:
        """Create an operation bypassing the subclass ``__init__``."""
        op = cls.__new__(cls)
        Operation.__init__(op, operands, result_types, attributes, regions)
        return op

    # -- operand management ---------------------------------------------------
    @property
    def operands(self) -> tuple[SSAValue, ...]:
        return tuple(self._operands)

    @operands.setter
    def operands(self, new_operands: Sequence[SSAValue]) -> None:
        for i, operand in enumerate(self._operands):
            operand.remove_use(Use(self, i))
        self._operands = []
        for operand in new_operands:
            self._append_operand(operand)

    def _append_operand(self, operand: SSAValue) -> None:
        if not isinstance(operand, SSAValue):
            raise IRError(
                f"operand of {self.name} must be an SSAValue, got {type(operand).__name__}"
            )
        index = len(self._operands)
        self._operands.append(operand)
        operand.add_use(Use(self, index))

    def set_operand(self, index: int, operand: SSAValue) -> None:
        self._operands[index].remove_use(Use(self, index))
        self._operands[index] = operand
        operand.add_use(Use(self, index))

    # -- region management ----------------------------------------------------
    def add_region(self, region: "Region") -> None:
        if region.parent is not None:
            raise IRError("region is already attached to an operation")
        region.parent = self
        self.regions.append(region)

    # -- navigation -----------------------------------------------------------
    @property
    def parent_block(self) -> Optional["Block"]:
        return self.parent

    @property
    def parent_op(self) -> Optional["Operation"]:
        if self.parent is not None and self.parent.parent is not None:
            return self.parent.parent.parent
        return None

    @property
    def parent_region(self) -> Optional["Region"]:
        if self.parent is not None:
            return self.parent.parent
        return None

    def get_parent_of_type(self, op_type: type[OpT]) -> Optional[OpT]:
        """Walk up the parent chain looking for an enclosing op of a given type."""
        current = self.parent_op
        while current is not None:
            if isinstance(current, op_type):
                return current
            current = current.parent_op
        return None

    def walk(self, reverse: bool = False) -> Iterator["Operation"]:
        """Yield this operation and all nested operations, pre-order."""
        yield self
        regions = reversed(self.regions) if reverse else self.regions
        for region in regions:
            for block in (reversed(region.blocks) if reverse else region.blocks):
                ops = list(block.ops)
                if reverse:
                    ops = list(reversed(ops))
                for op in ops:
                    yield from op.walk(reverse=reverse)

    # -- traits ---------------------------------------------------------------
    def has_trait(self, trait: "type[OpTrait] | OpTrait") -> bool:
        import inspect

        if inspect.isclass(trait):
            return any(isinstance(t, trait) for t in self.traits)
        return trait in self.traits

    def get_trait(self, trait_type: type) -> Optional["OpTrait"]:
        for t in self.traits:
            if isinstance(t, trait_type):
                return t
        return None

    # -- mutation -------------------------------------------------------------
    def detach(self) -> None:
        """Remove this operation from its parent block without dropping operands."""
        if self.parent is not None:
            self.parent.detach_op(self)

    def drop_all_references(self) -> None:
        """Drop operand uses of this operation and of all nested operations."""
        for i, operand in enumerate(self._operands):
            operand.remove_use(Use(self, i))
        self._operands = []
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.ops):
                    op.drop_all_references()

    def erase(self, safe: bool = True) -> None:
        """Detach and destroy this operation.

        With ``safe=True`` (the default) erasing an operation whose results
        still have uses raises :class:`IRError`.
        """
        if safe:
            for result in self.results:
                if result.uses:
                    raise IRError(
                        f"erasing {self.name} whose result still has "
                        f"{len(result.uses)} use(s)"
                    )
        self.detach()
        self.drop_all_references()

    def clone(
        self, value_map: Optional[dict[SSAValue, SSAValue]] = None
    ) -> "Operation":
        """Deep-copy this operation, remapping operands through ``value_map``."""
        value_map = value_map if value_map is not None else {}
        new_operands = [value_map.get(operand, operand) for operand in self._operands]
        cloned = type(self).create(
            operands=new_operands,
            result_types=[r.type for r in self.results],
            attributes=dict(self.attributes),
        )
        for old_res, new_res in zip(self.results, cloned.results):
            value_map[old_res] = new_res
            new_res.name_hint = old_res.name_hint
        for region in self.regions:
            cloned.add_region(region.clone(value_map))
        return cloned

    # -- verification ----------------------------------------------------------
    def verify_(self) -> None:
        """Op-specific verification hook; overridden by dialect operations."""

    def verify(self) -> None:
        """Verify this operation and everything nested inside it."""
        from .verifier import verify_operation

        verify_operation(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class Block:
    """A straight-line list of operations with block arguments."""

    __slots__ = ("args", "ops", "parent")

    def __init__(
        self,
        arg_types: Sequence[TypeAttribute] = (),
        ops: Sequence[Operation] = (),
    ):
        self.args: list[BlockArgument] = [
            BlockArgument(t, self, i) for i, t in enumerate(arg_types)
        ]
        self.ops: list[Operation] = []
        self.parent: Optional[Region] = None
        for op in ops:
            self.add_op(op)

    # -- argument management ---------------------------------------------------
    def insert_arg(self, type: TypeAttribute, index: int) -> BlockArgument:
        arg = BlockArgument(type, self, index)
        self.args.insert(index, arg)
        for i, existing in enumerate(self.args):
            existing.index = i
        return arg

    def add_arg(self, type: TypeAttribute) -> BlockArgument:
        return self.insert_arg(type, len(self.args))

    def erase_arg(self, arg: BlockArgument) -> None:
        if arg.uses:
            raise IRError("erasing a block argument that still has uses")
        self.args.remove(arg)
        for i, existing in enumerate(self.args):
            existing.index = i

    # -- op management -----------------------------------------------------------
    def add_op(self, op: Operation) -> Operation:
        if op.parent is not None:
            raise IRError(f"operation {op.name} is already attached to a block")
        op.parent = self
        self.ops.append(op)
        return op

    def add_ops(self, ops: Iterable[Operation]) -> None:
        for op in ops:
            self.add_op(op)

    def insert_op_before(self, new_op: Operation, anchor: Operation) -> None:
        if anchor.parent is not self:
            raise IRError("anchor operation does not belong to this block")
        if new_op.parent is not None:
            raise IRError("operation is already attached to a block")
        new_op.parent = self
        self.ops.insert(self.ops.index(anchor), new_op)

    def insert_op_after(self, new_op: Operation, anchor: Operation) -> None:
        if anchor.parent is not self:
            raise IRError("anchor operation does not belong to this block")
        if new_op.parent is not None:
            raise IRError("operation is already attached to a block")
        new_op.parent = self
        self.ops.insert(self.ops.index(anchor) + 1, new_op)

    def detach_op(self, op: Operation) -> Operation:
        if op.parent is not self:
            raise IRError("operation does not belong to this block")
        self.ops.remove(op)
        op.parent = None
        return op

    # -- navigation ---------------------------------------------------------------
    @property
    def first_op(self) -> Optional[Operation]:
        return self.ops[0] if self.ops else None

    @property
    def last_op(self) -> Optional[Operation]:
        return self.ops[-1] if self.ops else None

    @property
    def parent_op(self) -> Optional[Operation]:
        return self.parent.parent if self.parent is not None else None

    def walk(self) -> Iterator[Operation]:
        for op in list(self.ops):
            yield from op.walk()

    def clone(self, value_map: Optional[dict[SSAValue, SSAValue]] = None) -> "Block":
        value_map = value_map if value_map is not None else {}
        new_block = Block(arg_types=[a.type for a in self.args])
        for old_arg, new_arg in zip(self.args, new_block.args):
            value_map[old_arg] = new_arg
            new_arg.name_hint = old_arg.name_hint
        for op in self.ops:
            new_block.add_op(op.clone(value_map))
        return new_block

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Block with {len(self.ops)} ops>"


class Region:
    """A list of blocks owned by an operation."""

    __slots__ = ("blocks", "parent")

    def __init__(self, blocks: Sequence[Block] | Block = ()):
        self.blocks: list[Block] = []
        self.parent: Optional[Operation] = None
        if isinstance(blocks, Block):
            blocks = (blocks,)
        for block in blocks:
            self.add_block(block)

    def add_block(self, block: Block) -> Block:
        if block.parent is not None:
            raise IRError("block is already attached to a region")
        block.parent = self
        self.blocks.append(block)
        return block

    @property
    def block(self) -> Block:
        """The single block of a single-block region."""
        if len(self.blocks) != 1:
            raise IRError(
                f"expected exactly one block in region, found {len(self.blocks)}"
            )
        return self.blocks[0]

    @property
    def ops(self) -> list[Operation]:
        """Operations of a single-block region."""
        return self.block.ops

    def walk(self) -> Iterator[Operation]:
        for block in self.blocks:
            yield from block.walk()

    def clone(self, value_map: Optional[dict[SSAValue, SSAValue]] = None) -> "Region":
        value_map = value_map if value_map is not None else {}
        new_region = Region()
        for block in self.blocks:
            new_region.add_block(block.clone(value_map))
        return new_region

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Region with {len(self.blocks)} blocks>"


def walk_preorder(op: Operation, callback: Callable[[Operation], None]) -> None:
    """Apply ``callback`` to ``op`` and every nested operation, pre-order."""
    for nested in op.walk():
        callback(nested)
