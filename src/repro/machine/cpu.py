"""Single-node CPU performance model (roofline + OpenMP region overhead)."""

from __future__ import annotations

from dataclasses import dataclass

from .compilers import CPUCompilerProfile
from .kernel_model import ProgramCharacteristics
from .specs import CPUNodeSpec


@dataclass
class CPUEstimate:
    """Predicted execution of a stencil program on one node."""

    seconds: float
    compute_seconds: float
    memory_seconds: float
    overhead_seconds: float
    cells_updated: float

    @property
    def gpoints_per_second(self) -> float:
        return self.cells_updated / self.seconds / 1e9 if self.seconds > 0 else 0.0


def estimate_cpu_node(
    program: ProgramCharacteristics,
    timesteps: int,
    node: CPUNodeSpec,
    profile: CPUCompilerProfile,
    *,
    dtype_bytes: int = 4,
    threads: int | None = None,
) -> CPUEstimate:
    """Estimate single-node execution time of ``timesteps`` steps of ``program``.

    Per time step every stencil region is either bandwidth-bound or
    compute-bound (roofline); each region additionally pays one OpenMP
    fork/join + barrier (paper: limitation of the scf-to-openmp lowering).
    """
    thread_fraction = 1.0
    if threads is not None and threads < node.cores:
        thread_fraction = threads / node.cores

    peak_flops = node.peak_flops(single_precision=dtype_bytes == 4) * thread_fraction
    peak_bandwidth = node.peak_bandwidth() * min(1.0, thread_fraction * 2.0)

    compute_seconds = 0.0
    memory_seconds = 0.0
    overhead_seconds = 0.0
    per_step = 0.0
    for apply_chars in program.applies:
        flops = apply_chars.flops_per_cell * apply_chars.cells_per_step * profile.flop_reduction
        traffic = apply_chars.bytes_per_cell(dtype_bytes) * apply_chars.cells_per_step
        traffic *= _traffic_inflation(apply_chars, node, profile, dtype_bytes)
        t_compute = flops / (peak_flops * profile.vector_efficiency)
        t_memory = traffic / (peak_bandwidth * profile.bandwidth_efficiency)
        region_time = max(t_compute, t_memory) + profile.omp_region_overhead_s
        per_step += region_time
        compute_seconds += t_compute * timesteps
        memory_seconds += t_memory * timesteps
        overhead_seconds += profile.omp_region_overhead_s * timesteps

    total = per_step * timesteps
    cells = program.cells_per_step * timesteps
    return CPUEstimate(
        seconds=total,
        compute_seconds=compute_seconds,
        memory_seconds=memory_seconds,
        overhead_seconds=overhead_seconds,
        cells_updated=cells,
    )


def _traffic_inflation(apply_chars, node: CPUNodeSpec, profile: CPUCompilerProfile,
                       dtype_bytes: int) -> float:
    """Memory-traffic inflation due to imperfect cache reuse.

    * 3D kernels whose plane working set (one plane per stencil radius per
      input field) does not fit the last-level cache slice reload neighbour
      planes from DRAM; how badly depends on the code generator's blocking
      (``cache_spill_3d``).
    * Blocked 2D code reloads halo cells at tile edges proportionally to the
      space order (``halo_reload_2d``).
    """
    radius = max([*apply_chars.halo_lower, *apply_chars.halo_upper, 0])
    if apply_chars.rank >= 3 and profile.cache_spill_3d > 0.0 and radius >= 2:
        plane_cells = apply_chars.cells_per_step ** (2.0 / 3.0)
        footprint = (
            (2 * radius + 1) * plane_cells * dtype_bytes * max(apply_chars.input_fields, 1)
        )
        if footprint > node.llc_slice_bytes:
            return 1.0 + profile.cache_spill_3d * min(radius, 2)
    if apply_chars.rank == 2 and profile.halo_reload_2d > 0.0:
        return 1.0 + profile.halo_reload_2d * 2 * radius
    return 1.0
