"""Bit-identity and fallback tests for the plan-compiled megakernel path.

The megakernel codegen layer (repro.interp.codegen) traces a plan's time
loop once and emits a single fused Python function.  These tests pin its
contract: the generated function is *bit-identical* to the PlannedOp
interpreter path — fields, ExecStatistics and CommStatistics — across the
{threads, processes} x {1, 2 threads_per_rank} matrix, and every rejection
(trace-time or emit-time) carries an explicit fallback reason string.
"""

import numpy as np
import pytest

from repro.core import (
    ExecutionConfig,
    ExecutionError,
    Session,
    compile_stencil_program,
    cpu_target,
    dmp_target,
)
from repro.interp import CodegenError, CodegenFallback, trace_program
from repro.runtime import processes_available, shutdown_worker_pool
from repro.workloads import heat_diffusion
from tests.conftest import build_jacobi_module

needs_processes = pytest.mark.skipif(
    not processes_available(), reason="process runtime unavailable on this platform"
)


@pytest.fixture(scope="module", autouse=True)
def _pool_teardown():
    yield
    shutdown_worker_pool()


def _compile_heat(rank_grid, shape=(16, 16)):
    workload = heat_diffusion(shape, space_order=2, dtype=np.float64)
    module = workload.operator(backend="xdsl").stencil_module(dt=workload.dt)
    return compile_stencil_program(module, dmp_target(rank_grid))


def _heat_fields(shape=(18, 18)):
    u0 = np.zeros(shape)
    u0[shape[0] // 2 - 1: shape[0] // 2 + 1,
       shape[1] // 2 - 1: shape[1] // 2 + 1] = 1.0
    return [u0, u0.copy()]


# ---------------------------------------------------------------------------
# ExecutionConfig validation
# ---------------------------------------------------------------------------

class TestCodegenConfig:
    def test_default_is_auto(self):
        assert ExecutionConfig().codegen == "auto"

    @pytest.mark.parametrize("value", ["jit", "fused", 1, None])
    def test_unknown_codegen_mode(self, value):
        with pytest.raises(ExecutionError, match="unknown codegen mode"):
            ExecutionConfig(codegen=value)

    def test_megakernel_conflicts_with_interpreter_backend(self):
        with pytest.raises(ExecutionError, match="megakernel.*interpreter"):
            ExecutionConfig(codegen="megakernel", backend="interpreter")

    def test_auto_with_interpreter_backend_is_fine(self):
        config = ExecutionConfig(backend="interpreter")
        assert config.codegen == "auto"


# ---------------------------------------------------------------------------
# bit-identity vs the planned-op path
# ---------------------------------------------------------------------------

PARITY_CELLS = [
    ("threads", 1), ("threads", 2),
    pytest.param("processes", 1, marks=needs_processes),
    pytest.param("processes", 2, marks=needs_processes),
]


@pytest.mark.parametrize("runtime,threads_per_rank", PARITY_CELLS)
def test_megakernel_matches_planned_bit_identically(runtime, threads_per_rank):
    """Forced megakernel == planned path: fields and both statistics."""
    program = _compile_heat((2, 2))
    base_fields = _heat_fields()
    with Session(
        runtime=runtime, threads_per_rank=threads_per_rank, codegen="planned"
    ) as session:
        baseline = session.plan(program).run(base_fields, [3])
    with Session(
        runtime=runtime, threads_per_rank=threads_per_rank, codegen="megakernel"
    ) as session:
        plan = session.plan(program)
        for repeat in range(3):  # repeated runs reuse the kernel and must agree
            fields = _heat_fields()
            result = plan.run(fields, [3])
            for mine, theirs in zip(fields, base_fields):
                assert np.array_equal(mine, theirs), (
                    f"{runtime} x{threads_per_rank} repeat {repeat}: "
                    "megakernel fields diverged from the planned path"
                )
            assert result.statistics == baseline.statistics
            assert result.comm_statistics == baseline.comm_statistics
        if runtime == "threads":
            assert plan._trace is not None
            assert plan.codegen_fallback is None


def test_megakernel_local_matches_planned():
    program = compile_stencil_program(build_jacobi_module(), cpu_target())
    data = np.zeros(10)
    data[1:9] = np.arange(8, dtype=float)
    a1, b1 = data.copy(), data.copy()
    with Session(codegen="planned") as session:
        baseline = session.plan(program).run([a1, b1], [4])
    a2, b2 = data.copy(), data.copy()
    with Session(codegen="megakernel") as session:
        result = session.plan(program).run([a2, b2], [4])
    assert np.array_equal(a1, a2) and np.array_equal(b1, b2)
    assert result.statistics == baseline.statistics


def test_auto_codegen_engages_and_caches_per_rank():
    """Held distributed plans engage codegen by default and cache per rank."""
    program = _compile_heat((2, 2))
    with Session(runtime="threads") as session:
        plan = session.plan(program)
        assert plan._codegen_active and plan._trace is not None
        fields = _heat_fields()
        plan.run(fields, [3])
        assert plan.codegen_fallback is None
        # one emitted kernel per rank of the 2x2 grid, keyed by fingerprint
        assert len(session._megakernel_cache) == 4
        keys = list(session._megakernel_cache)
        assert all(key[0] == program.fingerprint for key in keys)
        # a second run re-uses the cache instead of re-emitting
        plan.run(_heat_fields(), [3])
        assert len(session._megakernel_cache) == 4


def test_auto_codegen_skips_thread_teams():
    """auto only engages on the flat threads_per_rank == 1 configuration."""
    program = _compile_heat((2, 2))
    with Session(runtime="threads", threads_per_rank=2) as session:
        plan = session.plan(program)
        assert not plan._codegen_active
        assert plan.codegen_fallback is None  # a gate, not a compile failure


def test_generated_source_is_inspectable():
    """The emitted kernel keeps its python source for dumps and artifacts."""
    program = _compile_heat((2, 2))
    with Session(runtime="threads", codegen="megakernel") as session:
        plan = session.plan(program)
        plan.run(_heat_fields(), [2])
        kernels = list(session._megakernel_cache.values())
        assert kernels and all(not isinstance(k, CodegenFallback) for k in kernels)
        for kernel in kernels:
            assert "def " in kernel.source
            assert kernel.label


# ---------------------------------------------------------------------------
# every rejection carries a reason string
# ---------------------------------------------------------------------------

def test_trace_rejection_records_reason():
    """auto mode on an untraceable plan records a CodegenFallback with why."""
    program = _compile_heat((2, 2))
    with Session(runtime="threads", backend="interpreter") as session:
        plan = session.plan(program)
        assert not plan._codegen_active  # interpreter backend is gated out
        assert plan.compile() is None  # explicit tracing records the reason
        fallback = plan.codegen_fallback
        assert isinstance(fallback, CodegenFallback)
        assert fallback.reason and "kernel" in fallback.reason
        assert str(fallback) == f"{plan.function}: {fallback.reason}"


def test_emit_rejection_records_reason_and_falls_back():
    """Aliased field buffers cannot be emitted; the reason is recorded and
    the run transparently falls back to the planned path."""
    program = compile_stencil_program(build_jacobi_module(), cpu_target())
    data = np.zeros(10)
    data[1:9] = np.arange(8, dtype=float)
    shared = data.copy()
    with Session() as session:  # codegen="auto"
        plan = session.plan(program)
        assert plan._codegen_active
        result = plan.run([shared, shared], [2])  # aliased in/out buffers
        assert result is not None  # planned path still ran
        fallback = plan.codegen_fallback
        assert isinstance(fallback, CodegenFallback)
        assert fallback.reason and "alias" in fallback.reason
        assert not plan._codegen_active


def test_forced_megakernel_raises_with_reason():
    """codegen='megakernel' refuses to fall back silently."""
    program = compile_stencil_program(build_jacobi_module(), cpu_target())
    data = np.zeros(10)
    shared = data.copy()
    with Session(codegen="megakernel") as session:
        plan = session.plan(program)
        with pytest.raises(ExecutionError, match="cannot be emitted.*alias"):
            plan.run([shared, shared], [2])


def test_trace_program_error_messages_are_specific():
    """trace_program raises CodegenError with a non-empty reason, never a
    bare failure."""
    program = _compile_heat((2, 2))
    func_op = program.module  # a module is not a traceable function
    kernel = object()
    with pytest.raises(CodegenError) as excinfo:
        trace_program(func_op, kernel)
    assert str(excinfo.value)
