"""GPU performance model (roofline + launch overhead + managed-memory penalty)."""

from __future__ import annotations

from dataclasses import dataclass

from .compilers import GPUCompilerProfile
from .kernel_model import ProgramCharacteristics
from .specs import GPUSpec


@dataclass
class GPUEstimate:
    """Predicted execution of a stencil program on one GPU."""

    seconds: float
    kernel_seconds: float
    launch_overhead_seconds: float
    data_movement_seconds: float
    cells_updated: float

    @property
    def gpoints_per_second(self) -> float:
        return self.cells_updated / self.seconds / 1e9 if self.seconds > 0 else 0.0


def estimate_gpu(
    program: ProgramCharacteristics,
    timesteps: int,
    gpu: GPUSpec,
    profile: GPUCompilerProfile,
    *,
    dtype_bytes: int = 4,
    field_bytes: float | None = None,
) -> GPUEstimate:
    """Estimate GPU execution time.

    Each stencil region is one kernel per time step; synchronous launches pay
    the launch overhead serially (the MLIR lowering's behaviour observed in
    the paper).  Managed-memory back-ends additionally pay a page-fault
    migration penalty proportional to the working set each time step.
    """
    kernel_seconds = 0.0
    launch_seconds = 0.0
    for apply_chars in program.applies:
        flops = apply_chars.flops_per_cell * apply_chars.cells_per_step
        traffic = apply_chars.bytes_per_cell(dtype_bytes) * apply_chars.cells_per_step
        bandwidth_efficiency = profile.bandwidth_efficiency
        if apply_chars.rank >= 3 and profile.bandwidth_efficiency_3d is not None:
            bandwidth_efficiency = profile.bandwidth_efficiency_3d
        t_compute = flops / (gpu.peak_flops(dtype_bytes == 4) * profile.compute_efficiency)
        t_memory = traffic / (gpu.peak_bandwidth() * bandwidth_efficiency)
        kernel_seconds += max(t_compute, t_memory)
        launch_seconds += profile.kernel_overhead_s

    data_seconds = 0.0
    working_set_mb = (field_bytes if field_bytes is not None else
                      program.bytes_per_step(dtype_bytes)) / 1e6
    if profile.explicit_data_management:
        # One host->device and one device->host transfer over the whole run.
        data_seconds = 2 * (working_set_mb * 1e6) / (gpu.pcie_bandwidth_gbs * 1e9)
    else:
        # Managed memory: page-fault-driven migrations on first touch of every
        # page.  Data stays device-resident afterwards, so the cost is paid
        # once per run (not per time step) - but it is enormous compared to an
        # explicit bulk PCIe copy.
        data_seconds = working_set_mb * gpu.managed_memory_penalty_s_per_mb

    total = (kernel_seconds + launch_seconds) * timesteps + data_seconds
    cells = program.cells_per_step * timesteps
    return GPUEstimate(
        seconds=total,
        kernel_seconds=kernel_seconds * timesteps,
        launch_overhead_seconds=launch_seconds * timesteps,
        data_movement_seconds=data_seconds,
        cells_updated=cells,
    )
