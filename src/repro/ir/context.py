"""Dialect registration and the compilation context.

A :class:`Dialect` groups related operations and attributes under a common
namespace (``arith``, ``stencil``, ``dmp``...).  The :class:`MLContext` holds
the set of registered dialects and is consulted by the parser and the pass
manager to resolve operation and attribute names.
"""

from __future__ import annotations

from typing import Iterable, Optional, Type

from .attributes import Attribute
from .core import Operation


class Dialect:
    """A named collection of operation and attribute classes."""

    def __init__(
        self,
        name: str,
        operations: Iterable[Type[Operation]] = (),
        attributes: Iterable[Type[Attribute]] = (),
    ):
        self.name = name
        self.operations: list[Type[Operation]] = list(operations)
        self.attributes: list[Type[Attribute]] = list(attributes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dialect({self.name!r}, {len(self.operations)} ops)"


class MLContext:
    """Registry of dialects, operations and attributes."""

    def __init__(self, allow_unregistered: bool = False):
        self.allow_unregistered = allow_unregistered
        self._dialects: dict[str, Dialect] = {}
        self._op_registry: dict[str, Type[Operation]] = {}
        self._attr_registry: dict[str, Type[Attribute]] = {}

    # -- registration -------------------------------------------------------
    def register_dialect(self, dialect: Dialect) -> None:
        if dialect.name in self._dialects:
            return
        self._dialects[dialect.name] = dialect
        for op_cls in dialect.operations:
            self.register_op(op_cls)
        for attr_cls in dialect.attributes:
            self.register_attr(attr_cls)

    def register_op(self, op_cls: Type[Operation]) -> None:
        existing = self._op_registry.get(op_cls.name)
        if existing is not None and existing is not op_cls:
            raise ValueError(f"operation {op_cls.name} registered twice")
        self._op_registry[op_cls.name] = op_cls

    def register_attr(self, attr_cls: Type[Attribute]) -> None:
        existing = self._attr_registry.get(attr_cls.name)
        if existing is not None and existing is not attr_cls:
            raise ValueError(f"attribute {attr_cls.name} registered twice")
        self._attr_registry[attr_cls.name] = attr_cls

    # -- lookup ---------------------------------------------------------------
    @property
    def dialects(self) -> dict[str, Dialect]:
        return dict(self._dialects)

    def get_op(self, name: str) -> Optional[Type[Operation]]:
        return self._op_registry.get(name)

    def get_attr(self, name: str) -> Optional[Type[Attribute]]:
        return self._attr_registry.get(name)

    def get_optional_op(self, name: str) -> Optional[Type[Operation]]:
        return self._op_registry.get(name)

    def clone(self) -> "MLContext":
        ctx = MLContext(self.allow_unregistered)
        for dialect in self._dialects.values():
            ctx.register_dialect(dialect)
        return ctx


def default_context(allow_unregistered: bool = True) -> MLContext:
    """Return a context with every dialect of this project registered."""
    from ..dialects import register_all_dialects

    ctx = MLContext(allow_unregistered=allow_unregistered)
    register_all_dialects(ctx)
    return ctx
