"""The scf dialect: structured control flow (for, if, parallel loops)."""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..ir.attributes import TypeAttribute
from ..ir.context import Dialect
from ..ir.core import Block, Operation, Region, SSAValue
from ..ir.traits import IsTerminator, Pure
from ..ir.types import IndexType, i1, index


class YieldOp(Operation):
    """Terminates scf region bodies, optionally yielding values."""

    name = "scf.yield"
    traits = frozenset([IsTerminator(), Pure()])

    def __init__(self, values: Sequence[SSAValue] = ()):
        super().__init__(operands=list(values))


class ForOp(Operation):
    """A counted sequential loop ``for %i = %lb to %ub step %step``.

    Supports loop-carried values (iter_args) as in MLIR: the body block takes
    the induction variable followed by the iteration arguments, and yields the
    next iteration's values.
    """

    name = "scf.for"

    def __init__(
        self,
        lower_bound: SSAValue,
        upper_bound: SSAValue,
        step: SSAValue,
        iter_args: Sequence[SSAValue] = (),
        body: Optional[Region] = None,
    ):
        if body is None:
            body = Region(
                Block(arg_types=[index] + [arg.type for arg in iter_args])
            )
        super().__init__(
            operands=[lower_bound, upper_bound, step, *iter_args],
            result_types=[arg.type for arg in iter_args],
            regions=[body],
        )

    @property
    def lower_bound(self) -> SSAValue:
        return self.operands[0]

    @property
    def upper_bound(self) -> SSAValue:
        return self.operands[1]

    @property
    def step(self) -> SSAValue:
        return self.operands[2]

    @property
    def iter_args(self) -> tuple[SSAValue, ...]:
        return self.operands[3:]

    @property
    def body(self) -> Region:
        return self.regions[0]

    @property
    def induction_variable(self) -> SSAValue:
        return self.body.block.args[0]

    def verify_(self) -> None:
        for operand in self.operands[:3]:
            if not isinstance(operand.type, IndexType):
                raise ValueError("scf.for bounds and step must have index type")
        block = self.body.block
        if len(block.args) != 1 + len(self.iter_args):
            raise ValueError(
                "scf.for body must take the induction variable plus one argument "
                "per iter_arg"
            )
        if block.ops and not isinstance(block.last_op, YieldOp):
            raise ValueError("scf.for body must be terminated by scf.yield")


class IfOp(Operation):
    """Conditional execution with optional else region and results."""

    name = "scf.if"

    def __init__(
        self,
        condition: SSAValue,
        result_types: Sequence[TypeAttribute] = (),
        then_region: Optional[Region] = None,
        else_region: Optional[Region] = None,
    ):
        if then_region is None:
            then_region = Region(Block())
        if else_region is None:
            else_region = Region(Block()) if result_types else Region()
        super().__init__(
            operands=[condition],
            result_types=list(result_types),
            regions=[then_region, else_region],
        )

    @property
    def condition(self) -> SSAValue:
        return self.operands[0]

    @property
    def then_region(self) -> Region:
        return self.regions[0]

    @property
    def else_region(self) -> Region:
        return self.regions[1]

    def verify_(self) -> None:
        if self.condition.type != i1:
            raise ValueError("scf.if condition must be an i1 value")
        if self.results and not self.else_region.blocks:
            raise ValueError("scf.if with results requires an else region")


class ParallelOp(Operation):
    """A multi-dimensional parallel loop nest (the unit of SMP/GPU mapping).

    Operand layout: ``lower_bounds..., upper_bounds..., steps..., inits...``
    with the rank implied by the body block arguments.  ``init_values`` are
    reduction seeds (MLIR-style): the body must then be terminated by an
    ``scf.reduce`` whose i-th combiner folds one per-iteration value into the
    i-th accumulator, and the loop produces one result per init value.
    """

    name = "scf.parallel"

    def __init__(
        self,
        lower_bounds: Sequence[SSAValue],
        upper_bounds: Sequence[SSAValue],
        steps: Sequence[SSAValue],
        body: Optional[Region] = None,
        init_values: Sequence[SSAValue] = (),
    ):
        rank = len(lower_bounds)
        if len(upper_bounds) != rank or len(steps) != rank:
            raise ValueError("scf.parallel bounds and steps must have equal rank")
        if body is None:
            body = Region(Block(arg_types=[index] * rank))
        super().__init__(
            operands=[*lower_bounds, *upper_bounds, *steps, *init_values],
            result_types=[value.type for value in init_values],
            regions=[body],
        )

    @property
    def rank(self) -> int:
        return len(self.body.block.args)

    @property
    def lower_bounds(self) -> tuple[SSAValue, ...]:
        return self.operands[0 : self.rank]

    @property
    def upper_bounds(self) -> tuple[SSAValue, ...]:
        return self.operands[self.rank : 2 * self.rank]

    @property
    def steps(self) -> tuple[SSAValue, ...]:
        return self.operands[2 * self.rank : 3 * self.rank]

    @property
    def init_values(self) -> tuple[SSAValue, ...]:
        return self.operands[3 * self.rank :]

    @property
    def body(self) -> Region:
        return self.regions[0]

    @property
    def induction_variables(self) -> list[SSAValue]:
        return list(self.body.block.args)

    def verify_(self) -> None:
        rank = self.rank
        if len(self.operands) != 3 * rank + len(self.results):
            raise ValueError(
                "scf.parallel expects 3 * rank operands (lower, upper, step per "
                "dim) plus one init value per result"
            )
        for operand in self.operands[: 3 * rank]:
            if not isinstance(operand.type, IndexType):
                raise ValueError("scf.parallel bounds and steps must have index type")
        block = self.body.block
        if block.ops and not isinstance(block.last_op, (YieldOp, ReduceOp)):
            raise ValueError(
                "scf.parallel body must be terminated by scf.yield or scf.reduce"
            )
        terminator = block.last_op
        if isinstance(terminator, ReduceOp):
            if len(terminator.operands) != len(self.results):
                raise ValueError(
                    "scf.reduce must carry exactly one value per scf.parallel "
                    f"result (got {len(terminator.operands)} values for "
                    f"{len(self.results)} results)"
                )
        elif self.results:
            raise ValueError(
                "scf.parallel with init values must be terminated by an "
                "scf.reduce carrying one value per result"
            )


class WhileOp(Operation):
    """A while loop with a condition region and a body region (minimal form)."""

    name = "scf.while"

    def __init__(
        self,
        init_values: Sequence[SSAValue],
        result_types: Sequence[TypeAttribute],
        before: Region,
        after: Region,
    ):
        super().__init__(
            operands=list(init_values),
            result_types=list(result_types),
            regions=[before, after],
        )

    @property
    def before_region(self) -> Region:
        return self.regions[0]

    @property
    def after_region(self) -> Region:
        return self.regions[1]


class ConditionOp(Operation):
    """Terminator of the 'before' region of scf.while."""

    name = "scf.condition"
    traits = frozenset([IsTerminator()])

    def __init__(self, condition: SSAValue, args: Sequence[SSAValue] = ()):
        super().__init__(operands=[condition, *args])


class ReduceOp(Operation):
    """The reduction terminator of an ``scf.parallel`` body (MLIR-style).

    Carries one per-iteration value per enclosing init value, plus one
    *combiner* region per value: a block taking ``(accumulator, value)`` and
    yielding the combined result.  The enclosing ``scf.parallel`` folds every
    iteration's values into its accumulators in iteration order and returns
    the final accumulators as its results.
    """

    name = "scf.reduce"
    traits = frozenset([IsTerminator()])

    def __init__(
        self,
        operand: Union[SSAValue, Sequence[SSAValue], None] = None,
        body: Union[Region, Sequence[Region], None] = None,
    ):
        if operand is None:
            operands: list[SSAValue] = []
        elif isinstance(operand, SSAValue):
            operands = [operand]
        else:
            operands = list(operand)
        if body is None:
            regions: list[Region] = []
        elif isinstance(body, Region):
            regions = [body]
        else:
            regions = list(body)
        super().__init__(operands=operands, regions=regions)

    @property
    def combiners(self) -> tuple[Region, ...]:
        return tuple(self.regions)

    @staticmethod
    def combining(value: SSAValue, op_class) -> "ReduceOp":
        """A reduce whose combiner applies one binary arith op to (acc, value)."""
        block = Block(arg_types=[value.type, value.type])
        combined = op_class(block.args[0], block.args[1])
        block.add_op(combined)
        block.add_op(YieldOp([combined.results[0]]))
        return ReduceOp(value, Region(block))

    def verify_(self) -> None:
        if len(self.regions) != len(self.operands):
            raise ValueError("scf.reduce needs one combiner region per value")
        for operand, region in zip(self.operands, self.regions):
            block = region.block
            if len(block.args) != 2:
                raise ValueError(
                    "scf.reduce combiners take (accumulator, value) arguments"
                )
            if not isinstance(block.last_op, YieldOp) or len(block.last_op.operands) != 1:
                raise ValueError(
                    "scf.reduce combiners must yield exactly the combined value"
                )


Scf = Dialect(
    "scf",
    [ForOp, IfOp, ParallelOp, WhileOp, ConditionOp, ReduceOp, YieldOp],
    [],
)
