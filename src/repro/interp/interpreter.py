"""A reference interpreter for the IR.

The real stack hands lowered IR to LLVM and runs native code; here the same
lowered programs are executed by walking the IR.  Two levels are supported and
produce identical numerical results:

* **stencil level** — ``stencil.apply`` is evaluated *vectorised* with numpy
  over the whole store domain (fast; used as the reference semantics and by
  the frontends' "native" execution paths);
* **lowered level** — after ``convert-stencil-to-scf`` (and optionally the
  dmp/mpi lowerings) the loop nests, memref accesses, OpenMP/GPU structure and
  MPI calls are interpreted operation by operation (slow; used by the
  correctness tests on small grids).

Distributed programs execute against a :class:`~repro.interp.mpi_runtime.SimulatedMPI`
world: each rank runs one interpreter instance in its own thread.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

import numpy as np

from ..dialects import arith, builtin, dmp, func, gpu, hls, memref, mpi, omp, scf, stencil
from ..ir.attributes import FloatAttr, IntegerAttr
from ..ir.core import Block, Operation, SSAValue
from ..ir.types import IntegerType
from .mpi_runtime import CommunicatorBase
from .values import DataTypeValue, MemRefValue, PointerValue, RequestHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .vectorize import CompiledKernel


class InterpreterError(Exception):
    """Raised when a program cannot be executed (unknown op, bad structure...)."""


@dataclass
class ExecStatistics:
    """Counters describing one execution (consumed by tests and cost models)."""

    ops_executed: int = 0
    kernel_launches: int = 0
    host_synchronizations: int = 0
    omp_regions: int = 0
    omp_barriers: int = 0
    halo_swaps: int = 0
    halo_elements_exchanged: int = 0
    mpi_messages: int = 0
    cells_updated: int = 0
    #: Halo exchanges whose completion was deferred past interior compute
    #: (the communication/computation overlap of the hybrid runtime).
    halo_swaps_overlapped: int = 0


class _ReturnSignal(Exception):
    """Internal: unwinds the interpreter stack on func.return."""

    def __init__(self, values: list[Any]):
        self.values = values


Handler = Callable[["Interpreter", Operation, dict], None]
_HANDLERS: dict[str, Handler] = {}


def handler(op_name: str) -> Callable[[Handler], Handler]:
    def register(fn: Handler) -> Handler:
        _HANDLERS[op_name] = fn
        return fn

    return register


class _HaloReceive:
    """One posted-but-uncompleted receive of an overlapped halo exchange."""

    __slots__ = ("request", "buffer", "recv_slice", "elements", "axis")

    def __init__(self, request, buffer, recv_slice, elements: int, axis: int):
        self.request = request
        self.buffer = buffer
        self.recv_slice = recv_slice
        self.elements = elements
        self.axis = axis


class PendingHalo:
    """A ``dmp.swap`` whose receives are still in flight.

    The sends were posted (buffered, so the payload is already captured) and
    one non-blocking receive per neighbor was issued into a staging buffer;
    :meth:`complete` waits for them and writes the staged halos into the
    array.  While the object sits on ``Interpreter.pending_halos``, the
    vectorized backend may compute any region it can prove independent of the
    ``recv_slice`` boxes — that is the communication/computation overlap of
    the hybrid runtime.
    """

    __slots__ = ("array", "items")

    def __init__(self, array: np.ndarray, items: list[_HaloReceive]):
        self.array = array
        self.items = items

    def complete(self, interp: "Interpreter") -> None:
        comm = interp.require_comm()
        tracer = interp.tracer
        span = tracer.begin("halo.wait") if tracer is not None else 0.0
        for item in self.items:
            comm.wait(item.request)
            self.array[item.recv_slice] = item.buffer
            interp.stats.halo_elements_exchanged += item.elements
        if tracer is not None:
            tracer.end("halo.wait", span)


#: Operations that provably cannot observe array *contents*, so pending halo
#: receives may stay in flight across them: scalar/index arithmetic, value
#: plumbing, the structural loop roots whose handlers manage completion
#: themselves through ``try_vectorized``, the pure-counter OpenMP
#: synchronization ops, and ``dmp.swap`` itself (its handler completes
#: exactly the prefix of pending halos its buffer depends on) — without the
#: last three, every multi-field omp-lowered kernel would force-complete its
#: halos between the nest and the next swap and the overlap would be inert.
_HALO_TRANSPARENT_OPS = frozenset(
    {
        "builtin.unrealized_conversion_cast",
        "memref.cast",
        "memref.subview",
        "memref.dim",
        "omp.parallel",
        "omp.wsloop",
        "omp.barrier",
        "omp.terminator",
        "scf.parallel",
        "scf.for",
        "scf.yield",
        "omp.yield",
        "dmp.swap",
    }
)


# ---------------------------------------------------------------------------
# pre-resolved block plans (the amortized time-loop driver of Session/Plan)
# ---------------------------------------------------------------------------

#: Kinds of a :class:`PlannedOp` (int compares beat string compares per op).
_PLAN_HANDLER = 0   # dispatch through the pre-bound handler
_PLAN_CONST = 1     # arith.constant with the literal pre-materialized
_PLAN_CAST = 2      # identity plumbing (unrealized_conversion_cast, memref.cast)
_PLAN_YIELD = 3     # scf/omp/hls yield, stencil.return
_PLAN_RETURN = 4    # func.return
_PLAN_EMPTY = 5     # omp/gpu terminators


class PlannedOp:
    """One operation of a pre-resolved block: handler bound, constants folded.

    The per-op work `_eval` repeats on every execution — the name lookup, the
    halo-transparency set membership, the handler dict get, and for constants
    the attribute unpacking — is done once here, at plan-compile time.
    """

    __slots__ = ("op", "kind", "handler", "value", "transparent")

    def __init__(self, op: Operation, kind: int, handler: Optional[Handler],
                 value: Any, transparent: bool):
        self.op = op
        self.kind = kind
        self.handler = handler
        self.value = value
        self.transparent = transparent


_PLAN_CAST_OPS = frozenset({"builtin.unrealized_conversion_cast", "memref.cast"})
_PLAN_YIELD_OPS = frozenset(
    {"scf.yield", "omp.yield", "hls.yield", "stencil.return"}
)
_PLAN_EMPTY_OPS = frozenset({"omp.terminator", "gpu.terminator"})


def _plan_op(op: Operation) -> PlannedOp:
    name = op.name
    transparent = name in _HALO_TRANSPARENT_OPS or name.startswith("arith.")
    if name in _PLAN_YIELD_OPS:
        return PlannedOp(op, _PLAN_YIELD, None, None, transparent)
    if name == "func.return":
        return PlannedOp(op, _PLAN_RETURN, None, None, transparent)
    if name in _PLAN_EMPTY_OPS:
        return PlannedOp(op, _PLAN_EMPTY, None, None, transparent)
    if name in _PLAN_CAST_OPS:
        return PlannedOp(op, _PLAN_CAST, None, None, transparent)
    if name == "arith.constant" and isinstance(op, arith.ConstantOp):
        value_attr = op.value
        if isinstance(value_attr, IntegerAttr):
            result_type = op.results[0].type
            if isinstance(result_type, IntegerType) and result_type.width == 1:
                value: Any = bool(value_attr.value)
            else:
                value = int(value_attr.value)
            return PlannedOp(op, _PLAN_CONST, None, value, transparent)
        if isinstance(value_attr, FloatAttr):
            return PlannedOp(op, _PLAN_CONST, None, float(value_attr.value),
                             transparent)
        # Unsupported payload: keep the handler so it raises exactly as today.
    handler_fn = _HANDLERS.get(name)
    if handler_fn is None:
        # Defer the error to execution time, exactly like `_eval`: an op that
        # is never reached must not poison the plan of its whole function.
        def handler_fn(interp, op, env, _name=name):
            raise InterpreterError(f"no interpreter support for operation {_name!r}")

    return PlannedOp(op, _PLAN_HANDLER, handler_fn, None, transparent)


def compile_block_plans(function: func.FuncOp) -> dict[int, list[PlannedOp]]:
    """Pre-resolve every block of ``function`` for repeated execution.

    The returned mapping (``id(block) -> [PlannedOp, ...]``) is consumed by
    ``Interpreter(block_plans=...)``: blocks found in the map run through
    :meth:`Interpreter._run_planned`, skipping the per-op dispatch work; any
    block not in the map (e.g. of a *called* function) falls back to the
    ordinary `_eval` loop.  Assumes — like the vectorized-kernel cache — that
    the module is no longer mutated after compilation.
    """
    plans: dict[int, list[PlannedOp]] = {}

    def visit(block: Block) -> None:
        plans[id(block)] = [_plan_op(op) for op in block.ops]
        for op in block.ops:
            for region in op.regions:
                for nested in region.blocks:
                    visit(nested)

    visit(function.body.block)
    return plans


class RequestArray:
    """Runtime value of mpi.allocate_requests: a list of request slots."""

    def __init__(self, count: int):
        self.slots: list[RequestHandle] = [RequestHandle() for _ in range(count)]


class RequestRef:
    """Runtime value of mpi.get_request: one slot of a request array."""

    def __init__(self, array: RequestArray, index: int):
        self.array = array
        self.index = index

    @property
    def slot(self) -> RequestHandle:
        return self.array.slots[self.index]


class Interpreter:
    """Executes functions of one module, optionally as one rank of an MPI world."""

    def __init__(
        self,
        module: builtin.ModuleOp,
        *,
        comm: Optional[CommunicatorBase] = None,
        kernel: Optional["CompiledKernel"] = None,
        threads: int = 1,
        overlap_halos: bool = True,
        functions: Optional[dict[str, func.FuncOp]] = None,
        block_plans: Optional[dict[int, list["PlannedOp"]]] = None,
        team: Optional[Any] = None,
        tracer: Optional[Any] = None,
    ):
        self.module = module
        self.comm = comm
        #: Span tracer (:class:`repro.obs.Tracer`) for this rank, or None.
        #: Hooks sit at phase boundaries (timestep, nest, halo post/wait) —
        #: never inside the per-op dispatch loops — and each costs one
        #: ``is None`` check when tracing is off.
        self.tracer = tracer
        #: Vectorized nests (from repro.interp.vectorize) consulted before
        #: tree-walking a loop; None runs everything through the tree walker.
        self.kernel = kernel
        #: Intra-rank thread-team size (the OpenMP level of the hybrid
        #: runtime); teams only accelerate the vectorized backend.
        self.threads = max(1, int(threads))
        #: Defer halo-receive completion past independent interior compute.
        self.overlap_halos = overlap_halos
        #: Posted-but-uncompleted halo exchanges (see :class:`PendingHalo`).
        self.pending_halos: list[PendingHalo] = []
        self.stats = ExecStatistics()
        #: ``functions`` lets a caller that runs the same module many times
        #: (e.g. a :class:`repro.core.session.Plan`) pass a prebuilt table and
        #: skip the per-construction module walk.
        if functions is not None:
            self.functions = functions
        else:
            self.functions = {}
            for op in module.walk():
                if isinstance(op, func.FuncOp):
                    self.functions[op.sym_name] = op
        #: Pre-resolved op sequences keyed by ``id(block)`` (see
        #: :func:`compile_block_plans`); None tree-walks with per-op dispatch.
        self.block_plans = block_plans
        #: Explicit intra-rank thread team; None falls back to the
        #: process-wide team cache of :mod:`repro.interp.thread_team`.
        self._team = team
        self._memory_registry: dict[int, np.ndarray] = {}
        self._next_address = 0x1000

    # -- public API -----------------------------------------------------------
    def call(self, function_name: str, *args: Any) -> list[Any]:
        """Call a function by name with python/numpy arguments."""
        if function_name not in self.functions:
            raise InterpreterError(f"unknown function {function_name!r}")
        function = self.functions[function_name]
        if function.is_declaration:
            raise InterpreterError(f"cannot call declaration {function_name!r}")
        block = function.body.block
        if len(args) != len(block.args):
            raise InterpreterError(
                f"{function_name} expects {len(block.args)} arguments, got {len(args)}"
            )
        env: dict[SSAValue, Any] = {}
        for block_arg, value in zip(block.args, args):
            env[block_arg] = _wrap_argument(value, block_arg.type)
        try:
            self._run_ops(block, env)
        except _ReturnSignal as signal:
            self.complete_pending_halos()
            return signal.values
        self.complete_pending_halos()
        return []

    def call_prepared(self, function: func.FuncOp, args: Sequence[Any]) -> list[Any]:
        """Call with pre-wrapped arguments (no lookup, no per-call wrapping).

        The fast entry point of :class:`repro.core.session.Plan`: the plan
        wraps its stable per-rank buffers into interpreter values once and
        replays them every run.  ``args`` must already be wrapped (e.g. by
        :func:`wrap_argument`) and match ``function``'s block arguments.
        """
        block = function.body.block
        env: dict[SSAValue, Any] = dict(zip(block.args, args))
        try:
            self._run_ops(block, env)
        except _ReturnSignal as signal:
            self.complete_pending_halos()
            return signal.values
        self.complete_pending_halos()
        return []

    # -- core evaluation ----------------------------------------------------------
    def get(self, env: dict, value: SSAValue) -> Any:
        try:
            return env[value]
        except KeyError as err:
            hint = value.name_hint or "<unnamed>"
            raise InterpreterError(f"use of unevaluated SSA value %{hint}") from err

    def set(self, env: dict, value: SSAValue, result: Any) -> None:
        env[value] = result

    def run_block(self, block: Block, env: dict) -> list[Any]:
        """Run a block; return the operands of its terminating yield (if any)."""
        return self._run_ops(block, env)

    def _run_ops(self, block: Block, env: dict) -> list[Any]:
        if self.block_plans is not None:
            plan = self.block_plans.get(id(block))
            if plan is not None:
                return self._run_planned(plan, env)
        for op in block.ops:
            terminator_values = self._eval(op, env)
            if terminator_values is not None:
                return terminator_values
        return []

    def _run_planned(self, plan: list["PlannedOp"], env: dict) -> list[Any]:
        """Run a pre-resolved op sequence (see :func:`compile_block_plans`).

        Observationally identical to the per-op ``_eval`` loop — same
        statistics, same pending-halo completion points, same results — but
        with the per-op name/handler lookups, the constant materialization
        and the cast plumbing resolved once at plan-compile time.
        """
        stats = self.stats
        for planned in plan:
            stats.ops_executed += 1
            if self.pending_halos and not planned.transparent:
                self.complete_pending_halos()
            kind = planned.kind
            if kind == _PLAN_HANDLER:
                planned.handler(self, planned.op, env)
            elif kind == _PLAN_CONST:
                env[planned.op.results[0]] = planned.value
            elif kind == _PLAN_CAST:
                op = planned.op
                env[op.results[0]] = self.get(env, op.operands[0])
            elif kind == _PLAN_YIELD:
                return [self.get(env, operand) for operand in planned.op.operands]
            elif kind == _PLAN_RETURN:
                raise _ReturnSignal(
                    [self.get(env, operand) for operand in planned.op.operands]
                )
            else:  # _PLAN_EMPTY: omp/gpu terminators
                return []
        return []

    def _eval(self, op: Operation, env: dict) -> Optional[list[Any]]:
        self.stats.ops_executed += 1
        name = op.name
        if self.pending_halos and not (
            name in _HALO_TRANSPARENT_OPS or name.startswith("arith.")
        ):
            # Any operation that could observe array contents forces the
            # in-flight halo receives to land first (blocking semantics).
            self.complete_pending_halos()
        if name in ("scf.yield", "omp.yield", "hls.yield", "stencil.return"):
            return [self.get(env, operand) for operand in op.operands]
        if name == "func.return":
            raise _ReturnSignal([self.get(env, operand) for operand in op.operands])
        if name in ("omp.terminator", "gpu.terminator"):
            return []
        fn = _HANDLERS.get(name)
        if fn is None:
            raise InterpreterError(f"no interpreter support for operation {name!r}")
        fn(self, op, env)
        return None

    def try_vectorized(self, op: Operation, env: dict) -> bool:
        """Run ``op`` through its compiled vectorized nest, if one exists.

        Returns True when the nest executed (buffers updated, statistics
        counted); False requests the per-cell tree walk.
        """
        if self.kernel is None:
            nest = None
        else:
            nest = self.kernel.nest_for(op)
        if nest is None:
            # About to tree-walk (or not a compiled nest at all): the walker
            # reads cells one by one, so every halo must have landed.
            self.complete_pending_halos()
            return False
        tracer = self.tracer
        if tracer is None:
            executed = nest.execute(self, env)
        else:
            span = tracer.begin("nest")
            try:
                executed = nest.execute(self, env)
            finally:
                tracer.end("nest", span)
        if not executed:
            self.complete_pending_halos()
        return executed

    # -- halo overlap -----------------------------------------------------------
    @property
    def thread_team(self):
        """The intra-rank worker team, or None when running single-threaded."""
        if self.threads <= 1:
            return None
        if self._team is not None:
            return self._team
        from .thread_team import get_thread_team

        return get_thread_team(self.threads)

    def complete_pending_halos(self, overlapped: bool = False) -> None:
        """Wait for every in-flight halo receive and write it into its field.

        ``overlapped=True`` marks the completion as having been deferred past
        interior compute (called by the vectorized backend's overlap path),
        which is counted in :attr:`ExecStatistics.halo_swaps_overlapped`.
        """
        if not self.pending_halos:
            return
        pending, self.pending_halos = self.pending_halos, []
        for halo in pending:
            halo.complete(self)
            if overlapped:
                self.stats.halo_swaps_overlapped += 1

    def complete_pending_halos_touching(self, array: np.ndarray) -> None:
        """Complete the posting-order *prefix* of halos that ``array`` needs.

        Receives are matched by ``(source, tag)`` FIFO, not by request
        identity, and different swaps reuse the same direction tags — so
        completing a later halo before an earlier one on the same channel
        would steal the earlier one's payload.  Completing the whole prefix
        up to the last memory-overlapping halo preserves the channel order;
        unrelated halos posted after it stay in flight.
        """
        last = -1
        for index, halo in enumerate(self.pending_halos):
            if halo.array is array or np.shares_memory(halo.array, array):
                last = index
        if last < 0:
            return
        prefix = self.pending_halos[: last + 1]
        self.pending_halos = self.pending_halos[last + 1 :]
        for halo in prefix:
            halo.complete(self)

    # -- memory / pointer plumbing ---------------------------------------------------
    def register_buffer(self, array: np.ndarray) -> int:
        address = self._next_address
        self._next_address += max(array.nbytes, 8)
        self._memory_registry[address] = array
        return address

    def buffer_at(self, address: int) -> np.ndarray:
        if address not in self._memory_registry:
            raise InterpreterError(f"dereference of unknown address {address:#x}")
        return self._memory_registry[address]

    def as_array(self, value: Any) -> np.ndarray:
        """View any buffer-like runtime value as a numpy array."""
        if isinstance(value, MemRefValue):
            return value.array
        if isinstance(value, PointerValue):
            return self.buffer_at(value.address)
        if isinstance(value, np.ndarray):
            return value
        if isinstance(value, (int, np.integer)):
            return self.buffer_at(int(value))
        raise InterpreterError(f"value {value!r} is not buffer-like")

    # -- MPI helpers ------------------------------------------------------------------
    def require_comm(self) -> CommunicatorBase:
        if self.comm is None:
            raise InterpreterError(
                "this program performs message passing but no communicator was "
                "provided; pass comm=... when constructing the Interpreter"
            )
        return self.comm

    def mpi_library_call(self, symbol: str, args: list[Any]) -> list[Any]:
        """Execute a lowered MPI_* function call against the simulated runtime."""
        comm = self.require_comm()
        if symbol in ("MPI_Init", "MPI_Finalize", "MPI_Barrier"):
            if symbol == "MPI_Barrier":
                comm.barrier()
            return [0]
        if symbol == "MPI_Comm_rank":
            return [comm.rank]
        if symbol == "MPI_Comm_size":
            return [comm.size]
        tracer = self.tracer
        if symbol in ("MPI_Send", "MPI_Isend"):
            span = tracer.begin("halo.post") if tracer is not None else 0.0
            buffer, count, _dtype, dest, tag = args[0], args[1], args[2], args[3], args[4]
            data = self.as_array(buffer).reshape(-1)[: int(count)]
            comm.isend(data, int(dest), int(tag))
            self.stats.mpi_messages += 1
            if symbol == "MPI_Isend" and len(args) >= 7:
                _mark_send_complete(args[6])
            if tracer is not None:
                tracer.end("halo.post", span)
            return [0]
        if symbol in ("MPI_Recv",):
            buffer, count, _dtype, source, tag = args[0], args[1], args[2], args[3], args[4]
            array = self.as_array(buffer).reshape(-1)[: int(count)]
            comm.recv(array, int(source), int(tag))
            return [0]
        if symbol == "MPI_Irecv":
            span = tracer.begin("halo.post") if tracer is not None else 0.0
            buffer, count, _dtype, source, tag = args[0], args[1], args[2], args[3], args[4]
            array = self.as_array(buffer).reshape(-1)[: int(count)]
            request = comm.irecv(array, int(source), int(tag))
            if len(args) >= 7:
                _store_pending(args[6], request)
            if tracer is not None:
                tracer.end("halo.post", span)
            return [0]
        if symbol == "MPI_Wait":
            span = tracer.begin("halo.wait") if tracer is not None else 0.0
            _wait_request(comm, args[0])
            if tracer is not None:
                tracer.end("halo.wait", span)
            return [0]
        if symbol == "MPI_Waitall":
            span = tracer.begin("halo.wait") if tracer is not None else 0.0
            count, requests = args[0], args[1]
            _waitall(comm, requests)
            if tracer is not None:
                tracer.end("halo.wait", span)
            return [0]
        if symbol in ("MPI_Allreduce", "MPI_Reduce"):
            send_buffer, recv_buffer = args[0], args[1]
            operation = "sum"
            data = self.as_array(send_buffer)
            if symbol == "MPI_Allreduce":
                result = comm.allreduce(data, operation)
                np.copyto(self.as_array(recv_buffer), result)
            else:
                result = comm.reduce(data, operation, root=0)
                if comm.rank == 0 and result is not None:
                    np.copyto(self.as_array(recv_buffer), result)
            return [0]
        if symbol == "MPI_Bcast":
            buffer = self.as_array(args[0])
            result = comm.bcast(buffer, root=int(args[3]) if len(args) > 3 else 0)
            np.copyto(buffer, result)
            return [0]
        if symbol == "MPI_Gather":
            send_buffer = self.as_array(args[0])
            gathered = comm.gather(send_buffer, root=int(args[6]) if len(args) > 6 else 0)
            if gathered is not None:
                recv = self.as_array(args[3])
                np.copyto(recv.reshape(gathered.shape), gathered)
            return [0]
        raise InterpreterError(f"unsupported MPI library call {symbol!r}")


# ---------------------------------------------------------------------------
# argument wrapping
# ---------------------------------------------------------------------------

def _wrap_argument(value: Any, expected_type) -> Any:
    if isinstance(value, MemRefValue):
        return value
    if isinstance(value, np.ndarray):
        if isinstance(expected_type, stencil.FieldType) and expected_type.bounds is not None:
            return MemRefValue(value, origin=expected_type.bounds.lb)
        return MemRefValue(value)
    return value


def wrap_argument(value: Any, expected_type) -> Any:
    """Public alias of the argument wrapper (used by Plan.call_prepared callers)."""
    return _wrap_argument(value, expected_type)


# ---------------------------------------------------------------------------
# helpers shared by MPI handlers
# ---------------------------------------------------------------------------

def _request_slot(value: Any) -> RequestHandle:
    if isinstance(value, RequestRef):
        return value.slot
    if isinstance(value, RequestHandle):
        return value
    raise InterpreterError(f"value {value!r} is not an MPI request")


def _mark_send_complete(request_value: Any) -> None:
    slot = _request_slot(request_value)
    slot.pending = None
    slot.null = False


def _store_pending(request_value: Any, request: Any) -> None:
    slot = _request_slot(request_value)
    slot.pending = request
    slot.null = False


def _wait_request(comm: CommunicatorBase, request_value: Any) -> None:
    slot = _request_slot(request_value)
    if slot.pending is not None:
        comm.wait(slot.pending)
        slot.pending = None


def _waitall(comm: CommunicatorBase, requests_value: Any) -> None:
    if isinstance(requests_value, RequestArray):
        slots = requests_value.slots
    elif isinstance(requests_value, RequestRef):
        slots = requests_value.array.slots
    else:
        raise InterpreterError("MPI_Waitall expects a request array")
    for slot in slots:
        if slot.pending is not None:
            comm.wait(slot.pending)
            slot.pending = None


# ---------------------------------------------------------------------------
# builtin / func
# ---------------------------------------------------------------------------

@handler("builtin.module")
def _run_module(interp: Interpreter, op: Operation, env: dict) -> None:
    raise InterpreterError("builtin.module cannot be executed directly; call a function")


@handler("builtin.unrealized_conversion_cast")
def _run_cast(interp: Interpreter, op: Operation, env: dict) -> None:
    value = interp.get(env, op.operands[0])
    interp.set(env, op.results[0], value)


@handler("func.func")
def _run_func_def(interp: Interpreter, op: Operation, env: dict) -> None:
    # Function definitions are not executed when encountered inside a block.
    return


@handler("func.call")
def _run_call(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, func.CallOp)
    args = [interp.get(env, operand) for operand in op.operands]
    callee = op.callee
    target = interp.functions.get(callee)
    if target is not None and not target.is_declaration:
        results = interp.call(callee, *args)
    elif callee.startswith("MPI_"):
        results = interp.mpi_library_call(callee, args)
    else:
        raise InterpreterError(f"call to unknown function {callee!r}")
    for result, value in zip(op.results, results):
        interp.set(env, result, value)


# ---------------------------------------------------------------------------
# arith
# ---------------------------------------------------------------------------

@handler("arith.constant")
def _run_constant(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, arith.ConstantOp)
    value_attr = op.value
    if isinstance(value_attr, IntegerAttr):
        result_type = op.results[0].type
        if isinstance(result_type, IntegerType) and result_type.width == 1:
            interp.set(env, op.results[0], bool(value_attr.value))
        else:
            interp.set(env, op.results[0], int(value_attr.value))
    elif isinstance(value_attr, FloatAttr):
        interp.set(env, op.results[0], float(value_attr.value))
    else:
        raise InterpreterError("unsupported arith.constant payload")


def _binary(op_name: str, fn: Callable[[Any, Any], Any]) -> None:
    @handler(op_name)
    def _run(interp: Interpreter, op: Operation, env: dict) -> None:
        lhs = interp.get(env, op.operands[0])
        rhs = interp.get(env, op.operands[1])
        interp.set(env, op.results[0], fn(lhs, rhs))


_binary("arith.addi", lambda a, b: a + b)
_binary("arith.subi", lambda a, b: a - b)
_binary("arith.muli", lambda a, b: a * b)
_binary("arith.divsi", lambda a, b: int(a / b) if b else 0)
_binary("arith.remsi", lambda a, b: int(a - b * int(a / b)) if b else 0)
_binary("arith.floordivsi", lambda a, b: a // b if b else 0)
_binary("arith.minsi", lambda a, b: min(a, b))
_binary("arith.maxsi", lambda a, b: max(a, b))
_binary("arith.andi", lambda a, b: (a and b) if isinstance(a, bool) else (a & b))
_binary("arith.ori", lambda a, b: (a or b) if isinstance(a, bool) else (a | b))
_binary("arith.xori", lambda a, b: bool(a) ^ bool(b) if isinstance(a, bool) else a ^ b)
_binary("arith.shli", lambda a, b: a << b)
_binary("arith.addf", lambda a, b: a + b)
_binary("arith.subf", lambda a, b: a - b)
_binary("arith.mulf", lambda a, b: a * b)
_binary("arith.divf", lambda a, b: a / b)
_binary("arith.maximumf", lambda a, b: np.maximum(a, b))
_binary("arith.minimumf", lambda a, b: np.minimum(a, b))
_binary("arith.powf", lambda a, b: a ** b)


@handler("arith.negf")
def _run_negf(interp: Interpreter, op: Operation, env: dict) -> None:
    interp.set(env, op.results[0], -interp.get(env, op.operands[0]))


_CMPI = {
    "eq": lambda a, b: a == b, "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b, "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b, "sge": lambda a, b: a >= b,
    "ult": lambda a, b: abs(a) < abs(b), "ule": lambda a, b: abs(a) <= abs(b),
    "ugt": lambda a, b: abs(a) > abs(b), "uge": lambda a, b: abs(a) >= abs(b),
}

_CMPF = {
    "false": lambda a, b: False, "oeq": lambda a, b: a == b,
    "ogt": lambda a, b: a > b, "oge": lambda a, b: a >= b,
    "olt": lambda a, b: a < b, "ole": lambda a, b: a <= b,
    "one": lambda a, b: a != b, "ord": lambda a, b: True,
}


@handler("arith.cmpi")
def _run_cmpi(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, arith.CmpiOp)
    lhs = interp.get(env, op.operands[0])
    rhs = interp.get(env, op.operands[1])
    interp.set(env, op.results[0], _CMPI[op.predicate](lhs, rhs))


@handler("arith.cmpf")
def _run_cmpf(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, arith.CmpfOp)
    lhs = interp.get(env, op.operands[0])
    rhs = interp.get(env, op.operands[1])
    interp.set(env, op.results[0], _CMPF[op.predicate](lhs, rhs))


@handler("arith.select")
def _run_select(interp: Interpreter, op: Operation, env: dict) -> None:
    condition = interp.get(env, op.operands[0])
    chosen = op.operands[1] if condition else op.operands[2]
    interp.set(env, op.results[0], interp.get(env, chosen))


def _cast(op_name: str, fn: Callable[[Any], Any]) -> None:
    @handler(op_name)
    def _run(interp: Interpreter, op: Operation, env: dict) -> None:
        interp.set(env, op.results[0], fn(interp.get(env, op.operands[0])))


_cast("arith.index_cast", lambda v: int(v))
_cast("arith.sitofp", lambda v: float(v))
_cast("arith.fptosi", lambda v: int(v))
_cast("arith.extf", lambda v: float(v))
_cast("arith.truncf", lambda v: float(np.float32(v)))
_cast("arith.extsi", lambda v: int(v))
_cast("arith.trunci", lambda v: int(v))


# ---------------------------------------------------------------------------
# scf
# ---------------------------------------------------------------------------

@handler("scf.for")
def _run_for(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, scf.ForOp)
    if interp.try_vectorized(op, env):
        return
    lower = int(interp.get(env, op.lower_bound))
    upper = int(interp.get(env, op.upper_bound))
    step = int(interp.get(env, op.step))
    if step <= 0:
        raise InterpreterError("scf.for requires a positive step")
    carried = [interp.get(env, value) for value in op.iter_args]
    block = op.body.block
    # Iteration-carried loops are the time loops of this codebase; each
    # iteration is one "step" span.  Inner bound-only loops stay unspanned.
    tracer = interp.tracer
    traced_step = tracer is not None and len(op.iter_args) > 0
    # The body runs in a scoped copy of the environment so loop-local SSA
    # bindings (induction variable, iter args, body values) never leak into —
    # or go stale inside — the caller's environment across nested reuse.
    local_env = dict(env)
    for iteration in range(lower, upper, step):
        span = tracer.begin("step") if traced_step else 0.0
        local_env[block.args[0]] = iteration
        for arg, value in zip(block.args[1:], carried):
            local_env[arg] = value
        yielded = interp.run_block(block, local_env)
        if yielded:
            carried = yielded
        if traced_step:
            tracer.end("step", span)
    for result, value in zip(op.results, carried):
        interp.set(env, result, value)


@handler("scf.parallel")
def _run_parallel(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, scf.ParallelOp)
    rank = op.rank
    lowers = [int(interp.get(env, v)) for v in op.lower_bounds]
    uppers = [int(interp.get(env, v)) for v in op.upper_bounds]
    steps = [int(interp.get(env, v)) for v in op.steps]
    if "gpu_kernel" in op.attributes:
        interp.stats.kernel_launches += 1
    if interp.try_vectorized(op, env):
        return
    block = op.body.block
    local_env = dict(env)  # scoped: body bindings must not leak to the caller

    # Reduction state: one accumulator per init value, folded in iteration
    # order (the deterministic left-fold the vectorized backend replicates).
    accumulators = [interp.get(env, value) for value in op.init_values]
    reduce_op = block.last_op if isinstance(block.last_op, scf.ReduceOp) else None
    if reduce_op is not None and len(reduce_op.operands) != len(accumulators):
        raise InterpreterError(
            f"scf.reduce carries {len(reduce_op.operands)} values but the "
            f"enclosing scf.parallel has {len(accumulators)} init values"
        )

    def loop(dim: int, indices: list[int]) -> None:
        if dim == rank:
            for arg, value in zip(block.args, indices):
                local_env[arg] = value
            interp.run_block(block, local_env)
            interp.stats.cells_updated += 1
            if reduce_op is not None:
                for slot, (value, region) in enumerate(
                    zip(reduce_op.operands, reduce_op.regions)
                ):
                    combine_block = region.block
                    local_env[combine_block.args[0]] = accumulators[slot]
                    local_env[combine_block.args[1]] = local_env[value]
                    yielded = interp.run_block(combine_block, local_env)
                    accumulators[slot] = yielded[0]
            return
        for position in range(lowers[dim], uppers[dim], steps[dim]):
            loop(dim + 1, indices + [position])

    loop(0, [])
    for result, value in zip(op.results, accumulators):
        interp.set(env, result, value)


@handler("scf.if")
def _run_if(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, scf.IfOp)
    condition = bool(interp.get(env, op.condition))
    region = op.then_region if condition else op.else_region
    values: list[Any] = []
    if region.blocks:
        values = interp.run_block(region.block, env)
    for result, value in zip(op.results, values):
        interp.set(env, result, value)


@handler("scf.while")
def _run_while(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, scf.WhileOp)
    carried = [interp.get(env, value) for value in op.operands]
    local_env = dict(env)  # scoped: region bindings must not leak to the caller
    for _ in range(10_000_000):
        before = op.before_region.block
        for arg, value in zip(before.args, carried):
            local_env[arg] = value
        condition_values = interp.run_block(before, local_env)
        keep_going = bool(condition_values[0])
        passed = condition_values[1:]
        if not keep_going:
            carried = passed
            break
        after = op.after_region.block
        for arg, value in zip(after.args, passed):
            local_env[arg] = value
        carried = interp.run_block(after, local_env)
    for result, value in zip(op.results, carried):
        interp.set(env, result, value)


@handler("scf.condition")
def _run_condition(interp: Interpreter, op: Operation, env: dict) -> None:
    # Handled inside scf.while via run_block's terminator collection.
    return


@handler("scf.reduce")
def _run_reduce(interp: Interpreter, op: Operation, env: dict) -> None:
    return


# ---------------------------------------------------------------------------
# memref
# ---------------------------------------------------------------------------

@handler("memref.alloc")
def _run_alloc(interp: Interpreter, op: Operation, env: dict) -> None:
    interp.set(env, op.results[0], MemRefValue.for_type(op.results[0].type))


@handler("memref.alloca")
def _run_alloca(interp: Interpreter, op: Operation, env: dict) -> None:
    interp.set(env, op.results[0], MemRefValue.for_type(op.results[0].type))


@handler("memref.dealloc")
def _run_dealloc(interp: Interpreter, op: Operation, env: dict) -> None:
    return


@handler("memref.load")
def _run_load(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, memref.LoadOp)
    target = interp.get(env, op.memref)
    indices = tuple(int(interp.get(env, index)) for index in op.indices)
    interp.set(env, op.results[0], target.array[indices].item())


@handler("memref.store")
def _run_store(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, memref.StoreOp)
    target = interp.get(env, op.memref)
    indices = tuple(int(interp.get(env, index)) for index in op.indices)
    target.array[indices] = interp.get(env, op.value)


@handler("memref.subview")
def _run_subview(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, memref.SubviewOp)
    source = interp.get(env, op.source)
    interp.set(env, op.results[0], source.view(op.offsets, op.sizes))


@handler("memref.copy")
def _run_copy(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, memref.CopyOp)
    source = interp.get(env, op.source)
    target = interp.get(env, op.target)
    target.copy_from(source)


@handler("memref.cast")
def _run_memref_cast(interp: Interpreter, op: Operation, env: dict) -> None:
    interp.set(env, op.results[0], interp.get(env, op.operands[0]))


@handler("memref.dim")
def _run_dim(interp: Interpreter, op: Operation, env: dict) -> None:
    target = interp.get(env, op.operands[0])
    dim = int(interp.get(env, op.operands[1]))
    interp.set(env, op.results[0], int(target.array.shape[dim]))


@handler("memref.extract_aligned_pointer_as_index")
def _run_extract_pointer(interp: Interpreter, op: Operation, env: dict) -> None:
    target = interp.get(env, op.operands[0])
    interp.set(env, op.results[0], interp.register_buffer(target.array))


@handler("memref.get_global")
def _run_get_global(interp: Interpreter, op: Operation, env: dict) -> None:
    raise InterpreterError("memref.global values are not supported by the interpreter")


# ---------------------------------------------------------------------------
# llvm
# ---------------------------------------------------------------------------

@handler("llvm.inttoptr")
def _run_inttoptr(interp: Interpreter, op: Operation, env: dict) -> None:
    interp.set(env, op.results[0], PointerValue(int(interp.get(env, op.operands[0]))))


@handler("llvm.ptrtoint")
def _run_ptrtoint(interp: Interpreter, op: Operation, env: dict) -> None:
    pointer = interp.get(env, op.operands[0])
    interp.set(env, op.results[0], int(pointer.address))


@handler("llvm.mlir.null")
def _run_null(interp: Interpreter, op: Operation, env: dict) -> None:
    interp.set(env, op.results[0], PointerValue(0))


# ---------------------------------------------------------------------------
# stencil (vectorised evaluation)
# ---------------------------------------------------------------------------

@handler("stencil.alloc")
def _run_stencil_alloc(interp: Interpreter, op: Operation, env: dict) -> None:
    field_type = op.results[0].type
    assert isinstance(field_type, stencil.FieldType) and field_type.bounds is not None
    interp.set(
        env,
        op.results[0],
        MemRefValue.allocate(
            field_type.bounds.shape, field_type.element_type, origin=field_type.bounds.lb
        ),
    )


@handler("stencil.external_load")
def _run_external_load(interp: Interpreter, op: Operation, env: dict) -> None:
    source = interp.get(env, op.operands[0])
    field_type = op.results[0].type
    assert isinstance(field_type, stencil.FieldType)
    origin = field_type.bounds.lb if field_type.bounds is not None else None
    interp.set(env, op.results[0], MemRefValue(interp.as_array(source), origin))


@handler("stencil.external_store")
def _run_external_store(interp: Interpreter, op: Operation, env: dict) -> None:
    source = interp.get(env, op.operands[0])
    target = interp.get(env, op.operands[1])
    np.copyto(interp.as_array(target), interp.as_array(source))


@handler("stencil.cast")
def _run_stencil_cast(interp: Interpreter, op: Operation, env: dict) -> None:
    source = interp.get(env, op.operands[0])
    result_type = op.results[0].type
    assert isinstance(result_type, stencil.FieldType)
    origin = result_type.bounds.lb if result_type.bounds is not None else source.origin
    interp.set(env, op.results[0], MemRefValue(source.array, origin))


@handler("stencil.load")
def _run_stencil_load(interp: Interpreter, op: Operation, env: dict) -> None:
    interp.set(env, op.results[0], interp.get(env, op.operands[0]))


@handler("stencil.store")
def _run_stencil_store(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, stencil.StoreOp)
    temp = interp.get(env, op.temp)
    field = interp.get(env, op.field)
    bounds = op.bounds
    target_region = tuple(
        slice(lb - origin, ub - origin)
        for lb, ub, origin in zip(bounds.lb, bounds.ub, field.origin)
    )
    source_region = tuple(
        slice(lb - origin, ub - origin)
        for lb, ub, origin in zip(bounds.lb, bounds.ub, temp.origin)
    )
    field.array[target_region] = temp.array[source_region]


@handler("stencil.apply")
def _run_stencil_apply(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, stencil.ApplyOp)
    bounds = _apply_output_bounds(op)
    out_shape = bounds.shape
    interp.stats.kernel_launches += 1
    interp.stats.cells_updated += bounds.size()

    block = op.body.block
    local: dict[SSAValue, Any] = {}
    for arg, operand in zip(block.args, op.operands):
        local[arg] = interp.get(env, operand)

    returned: list[Any] = []
    for body_op in block.ops:
        if isinstance(body_op, stencil.AccessOp):
            source = local[body_op.temp]
            region = tuple(
                slice(lb + off - origin, ub + off - origin)
                for lb, ub, off, origin in zip(
                    bounds.lb, bounds.ub, body_op.offset, source.origin
                )
            )
            local[body_op.result] = source.array[region]
        elif isinstance(body_op, stencil.IndexOp):
            dim = body_op.dim
            shape = [1] * len(out_shape)
            shape[dim] = out_shape[dim]
            axis = np.arange(bounds.lb[dim], bounds.ub[dim]).reshape(shape)
            local[body_op.result] = np.broadcast_to(axis, out_shape)
        elif isinstance(body_op, stencil.ReturnOp):
            for value in body_op.operands:
                result_array = local[value]
                if np.isscalar(result_array) or getattr(result_array, "shape", ()) == ():
                    result_array = np.full(out_shape, result_array, dtype=np.float64)
                returned.append(np.array(result_array))
        else:
            _eval_vectorised(interp, body_op, local)

    for result, array in zip(op.results, returned):
        interp.set(env, result, MemRefValue(array, origin=bounds.lb))


def _apply_output_bounds(op: stencil.ApplyOp) -> stencil.StencilBoundsAttr:
    for result in op.results:
        result_type = result.type
        if isinstance(result_type, stencil.TempType) and result_type.bounds is not None:
            candidate = result_type.bounds
            break
    else:
        candidate = None
    for result in op.results:
        for use in result.uses:
            if isinstance(use.operation, stencil.StoreOp):
                return use.operation.bounds
    if candidate is None:
        raise InterpreterError(
            "cannot determine the iteration domain of a stencil.apply without "
            "bounds on its results or a consuming stencil.store"
        )
    return candidate


def _eval_vectorised(interp: Interpreter, op: Operation, local: dict) -> None:
    """Evaluate arith ops over numpy arrays inside a stencil.apply body."""
    name = op.name
    if name == "arith.constant":
        assert isinstance(op, arith.ConstantOp)
        local[op.results[0]] = op.literal()
        return
    values = [local[operand] for operand in op.operands]
    simple = {
        "arith.addf": lambda a, b: a + b, "arith.subf": lambda a, b: a - b,
        "arith.mulf": lambda a, b: a * b, "arith.divf": lambda a, b: a / b,
        "arith.addi": lambda a, b: a + b, "arith.subi": lambda a, b: a - b,
        "arith.muli": lambda a, b: a * b,
        "arith.maximumf": np.maximum, "arith.minimumf": np.minimum,
        "arith.powf": np.power,
        "arith.minsi": np.minimum, "arith.maxsi": np.maximum,
    }
    if name in simple:
        local[op.results[0]] = simple[name](values[0], values[1])
        return
    if name == "arith.negf":
        local[op.results[0]] = -values[0]
        return
    if name == "arith.cmpf":
        assert isinstance(op, arith.CmpfOp)
        comparisons = {
            "oeq": np.equal, "ogt": np.greater, "oge": np.greater_equal,
            "olt": np.less, "ole": np.less_equal, "one": np.not_equal,
        }
        local[op.results[0]] = comparisons[op.predicate](values[0], values[1])
        return
    if name == "arith.cmpi":
        assert isinstance(op, arith.CmpiOp)
        comparisons = {
            "eq": np.equal, "ne": np.not_equal, "slt": np.less, "sle": np.less_equal,
            "sgt": np.greater, "sge": np.greater_equal,
        }
        local[op.results[0]] = comparisons[op.predicate](values[0], values[1])
        return
    if name == "arith.select":
        local[op.results[0]] = np.where(values[0], values[1], values[2])
        return
    if name in ("arith.sitofp", "arith.extf"):
        local[op.results[0]] = np.asarray(values[0], dtype=np.float64)
        return
    if name == "arith.index_cast":
        local[op.results[0]] = values[0]
        return
    raise InterpreterError(
        f"operation {name!r} is not supported inside a stencil.apply body"
    )


# ---------------------------------------------------------------------------
# dmp (high-level halo exchange execution)
# ---------------------------------------------------------------------------

def _travel_tag(exchange: dmp.ExchangeAttr, sending: bool) -> int:
    dim = next((d for d, off in enumerate(exchange.neighbor) if off != 0), 0)
    offset = exchange.neighbor[dim]
    direction = offset if sending else -offset
    return dim * 2 + (1 if direction > 0 else 0)


def halo_transparent(op_name: str) -> bool:
    """Whether in-flight halo receives survive the named operation.

    The single source of truth for the completion-point discipline: the
    planned-op path, the tree walker and the megakernel code generator all
    consult this predicate, so their halo completion points cannot diverge.
    """
    return op_name in _HALO_TRANSPARENT_OPS or op_name.startswith("arith.")


class SwapMessagePlan:
    """Per-rank message geometry of one ``dmp.swap`` (no arrays, no comm).

    ``sends`` holds ``(send_slice, neighbor, tag)`` triples and ``receives``
    holds ``(recv_slice, neighbor, tag, staging_shape, elements, axis)``
    records, in the exchange order of the op.  Computed once per (op, rank)
    it parameterizes both the interpreter's swap handler and the emitted
    megakernel's posted exchanges, guaranteeing identical slices and tags.
    """

    __slots__ = ("sends", "receives")

    def __init__(self, sends: list, receives: list):
        self.sends = sends
        self.receives = receives


def swap_message_plan(op: "dmp.SwapOp", rank: int) -> SwapMessagePlan:
    """Resolve the send/receive geometry of ``op`` for one rank."""
    grid = op.grid
    sends: list = []
    receives: list = []
    for exchange in op.swaps:
        neighbor = grid.neighbor_of(rank, exchange.neighbor)
        if neighbor is None:
            continue
        send_offsets, send_sizes = exchange.send_region
        send_slice = tuple(slice(o, o + s) for o, s in zip(send_offsets, send_sizes))
        sends.append((send_slice, neighbor, _travel_tag(exchange, True)))
        recv_offsets, recv_sizes = exchange.recv_region
        recv_slice = tuple(slice(o, o + s) for o, s in zip(recv_offsets, recv_sizes))
        axis = next((d for d, off in enumerate(exchange.neighbor) if off != 0), 0)
        receives.append(
            (
                recv_slice,
                neighbor,
                _travel_tag(exchange, False),
                tuple(exchange.size),
                exchange.element_count(),
                axis,
            )
        )
    return SwapMessagePlan(sends, receives)


@handler("dmp.swap")
def _run_swap(interp: Interpreter, op: Operation, env: dict) -> None:
    """Halo exchange: post sends and non-blocking receives, defer completion.

    The sends are buffered (the payload is copied out immediately), one
    ``irecv`` per neighbor lands in a staging buffer, and the whole exchange
    is parked on :attr:`Interpreter.pending_halos`: the following compute
    nest may then overlap its interior with the in-flight messages (see
    :meth:`repro.interp.vectorize.CompiledNest.execute`).  With
    ``overlap_halos=False`` the receives complete right here, reproducing the
    classic blocking discipline — both orders write the same bytes, so the
    results are bit-identical either way.
    """
    assert isinstance(op, dmp.SwapOp)
    data = interp.get(env, op.data)
    array = interp.as_array(data)
    # The op is halo-transparent (unrelated in-flight halos survive it), but
    # anything this buffer depends on must land before its slices are read.
    interp.complete_pending_halos_touching(array)
    interp.stats.halo_swaps += 1
    if interp.comm is None or interp.comm.size == 1:
        return
    comm = interp.comm
    tracer = interp.tracer
    span = tracer.begin("halo.post") if tracer is not None else 0.0
    plan = swap_message_plan(op, comm.rank)
    # All payloads are copied out before any message is posted (buffered
    # sends), exactly as before the geometry was factored into the plan.
    payloads = [
        (array[send_slice].copy(), neighbor, tag)
        for send_slice, neighbor, tag in plan.sends
    ]
    for payload, neighbor, tag in payloads:
        comm.isend(payload, neighbor, tag)
        interp.stats.mpi_messages += 1
    items = []
    for recv_slice, neighbor, tag, staging_shape, elements, axis in plan.receives:
        buffer = np.empty(staging_shape, dtype=array.dtype)
        request = comm.irecv(buffer, neighbor, tag)
        items.append(_HaloReceive(request, buffer, recv_slice, elements, axis))
    if tracer is not None:
        tracer.end("halo.post", span)
    halo = PendingHalo(array, items)
    if interp.overlap_halos:
        interp.pending_halos.append(halo)
    else:
        halo.complete(interp)


# ---------------------------------------------------------------------------
# mpi dialect (pre-"magic constant" lowering)
# ---------------------------------------------------------------------------

@handler("mpi.init")
def _run_mpi_init(interp: Interpreter, op: Operation, env: dict) -> None:
    return


@handler("mpi.finalize")
def _run_mpi_finalize(interp: Interpreter, op: Operation, env: dict) -> None:
    return


@handler("mpi.barrier")
def _run_mpi_barrier(interp: Interpreter, op: Operation, env: dict) -> None:
    interp.require_comm().barrier()


@handler("mpi.comm_rank")
def _run_comm_rank(interp: Interpreter, op: Operation, env: dict) -> None:
    interp.set(env, op.results[0], interp.comm.rank if interp.comm else 0)


@handler("mpi.comm_size")
def _run_comm_size(interp: Interpreter, op: Operation, env: dict) -> None:
    interp.set(env, op.results[0], interp.comm.size if interp.comm else 1)


@handler("mpi.unwrap_memref")
def _run_unwrap(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, mpi.UnwrapMemrefOp)
    target = interp.get(env, op.memref)
    address = interp.register_buffer(target.array)
    interp.set(env, op.ptr, PointerValue(address))
    interp.set(env, op.count, int(target.array.size))
    interp.set(env, op.dtype, DataTypeValue(str(target.array.dtype)))


@handler("mpi.allocate_requests")
def _run_allocate_requests(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, mpi.AllocateRequestsOp)
    interp.set(env, op.results[0], RequestArray(op.count))


@handler("mpi.get_request")
def _run_get_request(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, mpi.GetRequestOp)
    array = interp.get(env, op.requests)
    interp.set(env, op.results[0], RequestRef(array, op.index))


@handler("mpi.set_null_request")
def _run_set_null(interp: Interpreter, op: Operation, env: dict) -> None:
    _request_slot(interp.get(env, op.operands[0])).set_null()


@handler("mpi.send")
def _run_mpi_send(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, mpi.SendOp)
    comm = interp.require_comm()
    data = interp.as_array(interp.get(env, op.buffer)).reshape(-1)
    count = int(interp.get(env, op.count))
    comm.send(data[:count], int(interp.get(env, op.peer)), int(interp.get(env, op.tag)))
    interp.stats.mpi_messages += 1


@handler("mpi.recv")
def _run_mpi_recv(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, mpi.RecvOp)
    comm = interp.require_comm()
    data = interp.as_array(interp.get(env, op.buffer)).reshape(-1)
    count = int(interp.get(env, op.count))
    comm.recv(data[:count], int(interp.get(env, op.peer)), int(interp.get(env, op.tag)))


@handler("mpi.isend")
def _run_mpi_isend(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, mpi.IsendOp)
    comm = interp.require_comm()
    tracer = interp.tracer
    span = tracer.begin("halo.post") if tracer is not None else 0.0
    data = interp.as_array(interp.get(env, op.buffer)).reshape(-1)
    count = int(interp.get(env, op.count))
    comm.isend(data[:count], int(interp.get(env, op.peer)), int(interp.get(env, op.tag)))
    if tracer is not None:
        tracer.end("halo.post", span)
    interp.stats.mpi_messages += 1
    request = op.request
    assert request is not None
    _mark_send_complete(interp.get(env, request))


@handler("mpi.irecv")
def _run_mpi_irecv(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, mpi.IrecvOp)
    comm = interp.require_comm()
    data = interp.as_array(interp.get(env, op.buffer)).reshape(-1)
    count = int(interp.get(env, op.count))
    pending = comm.irecv(
        data[:count], int(interp.get(env, op.peer)), int(interp.get(env, op.tag))
    )
    request = op.request
    assert request is not None
    _store_pending(interp.get(env, request), pending)


@handler("mpi.wait")
def _run_mpi_wait(interp: Interpreter, op: Operation, env: dict) -> None:
    _wait_request(interp.require_comm(), interp.get(env, op.operands[0]))


@handler("mpi.test")
def _run_mpi_test(interp: Interpreter, op: Operation, env: dict) -> None:
    slot = _request_slot(interp.get(env, op.operands[0]))
    if slot.pending is None:
        interp.set(env, op.results[0], True)
    else:
        interp.set(env, op.results[0], slot.pending.test())


@handler("mpi.waitall")
def _run_mpi_waitall(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, mpi.WaitallOp)
    tracer = interp.tracer
    span = tracer.begin("halo.wait") if tracer is not None else 0.0
    _waitall(interp.require_comm(), interp.get(env, op.requests))
    if tracer is not None:
        tracer.end("halo.wait", span)


@handler("mpi.reduce")
def _run_mpi_reduce(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, mpi.ReduceOp)
    comm = interp.require_comm()
    send = interp.as_array(interp.get(env, op.send_buffer))
    recv = interp.as_array(interp.get(env, op.recv_buffer))
    root = int(interp.get(env, op.root)) if op.root is not None else 0
    result = comm.reduce(send, op.operation, root)
    if comm.rank == root and result is not None:
        np.copyto(recv, result)


@handler("mpi.allreduce")
def _run_mpi_allreduce(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, mpi.AllreduceOp)
    comm = interp.require_comm()
    send = interp.as_array(interp.get(env, op.send_buffer))
    recv = interp.as_array(interp.get(env, op.recv_buffer))
    np.copyto(recv, comm.allreduce(send, op.operation))


@handler("mpi.bcast")
def _run_mpi_bcast(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, mpi.BcastOp)
    comm = interp.require_comm()
    buffer = interp.as_array(interp.get(env, op.buffer))
    np.copyto(buffer, comm.bcast(buffer, int(interp.get(env, op.root))))


@handler("mpi.gather")
def _run_mpi_gather(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, mpi.GatherOp)
    comm = interp.require_comm()
    send = interp.as_array(interp.get(env, op.send_buffer))
    root = int(interp.get(env, op.root))
    gathered = comm.gather(send, root)
    if gathered is not None:
        recv = interp.as_array(interp.get(env, op.recv_buffer))
        np.copyto(recv.reshape(gathered.shape), gathered)


# ---------------------------------------------------------------------------
# gpu / omp / hls structural ops
# ---------------------------------------------------------------------------

@handler("gpu.host_synchronize")
def _run_host_sync(interp: Interpreter, op: Operation, env: dict) -> None:
    interp.stats.host_synchronizations += 1


@handler("gpu.alloc")
def _run_gpu_alloc(interp: Interpreter, op: Operation, env: dict) -> None:
    interp.set(env, op.results[0], MemRefValue.for_type(op.results[0].type))


@handler("gpu.dealloc")
def _run_gpu_dealloc(interp: Interpreter, op: Operation, env: dict) -> None:
    return


@handler("gpu.memcpy")
def _run_gpu_memcpy(interp: Interpreter, op: Operation, env: dict) -> None:
    dst = interp.get(env, op.operands[0])
    src = interp.get(env, op.operands[1])
    dst.copy_from(src)


@handler("omp.parallel")
def _run_omp_parallel(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, omp.ParallelOp)
    interp.stats.omp_regions += 1
    interp.run_block(op.body.block, env)


@handler("omp.wsloop")
def _run_omp_wsloop(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, omp.WsLoopOp)
    if interp.try_vectorized(op, env):
        return
    rank = op.rank
    lowers = [int(interp.get(env, v)) for v in op.lower_bounds]
    uppers = [int(interp.get(env, v)) for v in op.upper_bounds]
    steps = [int(interp.get(env, v)) for v in op.steps]
    block = op.body.block
    local_env = dict(env)  # scoped: body bindings must not leak to the caller

    def loop(dim: int, indices: list[int]) -> None:
        if dim == rank:
            for arg, value in zip(block.args, indices):
                local_env[arg] = value
            interp.run_block(block, local_env)
            interp.stats.cells_updated += 1
            return
        for position in range(lowers[dim], uppers[dim], steps[dim]):
            loop(dim + 1, indices + [position])

    loop(0, [])


@handler("omp.barrier")
def _run_omp_barrier(interp: Interpreter, op: Operation, env: dict) -> None:
    interp.stats.omp_barriers += 1


@handler("hls.dataflow")
def _run_hls_dataflow(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, hls.DataflowOp)
    interp.run_block(op.body.block, env)


@handler("hls.stage")
def _run_hls_stage(interp: Interpreter, op: Operation, env: dict) -> None:
    assert isinstance(op, hls.StageOp)
    if op.regions and op.regions[0].blocks:
        interp.run_block(op.regions[0].block, env)


@handler("hls.shift_buffer")
def _run_hls_shift_buffer(interp: Interpreter, op: Operation, env: dict) -> None:
    interp.set(env, op.results[0], interp.get(env, op.operands[0]))


def run_function(
    module: builtin.ModuleOp,
    function_name: str,
    args: Sequence[Any] = (),
    *,
    comm: Optional[CommunicatorBase] = None,
) -> tuple[list[Any], ExecStatistics]:
    """Convenience wrapper: run one function and return (results, statistics)."""
    interpreter = Interpreter(module, comm=comm)
    results = interpreter.call(function_name, *args)
    return results, interpreter.stats
