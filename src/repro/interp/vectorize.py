"""Vectorized NumPy execution backend for lowered loop nests.

The tree-walking interpreter dispatches every lowered operation once *per grid
cell*, which makes the cost of a stencil sweep proportional to ``cells x ops``
python bytecode dispatches.  This module removes the per-cell dispatch: it
pattern-matches the loop nests produced by ``convert-stencil-to-scf`` (and the
OpenMP conversion) and compiles each nest *once* into whole-array NumPy slice
expressions — the moral equivalent of the C code Devito generates.

A nest is vectorizable when

* it is an ``scf.parallel`` / ``omp.wsloop`` nest, or an ``scf.for`` (without
  loop-carried values), possibly perfectly nested;
* inner ``scf.for`` bounds are either nest-invariant, or the ``min``-clamped
  tile pattern emitted by ``convert-stencil-to-scf{tile}`` (lower bound = an
  outer tile origin, upper bound = ``arith.minsi(origin + tile, extent)``):
  the (origin, intra-tile) loop pair walks its extent contiguously, so it is
  *collapsed* back into one whole-extent unit-step dimension and the nest
  becomes plain whole-array slices again;
* every index expression is affine in the induction variables with unit
  coefficients (``iv + c`` per memref axis, or a nest-invariant constant);
* the body consists only of ``memref.load`` / ``memref.store``, pure
  element-wise ``arith`` ops (including ``cmpf``/``cmpi``/``select`` chains,
  which become ``np.where`` trees), and optionally a terminating
  ``scf.reduce`` whose combiner is one of the ops in
  :data:`repro.dialects.arith.REDUCTION_OP_METADATA` — compiled into a NumPy
  reduction that replays the tree walker's deterministic left-fold (via
  ``ufunc.accumulate`` for order-sensitive float ``+``/``*``).

Anything else — data-dependent control flow, ``scf.while``, MPI operations,
non-affine indices — is left to the tree walker, *per nest*, so one
non-vectorizable region never forfeits the speedup of its neighbours.  Every
rejection (at compile time) and every run-time bounce is described by a
:class:`VectorizeFallback` carrying an explicit reason string, surfaced via
:meth:`CompiledKernel.fallback_for` and :attr:`CompiledNest.last_fallback`.

Equivalence with the tree walker is bit-exact: scalar loads are widened to
float64 exactly as ``ndarray.item()`` does, the element-wise expressions apply
the same operation tree in the same order, reductions fold in iteration order,
and stores down-cast on assignment.  Nests whose execution the slicing model
cannot reproduce exactly (aliased read/write buffers with shifted offsets,
out-of-range indices that python's negative indexing would wrap, non-positive
steps) are detected at *run* time and bounce back to the interpreter for that
invocation.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional, Union

import numpy as np

from ..dialects import arith, func, memref, omp, scf
from ..ir.attributes import FloatAttr, IntegerAttr
from ..ir.core import Operation, SSAValue
from ..ir.types import IndexType, IntegerType, is_float_type


class VectorizationError(Exception):
    """Internal: raised while analysing a nest that cannot be vectorized."""


class VectorizeFallback:
    """Why a nest (or one invocation of it) bounced to the tree walker."""

    __slots__ = ("op_name", "reason")

    def __init__(self, op_name: str, reason: str):
        self.op_name = op_name
        self.reason = reason

    def __str__(self) -> str:
        return f"{self.op_name}: {self.reason}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VectorizeFallback({self.op_name!r}, {self.reason!r})"


class _Bailout(Exception):
    """Internal: a run-time condition the slicing model cannot reproduce."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


# ---------------------------------------------------------------------------
# affine index expressions
# ---------------------------------------------------------------------------

class _Affine:
    """``sum(coeffs[d] * iv_d) + sum(free[v] * env[v]) + const``.

    ``free`` terms are SSA values defined outside the nest; they are resolved
    against the interpreter environment when the nest executes.
    """

    __slots__ = ("coeffs", "const", "free")

    def __init__(
        self,
        coeffs: Optional[dict[int, int]] = None,
        const: int = 0,
        free: Optional[dict[SSAValue, int]] = None,
    ):
        self.coeffs: dict[int, int] = dict(coeffs or {})
        self.const = int(const)
        self.free: dict[SSAValue, int] = dict(free or {})

    @property
    def is_invariant(self) -> bool:
        """True when the expression does not involve any induction variable."""
        return not self.coeffs

    @property
    def is_literal(self) -> bool:
        return not self.coeffs and not self.free

    def combine(self, other: "_Affine", sign: int) -> "_Affine":
        result = _Affine(self.coeffs, self.const + sign * other.const, self.free)
        for dim, coeff in other.coeffs.items():
            updated = result.coeffs.get(dim, 0) + sign * coeff
            if updated:
                result.coeffs[dim] = updated
            else:
                result.coeffs.pop(dim, None)
        for value, coeff in other.free.items():
            updated = result.free.get(value, 0) + sign * coeff
            if updated:
                result.free[value] = updated
            else:
                result.free.pop(value, None)
        return result

    def scale(self, factor: int) -> "_Affine":
        if factor == 0:
            return _Affine()
        return _Affine(
            {d: c * factor for d, c in self.coeffs.items()},
            self.const * factor,
            {v: c * factor for v, c in self.free.items()},
        )

    def invariant_value(self, env: dict) -> int:
        """Evaluate a nest-invariant expression against the environment."""
        total = self.const
        for value, coeff in self.free.items():
            total += coeff * int(env[value])
        return total


def _affine_equal(a: _Affine, b: _Affine) -> bool:
    return a.coeffs == b.coeffs and a.const == b.const and a.free == b.free


# ---------------------------------------------------------------------------
# element-wise operation tables (must mirror the scalar interpreter exactly)
# ---------------------------------------------------------------------------

_BINARY_FNS: dict[str, Callable[[Any, Any], Any]] = {
    "arith.addf": lambda a, b: a + b,
    "arith.subf": lambda a, b: a - b,
    "arith.mulf": lambda a, b: a * b,
    "arith.divf": lambda a, b: a / b,
    "arith.powf": lambda a, b: a ** b,
    "arith.maximumf": np.maximum,
    "arith.minimumf": np.minimum,
    "arith.addi": lambda a, b: a + b,
    "arith.subi": lambda a, b: a - b,
    "arith.muli": lambda a, b: a * b,
    "arith.minsi": np.minimum,
    "arith.maxsi": np.maximum,
}

_UNARY_FNS: dict[str, Callable[[Any], Any]] = {
    "arith.negf": lambda a: -a,
    "arith.sitofp": lambda a: np.asarray(a, dtype=np.float64)
    if isinstance(a, np.ndarray) else float(a),
    "arith.extf": lambda a: np.asarray(a, dtype=np.float64)
    if isinstance(a, np.ndarray) else float(a),
    "arith.truncf": lambda a: np.asarray(
        np.asarray(a, dtype=np.float32), dtype=np.float64
    ) if isinstance(a, np.ndarray) else float(np.float32(a)),
    "arith.fptosi": lambda a: np.asarray(a).astype(np.int64)
    if isinstance(a, np.ndarray) else int(a),
    "arith.extsi": lambda a: a,
    "arith.trunci": lambda a: a,
}

_CMPF_FNS = {
    "oeq": np.equal, "ogt": np.greater, "oge": np.greater_equal,
    "olt": np.less, "ole": np.less_equal, "one": np.not_equal,
}

_CMPI_FNS = {
    "eq": np.equal, "ne": np.not_equal, "slt": np.less, "sle": np.less_equal,
    "sgt": np.greater, "sge": np.greater_equal,
}

#: NumPy ufuncs implementing the reduction combiners named by
#: :data:`repro.dialects.arith.REDUCTION_OP_METADATA`.
_REDUCE_UFUNCS = {
    "add": np.add,
    "multiply": np.multiply,
    "minimum": np.minimum,
    "maximum": np.maximum,
}


# Compile-time operand references, resolved per execution:
#   ("arr", value)   — tensor computed by an earlier instruction of the nest
#   ("const", x)     — compile-time literal
#   ("aff", affine)  — affine index expression (materialised as an int grid)
#   ("free", value)  — scalar defined outside the nest, read from the env
_Ref = tuple


#: A nest smaller than this (in iteration-space cells) is not worth spreading
#: over a thread team: the dispatch overhead would exceed the NumPy work.
_TEAM_MIN_CELLS = 4096


# ---------------------------------------------------------------------------
# statement emission (shared with repro.interp.codegen)
# ---------------------------------------------------------------------------
#
# The tables below are the *source-code* counterparts of _BINARY_FNS and
# _UNARY_FNS: each template applies exactly the same NumPy call / Python
# operator as the callable the interpreter executes, so a statement emitted
# from them computes bit-identical results.  The megakernel code generator
# (repro.interp.codegen) renders nest instruction lists through these; ops
# with no template fall back to calling the original table function through
# the generated module's context tuple — still bit-identical by construction.

BINARY_EXPRESSIONS: dict[str, str] = {
    "arith.addf": "({a} + {b})",
    "arith.subf": "({a} - {b})",
    "arith.mulf": "({a} * {b})",
    "arith.divf": "({a} / {b})",
    "arith.powf": "({a} ** {b})",
    "arith.maximumf": "_np.maximum({a}, {b})",
    "arith.minimumf": "_np.minimum({a}, {b})",
    "arith.addi": "({a} + {b})",
    "arith.subi": "({a} - {b})",
    "arith.muli": "({a} * {b})",
    "arith.minsi": "_np.minimum({a}, {b})",
    "arith.maxsi": "_np.maximum({a}, {b})",
    "arith.cmpf:oeq": "_np.equal({a}, {b})",
    "arith.cmpf:ogt": "_np.greater({a}, {b})",
    "arith.cmpf:oge": "_np.greater_equal({a}, {b})",
    "arith.cmpf:olt": "_np.less({a}, {b})",
    "arith.cmpf:ole": "_np.less_equal({a}, {b})",
    "arith.cmpf:one": "_np.not_equal({a}, {b})",
    "arith.cmpi:eq": "_np.equal({a}, {b})",
    "arith.cmpi:ne": "_np.not_equal({a}, {b})",
    "arith.cmpi:slt": "_np.less({a}, {b})",
    "arith.cmpi:sle": "_np.less_equal({a}, {b})",
    "arith.cmpi:sgt": "_np.greater({a}, {b})",
    "arith.cmpi:sge": "_np.greater_equal({a}, {b})",
}

_UNARY_ARRAY_EXPRESSIONS: dict[str, str] = {
    "arith.negf": "(-{a})",
    "arith.sitofp": "_np.asarray({a}, dtype=_np.float64)",
    "arith.extf": "_np.asarray({a}, dtype=_np.float64)",
    "arith.truncf":
        "_np.asarray(_np.asarray({a}, dtype=_np.float32), dtype=_np.float64)",
    "arith.fptosi": "_np.asarray({a}).astype(_np.int64)",
    "arith.extsi": "{a}",
    "arith.trunci": "{a}",
}

_UNARY_SCALAR_EXPRESSIONS: dict[str, str] = {
    "arith.negf": "(-{a})",
    "arith.sitofp": "float({a})",
    "arith.extf": "float({a})",
    "arith.truncf": "float(_np.float32({a}))",
    "arith.fptosi": "int({a})",
    "arith.extsi": "{a}",
    "arith.trunci": "{a}",
}


def binary_expression(name: str, a: str, b: str) -> Optional[str]:
    """Python source applying binary op ``name``, or None (no template)."""
    template = BINARY_EXPRESSIONS.get(name)
    return None if template is None else template.format(a=a, b=b)


def unary_expression(name: str, operand: str, operand_is_array: bool) -> Optional[str]:
    """Python source applying unary op ``name``, or None (no template).

    The _UNARY_FNS callables branch on ``isinstance(a, np.ndarray)``; the
    caller must therefore know statically whether the operand is an array
    (pass None -> no template -> context-function fallback when unsure).
    """
    table = (
        _UNARY_ARRAY_EXPRESSIONS if operand_is_array else _UNARY_SCALAR_EXPRESSIONS
    )
    template = table.get(name)
    return None if template is None else template.format(a=operand)


def widen_expression(source: str, dtype: np.dtype) -> str:
    """The emitted-source equivalent of :func:`_widen` applied to ``source``."""
    kind = dtype.kind
    if kind == "f":
        if dtype.itemsize == 8:
            return source
        return f"_np.asarray({source}, dtype=_np.float64)"
    if kind == "b":
        return source
    if dtype == np.dtype(np.int64):
        return source
    return f"_np.asarray({source}, dtype=_np.int64)"


class CompiledNest:
    """One vectorizable loop nest, compiled to NumPy slice expressions."""

    __slots__ = ("bounds", "instrs", "count_bounds", "rank", "op_name",
                 "has_reduce", "last_fallback", "_alias_cache",
                 "_region_cache", "_geometry_free_values")

    def __init__(
        self,
        bounds: list[tuple[_Affine, _Affine, _Affine]],
        instrs: list[tuple],
        count_bounds: list[tuple[_Affine, _Affine, _Affine]],
        op_name: str = "scf.parallel",
    ):
        self.bounds = bounds
        self.instrs = instrs
        #: The parallel-root bounds *as the tree walker sees them*: it counts
        #: one cells_updated per point of the scf.parallel/omp.wsloop root
        #: (for tiled nests that is one per *tile origin*, even though the
        #: collapsed ``bounds`` walk individual cells; perfectly nested inner
        #: scf.for dims do not count, and a plain scf.for root counts
        #: nothing — empty ``count_bounds``).
        self.count_bounds = count_bounds
        self.rank = len(bounds)
        self.op_name = op_name
        #: Reductions fold in iteration order, so they can be neither chunked
        #: over a thread team nor split into overlap phases.
        self.has_reduce = any(instr[0] == "reduce" for instr in instrs)
        #: Why the most recent :meth:`execute` bounced (None after a success).
        self.last_fallback: Optional[VectorizeFallback] = None
        #: Aliasing verdicts keyed by the memory layout of every accessed
        #: region (base address, shape, strides, dtype, slices).  A repeated
        #: run over the same buffers — every time step of a time loop, every
        #: request served by a Plan — hits the cache instead of re-running
        #: ``np.shares_memory`` per load/store pair.  The key captures the
        #: complete overlap-relevant state, so object identity (and id reuse)
        #: cannot poison it.
        self._alias_cache: dict[tuple, bool] = {}
        #: Memoized slice plans (satellite of the codegen PR): resolving a
        #: region turns per-axis affine expressions back into slices, which is
        #: pure bookkeeping repeated identically on every invocation of a time
        #: loop.  The cache keys on everything the resolution reads — the
        #: concrete box, the free index values, and each accessed buffer's
        #: memory layout — and stores geometry only (slices and shapes, never
        #: array objects), so a hit rebuilds the records against the arrays of
        #: *this* invocation.
        self._region_cache: dict[tuple, list] = {}
        free_values: list[SSAValue] = []
        seen_free: set[int] = set()
        for instr in self.instrs:
            if instr[0] not in ("load", "store"):
                continue
            for affine in instr[3]:
                for value in affine.free:
                    if id(value) not in seen_free:
                        seen_free.add(id(value))
                        free_values.append(value)
        #: The SSA values whose env entries parameterize region geometry.
        self._geometry_free_values = tuple(free_values)

    # -- runtime ------------------------------------------------------------
    def execute(self, interp, env: dict) -> bool:
        """Run the nest against ``env``; return False to request a fallback.

        A ``False`` return leaves every buffer untouched, so the caller can
        safely re-run the nest through the tree walker;
        :attr:`last_fallback` then says why.

        Two optional execution structures layer on top of the plain
        prepare-then-commit path, both bit-identical to it:

        * **thread team** — when the interpreter carries an intra-rank
          :class:`~repro.interp.thread_team.ThreadTeam`, the outermost
          dimension is split into per-thread chunks whose preparation (loads
          and element-wise math) runs concurrently; every chunk finishes
          preparing before any chunk commits, preserving the
          all-loads-then-all-stores semantics;
        * **halo overlap** — when the interpreter holds pending (posted but
          uncompleted) halo receives, the iteration space is partitioned into
          an interior box whose loads provably avoid the in-flight halo
          regions and up to ``2 * rank`` boundary strips: the interior is
          prepared and committed while the messages travel, the receives are
          then completed, and the strips finish afterwards.
        """
        pending_halos = list(getattr(interp, "pending_halos", ()))
        try:
            dims = self._concrete_dims(env, self.bounds)
            cells = self._cell_count(env)
            resolved = self._resolve_regions(interp, env, dims)
            loads, stores, regions = resolved
            alias_key = tuple(
                (
                    position,
                    array.__array_interface__["data"][0],
                    array.shape,
                    array.strides,
                    array.dtype.str,
                    tuple((s.start, s.stop, s.step) for s in slices),
                )
                for position, (array, slices, _, _) in sorted(regions.items())
            )
            safe = self._alias_cache.get(alias_key)
            if safe is None:
                safe = self._aliasing_is_safe(loads, stores, regions)
                if len(self._alias_cache) >= 128:
                    self._alias_cache.clear()
                self._alias_cache[alias_key] = safe
            if not safe:
                raise _Bailout(
                    "aliasing stores: load/store regions overlap between "
                    "cells, so per-cell execution order is observable"
                )
            overlap = None
            if pending_halos:
                plan = self._plan_overlap(env, dims, resolved, pending_halos)
                if plan is None:
                    # The split cannot be proven safe: fall back to the
                    # blocking discipline before touching any data.
                    interp.complete_pending_halos()
                elif plan != "defer":
                    # "defer" means the nest never reads an in-flight region:
                    # run it whole and leave the halos pending for a later
                    # consumer (no overlap credit for this nest).
                    overlap = plan
            team = None if self.has_reduce else getattr(interp, "thread_team", None)
            if overlap is not None:
                interior_dims, strips = overlap
                parts = self._prepare_boxes(interp, env, interior_dims, team)
            else:
                parts = self._prepare_boxes(
                    interp, env, dims, team, resolved=resolved
                )
        except _Bailout as bail:
            if pending_halos:
                interp.complete_pending_halos()
            self.last_fallback = VectorizeFallback(self.op_name, bail.reason)
            return False
        except Exception as err:
            # Any surprise during preparation (unresolvable free value,
            # unexpected runtime type) means the static analysis was too
            # optimistic; no buffer has been touched yet, so falling back to
            # the tree walker is always safe.
            if pending_halos:
                interp.complete_pending_halos()
            self.last_fallback = VectorizeFallback(
                self.op_name, f"preparation failed: {err}"
            )
            return False
        # The commit cannot raise: every prepared array was validated to have
        # exactly the target region's shape and dtype.
        tracer = getattr(interp, "tracer", None)
        if overlap is not None and tracer is not None:
            span = tracer.begin("nest.interior")
            self._commit(interp, env, parts)
            tracer.end("nest.interior", span)
        else:
            self._commit(interp, env, parts)
        if overlap is not None:
            _, strips = overlap
            interp.complete_pending_halos(overlapped=True)
            # The strips were region-validated against the full box above
            # (their bounds are subsets), so preparing them cannot bail.
            span = tracer.begin("nest.boundary") if tracer is not None else 0.0
            for strip_dims in strips:
                self._commit(
                    interp, env, self._prepare_boxes(interp, env, strip_dims, None)
                )
            if tracer is not None:
                tracer.end("nest.boundary", span)
        interp.stats.cells_updated += cells
        self.last_fallback = None
        return True

    @staticmethod
    def _concrete_dims(env: dict, bounds) -> list[tuple[int, int, int]]:
        dims: list[tuple[int, int, int]] = []
        for lower, upper, step in bounds:
            dims.append(
                (
                    lower.invariant_value(env),
                    upper.invariant_value(env),
                    step.invariant_value(env),
                )
            )
        if any(step <= 0 for _, _, step in dims):
            # The interpreter defines the (error) semantics of dynamic
            # non-positive steps.
            raise _Bailout("non-positive (dynamic) loop step")
        return dims

    def _cell_count(self, env: dict) -> int:
        if not self.count_bounds:
            return 0
        count_dims = self._concrete_dims(env, self.count_bounds)
        return math.prod(
            len(range(lower, upper, step)) for lower, upper, step in count_dims
        )

    def _resolve_regions(self, interp, env: dict, dims) -> tuple[list, list, dict]:
        """Resolve every load/store region of the nest over the ``dims`` box.

        Returns ``(loads, stores, regions)`` where loads/stores are
        ``(instr index, array id, slices)`` records and ``regions`` maps the
        instruction index to ``(array, slices, view_shape, region_shape)``.
        Raising :class:`_Bailout` here means the box cannot be executed by
        slicing at all (and nothing has been written yet).

        Successful resolutions are memoized per buffer layout: the slice
        derivation depends only on the box, the free index values and each
        accessed array's memory layout, so a repeated invocation (every
        timestep of a time loop) skips the per-axis affine work entirely.
        """
        accesses: list[tuple[int, bool, np.ndarray]] = []
        for position, instr in enumerate(self.instrs):
            kind = instr[0]
            if kind not in ("load", "store"):
                continue
            array = interp.as_array(env[instr[2]])
            accesses.append((position, kind == "store", array))
        try:
            key = (
                tuple(dims),
                tuple(int(env[value]) for value in self._geometry_free_values),
                tuple(
                    (
                        array.__array_interface__["data"][0],
                        array.shape,
                        array.strides,
                        array.dtype.str,
                    )
                    for _, _, array in accesses
                ),
            )
        except (KeyError, TypeError, ValueError):
            key = None  # unhashable/unresolvable env: skip memoization
        if key is not None:
            cached = self._region_cache.get(key)
            if cached is not None:
                loads, stores, regions = [], [], {}
                for (position, is_store, array), geometry in zip(accesses, cached):
                    slices, view_shape, region_shape = geometry
                    regions[position] = (array, slices, view_shape, region_shape)
                    record = (position, id(array), slices)
                    (stores if is_store else loads).append(record)
                return loads, stores, regions
        loads: list[tuple[int, int, tuple]] = []
        stores: list[tuple[int, int, tuple]] = []
        regions: dict[int, tuple] = {}
        plan: list[tuple] = []
        for position, is_store, array in accesses:
            axes = self.instrs[position][3]
            slices, view_shape, region_shape = self._resolve_region(
                array, axes, dims, env, is_store
            )
            regions[position] = (array, slices, view_shape, region_shape)
            plan.append((slices, view_shape, region_shape))
            record = (position, id(array), slices)
            (stores if is_store else loads).append(record)
        if key is not None:
            # Bailouts raise before reaching here, so only successful
            # geometry is ever memoized.
            if len(self._region_cache) >= 64:
                self._region_cache.clear()
            self._region_cache[key] = plan
        return loads, stores, regions

    # -- thread-team chunking -------------------------------------------------
    def _prepare_boxes(self, interp, env: dict, dims, team, *, resolved=None):
        """Prepare one box, split over the team's threads when worthwhile.

        Returns a list of ``(pending stores, bindings)`` pairs — one per
        chunk — with *nothing committed yet*, so a bailing chunk leaves every
        buffer untouched.  Chunks split the outermost dimension only, which
        keeps their store regions disjoint.
        """
        boxes = [dims]
        if team is not None:
            trips = [len(range(lower, upper, step)) for lower, upper, step in dims]
            if trips and trips[0] >= 2 and math.prod(trips) >= _TEAM_MIN_CELLS:
                from .thread_team import split_trip_counts

                lower, _, step = dims[0]
                boxes = [
                    [(lower + start * step, lower + end * step, step), *dims[1:]]
                    for start, end in split_trip_counts(trips[0], team.size)
                ]
        if len(boxes) == 1:
            return [self._prepare_box(interp, env, boxes[0], resolved=resolved)]

        def worker(box):
            try:
                return self._prepare_box(interp, env, box)
            except _Bailout as bail:
                return bail

        results = team.map(worker, boxes)
        for result in results:
            if isinstance(result, _Bailout):
                raise result
        return results

    @staticmethod
    def _commit(interp, env: dict, parts) -> None:
        for pending, bindings in parts:
            for array, slices, prepared in pending:
                array[slices] = prepared
            for value, result in bindings:
                interp.set(env, value, result)

    # -- halo/compute overlap --------------------------------------------------
    def _plan_overlap(self, env: dict, dims, resolved, pending_halos):
        """Partition ``dims`` into an interior box and boundary strips.

        The interior contains exactly the iterations whose loads provably
        avoid every in-flight halo region, so it can execute before the
        receives complete.  Returns ``(interior dims, [strip dims, ...])``,
        or None when the split cannot be proven safe (the caller then
        completes the halos first and runs the plain path).  When the nest is
        unrelated to every pending halo, the result is the sentinel
        ``"defer"`` — the caller runs the plain path and the halos stay in
        flight for a later consumer.
        """
        if self.has_reduce:
            return None
        if any(step != 1 for _, _, step in dims):
            return None
        loads, stores, regions = resolved
        forbidden: dict[int, list[tuple[int, int]]] = {}
        for halo in pending_halos:
            halo_array = halo.array
            for position, _, _ in stores:
                if np.shares_memory(regions[position][0], halo_array):
                    # Stores into the swapped buffer: completion would race
                    # with (or be clobbered by) the interior commit.
                    return None
            for position, _, _ in loads:
                array, slices = regions[position][:2]
                if array is not halo_array:
                    if np.shares_memory(array, halo_array):
                        return None  # an aliased view we cannot reason about
                    continue
                for item in halo.items:
                    axis = item.axis
                    box = item.recv_slice[axis]
                    affine = self.instrs[position][3][axis]
                    if affine.is_invariant:
                        if box.start <= slices[axis].start < box.stop:
                            return None  # every iteration reads the halo
                        continue
                    dim = next(iter(affine.coeffs))
                    offset = slices[axis].start - dims[dim][0]
                    forbidden.setdefault(dim, []).append(
                        (box.start - offset, box.stop - offset)
                    )
        interior = [[lower, upper] for lower, upper, _ in dims]
        constrained = False
        for dim, intervals in forbidden.items():
            lower, upper = interior[dim]
            changed = True
            while changed:
                changed = False
                for begin, end in intervals:
                    if begin <= lower < end:
                        lower, changed = end, True
                    if begin < upper <= end:
                        upper, changed = begin, True
            for begin, end in intervals:
                if max(begin, lower) < min(end, upper):
                    return None  # a halo-dependent band strictly inside
            if lower >= upper:
                return None  # no interior left: nothing to overlap with
            if [lower, upper] != interior[dim]:
                constrained = True
            interior[dim] = [lower, upper]
        if not constrained:
            return "defer"
        strips = []
        for dim in range(self.rank):
            lower, upper, _ = dims[dim]
            ilower, iupper = interior[dim]
            prefix = [(interior[k][0], interior[k][1], 1) for k in range(dim)]
            suffix = [dims[k] for k in range(dim + 1, self.rank)]
            if lower < ilower:
                strips.append([*prefix, (lower, ilower, 1), *suffix])
            if iupper < upper:
                strips.append([*prefix, (iupper, upper, 1), *suffix])
        interior_dims = [(lower, upper, 1) for lower, upper in interior]
        return interior_dims, strips

    # -- single-box preparation -------------------------------------------------
    def _prepare_box(self, interp, env: dict, dims, *, resolved=None):
        """Prepare (but do not commit) the nest restricted to the ``dims`` box."""
        trips = tuple(len(range(lower, upper, step)) for lower, upper, step in dims)
        nest_shape = trips
        if resolved is None:
            resolved = self._resolve_regions(interp, env, dims)
        loads, stores, regions = resolved

        # Evaluate the element-wise program.
        values: dict[SSAValue, Any] = {}

        def resolve(ref: _Ref) -> Any:
            tag = ref[0]
            if tag == "arr":
                return values[ref[1]]
            if tag == "const":
                return ref[1]
            if tag == "free":
                return env[ref[1]]
            return self._materialize(ref[1], dims, env)

        # With several stores in one nest, an earlier commit may mutate memory
        # that a later store's value still *views* (loads and broadcasts avoid
        # copies); materialise every value in that case so the committed data
        # is what was computed, not what the buffer holds mid-commit.
        force_copy = len(stores) > 1
        pending: list[tuple[np.ndarray, tuple, np.ndarray]] = []
        bindings: list[tuple[SSAValue, Any]] = []
        for position, instr in enumerate(self.instrs):
            kind = instr[0]
            if kind == "load":
                array, slices, view_shape, _ = regions[position]
                view = array[slices].reshape(view_shape)
                values[instr[1]] = _widen(view)
            elif kind == "store":
                array, slices, _, region_shape = regions[position]
                value = resolve(instr[1])
                prepared = np.broadcast_to(
                    np.asarray(value), nest_shape
                ).reshape(region_shape).astype(array.dtype, copy=force_copy)
                if prepared.shape != array[slices].shape:
                    raise _Bailout(
                        "store value does not match the target region shape"
                    )
                pending.append((array, slices, prepared))
            elif kind == "binary":
                values[instr[1]] = instr[2](resolve(instr[3]), resolve(instr[4]))
            elif kind == "unary":
                values[instr[1]] = instr[2](resolve(instr[3]))
            elif kind == "select":
                values[instr[1]] = np.where(
                    resolve(instr[2]), resolve(instr[3]), resolve(instr[4])
                )
            else:  # reduce
                _, result_value, fn, sequential, value_ref, init_ref, convert = instr
                value = resolve(value_ref)
                flattened = np.broadcast_to(np.asarray(value), nest_shape).ravel()
                init = resolve(init_ref)
                if flattened.size == 0:
                    total: Any = init
                elif sequential:
                    # Order-sensitive combiners (float +/*) must replay the
                    # tree walker's left-fold bit-for-bit: ufunc.accumulate is
                    # defined as the sequential recurrence r[i] = r[i-1] op
                    # a[i] (never pairwise), and ravel() of the iteration
                    # space is exactly the tree walker's visit order.
                    chain = np.empty(flattened.size + 1, dtype=flattened.dtype)
                    chain[0] = init
                    chain[1:] = flattened
                    total = fn.accumulate(chain)[-1]
                else:
                    total = fn(init, fn.reduce(flattened))
                bindings.append((result_value, convert(total)))

        return pending, bindings

    def _resolve_region(
        self,
        array: np.ndarray,
        axes: list[_Affine],
        dims: list[tuple[int, int, int]],
        env: dict,
        is_store: bool,
    ) -> tuple[tuple, tuple, tuple]:
        """Turn per-axis affine indices into slices + broadcastable shapes.

        Returns ``(slices, view_shape, region_shape)``: ``view_shape`` has the
        nest's rank with the trip count at every mapped dimension and 1
        elsewhere (for broadcasting loads into the iteration space), while
        ``region_shape`` has the *memref's* rank and matches ``array[slices]``
        exactly (for shaping store values).  Raises :class:`_Bailout` when the
        region cannot be reproduced exactly by slicing.
        """
        if len(axes) != array.ndim:
            raise _Bailout("access rank does not match the memref rank")
        trips = tuple(len(range(*dim)) for dim in dims)
        slices = []
        view_shape = [1] * len(dims)
        region_shape = [1] * array.ndim
        used_dims: list[int] = []
        for axis, affine in enumerate(axes):
            offset = affine.invariant_value(env)
            if not affine.coeffs:
                if not 0 <= offset < array.shape[axis]:
                    raise _Bailout("constant index outside the memref extent")
                slices.append(slice(offset, offset + 1))
                continue
            mapping = list(affine.coeffs.items())
            if len(mapping) != 1 or mapping[0][1] != 1:
                raise _Bailout("non-unit-stride index expression cannot be sliced")
            dim = mapping[0][0]
            if used_dims and dim <= used_dims[-1]:
                raise _Bailout(
                    "transposed or repeated induction variables in one access"
                )
            used_dims.append(dim)
            lower, upper, step = dims[dim]
            start = lower + offset
            last = start + (trips[dim] - 1) * step
            if trips[dim] and (start < 0 or last >= array.shape[axis]):
                # Out-of-range accesses would wrap (negative) or raise in the
                # tree walker; preserve those semantics by falling back.
                raise _Bailout(
                    "out-of-range access would wrap or raise in the tree walker"
                )
            slices.append(slice(start, upper + offset, step))
            view_shape[dim] = trips[dim]
            region_shape[axis] = trips[dim]
        if is_store and len(used_dims) != len(dims):
            raise _Bailout(
                "store does not cover every nest dimension "
                "(iterations would collapse onto the same cells)"
            )
        return tuple(slices), tuple(view_shape), tuple(region_shape)

    @staticmethod
    def _aliasing_is_safe(loads, stores, regions) -> bool:
        """Check that all-loads-then-all-stores matches per-cell execution."""
        for store_position, store_array_id, store_slices in stores:
            store_view = None
            for load_position, load_array_id, load_slices in loads:
                same_region = (
                    load_array_id == store_array_id and load_slices == store_slices
                )
                if same_region and load_position < store_position:
                    continue  # reads its own cell before writing it: safe
                if store_view is None:
                    array, slices = regions[store_position][:2]
                    store_view = array[slices]
                load_array, slices = regions[load_position][:2]
                if np.shares_memory(load_array[slices], store_view):
                    return False
            for other_position, other_array_id, other_slices in stores:
                if other_position >= store_position:
                    continue
                if other_array_id == store_array_id and other_slices == store_slices:
                    continue  # re-written identically: program order preserved
                if store_view is None:
                    array, slices = regions[store_position][:2]
                    store_view = array[slices]
                other_array, slices = regions[other_position][:2]
                if np.shares_memory(other_array[slices], store_view):
                    return False
        return True

    @staticmethod
    def _materialize(
        affine: _Affine, dims: list[tuple[int, int, int]], env: dict
    ) -> Any:
        """Evaluate an affine expression over the whole iteration space."""
        total: Any = affine.const + sum(
            coeff * int(env[value]) for value, coeff in affine.free.items()
        )
        rank = len(dims)
        for dim, coeff in affine.coeffs.items():
            lower, upper, step = dims[dim]
            shape = [1] * rank
            shape[dim] = len(range(lower, upper, step))
            axis = np.arange(lower, upper, step, dtype=np.int64).reshape(shape)
            total = total + coeff * axis
        return total


def _widen(view: np.ndarray) -> np.ndarray:
    """Widen loaded elements exactly as ``ndarray.item()`` does per cell."""
    kind = view.dtype.kind
    if kind == "f":
        return view.astype(np.float64, copy=False)
    if kind == "b":
        return view
    return view.astype(np.int64, copy=False)


# ---------------------------------------------------------------------------
# the nest compiler
# ---------------------------------------------------------------------------

_NEST_TERMINATORS = ("scf.yield", "omp.yield")


class _NestCompiler:
    """Analyses one loop nest and emits a :class:`CompiledNest`."""

    def __init__(self, root: Operation):
        self.root = root
        self.bounds: list[tuple[_Affine, _Affine, _Affine]] = []
        self.count_bounds: list[tuple[_Affine, _Affine, _Affine]] = []
        self.ivs: dict[SSAValue, int] = {}
        # SSA value -> _Affine | ("const", literal) | ("min"|"max", lhs, rhs)
        #            | "array"
        self.sym: dict[SSAValue, Union[_Affine, tuple, str]] = {}
        self.instrs: list[tuple] = []
        #: Values whose compile-time meaning was invalidated by a tile
        #: collapse (the tile-origin iv and expressions derived from it);
        #: consuming one after the collapse aborts the nest.
        self.banned: dict[SSAValue, str] = {}
        self.parallel_dims = 0
        self.collapsed_dims: set[int] = set()

    def compile(self) -> CompiledNest:
        root = self.root
        if isinstance(root, (scf.ParallelOp, omp.WsLoopOp)):
            block = root.body.block
            for iv, lower, upper, step in zip(
                block.args, root.lower_bounds, root.upper_bounds, root.steps
            ):
                self._push_dim(iv, lower, upper, step)
            # The tree walker counts cells_updated once per point of the
            # parallel dims only; inner scf.for dims flattened later by
            # _compile_block must not inflate the statistic.  Collapsing a
            # tile pair rewrites self.bounds[dim] but leaves this snapshot
            # (the tile-origin bounds) untouched.
            self.count_bounds = list(self.bounds)
            self.parallel_dims = len(self.bounds)
        elif isinstance(root, scf.ForOp):
            if root.iter_args or root.results:
                raise VectorizationError("loop-carried values cannot be vectorized")
            block = root.body.block
            self._push_dim(block.args[0], root.lower_bound, root.upper_bound, root.step)
        else:
            raise VectorizationError(f"{root.name} is not a vectorizable nest")
        self._compile_block(block)
        return CompiledNest(self.bounds, self.instrs, self.count_bounds, root.name)

    def _push_dim(self, iv: SSAValue, lower, upper, step) -> None:
        self.ivs[iv] = len(self.bounds)
        self.bounds.append(
            (
                self._invariant_operand(lower),
                self._invariant_operand(upper),
                self._invariant_operand(step),
            )
        )

    def _invariant_operand(self, value: SSAValue) -> _Affine:
        affine = self._index_operand(value)
        if affine is None or affine.coeffs:
            raise VectorizationError("loop bounds must be nest-invariant")
        return affine

    # -- structure ----------------------------------------------------------
    def _compile_block(self, block) -> None:
        ops = list(block.ops)
        for position, op in enumerate(ops):
            name = op.name
            if name in _NEST_TERMINATORS:
                if op.operands or position != len(ops) - 1:
                    raise VectorizationError("nests must not yield values")
                return
            if isinstance(op, scf.ReduceOp):
                if position != len(ops) - 1:
                    raise VectorizationError("scf.reduce must terminate the nest body")
                self._compile_reduce(op)
                return
            if isinstance(op, scf.ForOp):
                # Perfectly nested inner loop: nothing may follow it.
                if op.iter_args or op.results:
                    raise VectorizationError("inner loop carries values")
                remainder = ops[position + 1 :]
                if len(remainder) != 1 or remainder[0].name not in _NEST_TERMINATORS \
                        or remainder[0].operands:
                    raise VectorizationError("inner loop is not perfectly nested")
                self._enter_inner_for(op)
                self._compile_block(op.body.block)
                return
            self._compile_op(op)

    def _enter_inner_for(self, op: scf.ForOp) -> None:
        """Add an inner ``scf.for`` as a nest dimension, or collapse a tile.

        Nest-invariant bounds extend the iteration space by one dimension.
        The min-clamped tile pattern (lower bound = an outer tile-origin iv,
        upper bound = ``minsi(origin + tile_size, extent)``) instead rewrites
        the origin dimension into the full ``[lower, extent)`` unit-step range
        and maps this loop's iv onto it.  Loops tagged ``tile_dim`` by
        ``convert-stencil-to-scf{tile}`` go straight to the tile path.
        """
        iv = op.body.block.args[0]
        if "tile_dim" not in op.attributes:
            try:
                lower = self._invariant_operand(op.lower_bound)
                upper = self._invariant_operand(op.upper_bound)
                step = self._invariant_operand(op.step)
            except VectorizationError:
                pass
            else:
                self.ivs[iv] = len(self.bounds)
                self.bounds.append((lower, upper, step))
                return
        self._collapse_tile(op, iv)

    def _collapse_tile(self, op: scf.ForOp, iv: SSAValue) -> None:
        lower = self._index_operand(op.lower_bound)
        if (
            lower is None or lower.const or lower.free
            or list(lower.coeffs.values()) != [1]
        ):
            raise VectorizationError(
                "inner loop bounds are neither nest-invariant nor the "
                "min-clamped tile pattern"
            )
        dim = next(iter(lower.coeffs))
        if dim >= self.parallel_dims or dim in self.collapsed_dims:
            raise VectorizationError(
                "tile lower bound must be an un-collapsed outer parallel "
                "induction variable"
            )
        step = self._index_operand(op.step)
        if step is None or not step.is_literal or step.const != 1:
            raise VectorizationError("intra-tile loops must have unit step")
        clamp = self.sym.get(op.upper_bound)
        if not (isinstance(clamp, tuple) and clamp[0] == "min"):
            raise VectorizationError(
                "tile upper bound must be an arith.minsi clamp of the tile end"
            )
        outer_lower, outer_upper, outer_step = self.bounds[dim]
        if not outer_step.is_literal or outer_step.const <= 0:
            raise VectorizationError(
                "tile loop step (the tile size) must be a positive literal"
            )
        matched: Optional[_Affine] = None
        for tile_end, limit in ((clamp[1], clamp[2]), (clamp[2], clamp[1])):
            if limit.coeffs:
                continue
            extent = tile_end.combine(_Affine({dim: 1}), -1)
            if extent.coeffs:
                continue
            # The clamp must be min(origin + tile_size, outer_upper) with
            # tile_size == the outer step: only then does the (origin,
            # intra-tile) pair cover [outer_lower, outer_upper) contiguously
            # in ascending order.
            if _affine_equal(extent, outer_step) and _affine_equal(limit, outer_upper):
                matched = limit
                break
        if matched is None:
            raise VectorizationError(
                "tile clamp does not match the outer tile loop's step and bound"
            )
        if self._instrs_mention_dim(dim):
            # A load/store/value emitted *before* this tile loop already
            # captured the dimension at tile-origin granularity; rewriting it
            # to cell granularity would silently change what those
            # instructions compute (e.g. a hoisted load of u[origin]).
            raise VectorizationError(
                "tile origin used by instructions before the tile loop"
            )
        self.bounds[dim] = (outer_lower, matched, _Affine(const=1))
        self.collapsed_dims.add(dim)
        # The collapsed dimension now means "cell index", not "tile origin":
        # ban the origin iv and every symbolic expression that captured the
        # old meaning (they were only ever legitimate inputs to this loop's
        # bounds, which have been consumed).
        for value, mapped in list(self.ivs.items()):
            if mapped == dim:
                del self.ivs[value]
                self.banned[value] = "tile origin used outside its tile loop"
        for value, symbol in list(self.sym.items()):
            if self._mentions_dim(symbol, dim):
                del self.sym[value]
                self.banned[value] = (
                    "tile-origin expression used outside the tile-loop bounds"
                )
        self.ivs[iv] = dim

    @staticmethod
    def _mentions_dim(symbol, dim: int) -> bool:
        if isinstance(symbol, _Affine):
            return dim in symbol.coeffs
        if isinstance(symbol, tuple) and symbol[0] in ("min", "max"):
            return dim in symbol[1].coeffs or dim in symbol[2].coeffs
        return False

    def _instrs_mention_dim(self, dim: int) -> bool:
        """Whether any already-compiled instruction references dimension ``dim``."""

        def ref_mentions(ref) -> bool:
            return (
                isinstance(ref, tuple) and len(ref) == 2 and ref[0] == "aff"
                and dim in ref[1].coeffs
            )

        for instr in self.instrs:
            kind = instr[0]
            if kind in ("load", "store"):
                if any(dim in affine.coeffs for affine in instr[3]):
                    return True
                if kind == "store" and ref_mentions(instr[1]):
                    return True
            elif any(ref_mentions(part) for part in instr[2:]):
                return True
        return False

    # -- reductions ---------------------------------------------------------
    def _compile_reduce(self, op: scf.ReduceOp) -> None:
        root = self.root
        if not isinstance(root, scf.ParallelOp) or op.parent is not root.body.block:
            raise VectorizationError(
                "scf.reduce must terminate the scf.parallel body"
            )
        if len(op.operands) != len(root.results) or len(op.regions) != len(op.operands):
            raise VectorizationError("scf.reduce value/combiner count mismatch")
        for value, region, init, result in zip(
            op.operands, op.regions, root.init_values, root.results
        ):
            fn, sequential = self._combiner_kind(region)
            convert = float if is_float_type(result.type) else int
            self.instrs.append(
                (
                    "reduce", result, fn, sequential,
                    self._value_ref(value), self._value_ref(init), convert,
                )
            )

    @staticmethod
    def _combiner_kind(region) -> tuple[Any, bool]:
        block = region.block
        ops = list(block.ops)
        if len(block.args) != 2 or len(ops) != 2:
            raise VectorizationError("unsupported scf.reduce combiner structure")
        combine, terminator = ops
        metadata = arith.REDUCTION_OP_METADATA.get(combine.name)
        if metadata is None:
            raise VectorizationError(
                f"reduction over {combine.name!r} is not supported"
            )
        if set(combine.operands) != set(block.args):
            raise VectorizationError(
                "combiner must apply its op to (accumulator, value)"
            )
        if not isinstance(terminator, scf.YieldOp) or list(terminator.operands) != [
            combine.results[0]
        ]:
            raise VectorizationError("combiner must yield the combined value")
        ufunc_name, sequential = metadata
        return _REDUCE_UFUNCS[ufunc_name], sequential

    # -- per-op classification ----------------------------------------------
    def _compile_op(self, op: Operation) -> None:
        name = op.name
        if isinstance(op, arith.ConstantOp):
            attr = op.value
            if isinstance(attr, IntegerAttr):
                result_type = op.results[0].type
                if isinstance(result_type, IntegerType) and result_type.width == 1:
                    self.sym[op.results[0]] = ("const", bool(attr.value))
                else:
                    self.sym[op.results[0]] = _Affine(const=int(attr.value))
            elif isinstance(attr, FloatAttr):
                self.sym[op.results[0]] = ("const", float(attr.value))
            else:
                raise VectorizationError("unsupported constant payload")
            return

        if isinstance(op, memref.LoadOp):
            self._compile_access(op.memref, op.indices, result=op.results[0])
            return
        if isinstance(op, memref.StoreOp):
            self._compile_access(op.memref, op.indices, stored=op.value)
            return

        # Integer/index arithmetic stays symbolic whenever possible so it can
        # feed memref indices.
        if name in ("arith.addi", "arith.subi", "arith.muli"):
            lhs = self._index_operand(op.operands[0])
            rhs = self._index_operand(op.operands[1])
            if lhs is not None and rhs is not None:
                if name == "arith.addi":
                    self.sym[op.results[0]] = lhs.combine(rhs, 1)
                elif name == "arith.subi":
                    self.sym[op.results[0]] = lhs.combine(rhs, -1)
                else:
                    if lhs.is_literal:
                        self.sym[op.results[0]] = rhs.scale(lhs.const)
                    elif rhs.is_literal:
                        self.sym[op.results[0]] = lhs.scale(rhs.const)
                    else:
                        raise VectorizationError("non-affine index product")
                return
        if name in ("arith.minsi", "arith.maxsi"):
            # Symbolic min/max of index expressions: the clamp of a tiled
            # loop's upper bound.  Elementwise minsi on loaded data still hits
            # the _BINARY_FNS path below (its operands are arrays, not
            # affines).
            lhs = self._index_operand(op.operands[0])
            rhs = self._index_operand(op.operands[1])
            if lhs is not None and rhs is not None:
                if lhs.is_literal and rhs.is_literal:
                    fold = min if name == "arith.minsi" else max
                    self.sym[op.results[0]] = _Affine(const=fold(lhs.const, rhs.const))
                else:
                    self.sym[op.results[0]] = (
                        "min" if name == "arith.minsi" else "max", lhs, rhs,
                    )
                return
        if name in ("arith.index_cast", "arith.extsi", "arith.trunci"):
            affine = self._index_operand(op.operands[0])
            if affine is not None:
                self.sym[op.results[0]] = affine
                return

        if name in _BINARY_FNS:
            self._emit(
                "binary", op.results[0], _BINARY_FNS[name], name,
                self._value_ref(op.operands[0]), self._value_ref(op.operands[1]),
            )
            return
        if name in _UNARY_FNS:
            self._emit(
                "unary", op.results[0], _UNARY_FNS[name], name,
                self._value_ref(op.operands[0]),
            )
            return
        if name == "arith.cmpf":
            assert isinstance(op, arith.CmpfOp)
            fn = _CMPF_FNS.get(op.predicate)
            if fn is None:
                raise VectorizationError(f"cmpf predicate {op.predicate!r}")
            self._emit(
                "binary", op.results[0], fn, f"arith.cmpf:{op.predicate}",
                self._value_ref(op.operands[0]), self._value_ref(op.operands[1]),
            )
            return
        if name == "arith.cmpi":
            assert isinstance(op, arith.CmpiOp)
            fn = _CMPI_FNS.get(op.predicate)
            if fn is None:
                raise VectorizationError(f"cmpi predicate {op.predicate!r}")
            self._emit(
                "binary", op.results[0], fn, f"arith.cmpi:{op.predicate}",
                self._value_ref(op.operands[0]), self._value_ref(op.operands[1]),
            )
            return
        if name == "arith.select":
            self.instrs.append(
                (
                    "select", op.results[0],
                    self._value_ref(op.operands[0]),
                    self._value_ref(op.operands[1]),
                    self._value_ref(op.operands[2]),
                )
            )
            self.sym[op.results[0]] = "array"
            return
        raise VectorizationError(f"operation {name!r} cannot be vectorized")

    def _emit(self, kind: str, result: SSAValue, fn, name: str, *refs: _Ref) -> None:
        # The trailing op name (``arith.addf``, ``arith.cmpf:<pred>``) keys
        # the BINARY_EXPRESSIONS / unary_expression source templates; the
        # positional layout up to the refs is unchanged, so _prepare_box's
        # instr[2](instr[3], ...) dispatch is unaffected.
        self.instrs.append((kind, result, fn, *refs, name))
        self.sym[result] = "array"

    def _compile_access(self, base: SSAValue, indices, result=None, stored=None) -> None:
        if base in self.sym or base in self.ivs:
            raise VectorizationError("memref allocated inside the nest")
        axes = []
        for index_value in indices:
            affine = self._index_operand(index_value)
            if affine is None:
                raise VectorizationError("non-affine memref index")
            axes.append(affine)
        if result is not None:
            self.instrs.append(("load", result, base, axes))
            self.sym[result] = "array"
        else:
            self.instrs.append(("store", self._value_ref(stored), base, axes))

    # -- operand classification ----------------------------------------------
    def _index_operand(self, value: SSAValue) -> Optional[_Affine]:
        """An affine view of ``value``, or None when it is not index-like."""
        if value in self.banned:
            raise VectorizationError(self.banned[value])
        if value in self.ivs:
            return _Affine({self.ivs[value]: 1})
        symbol = self.sym.get(value)
        if symbol is not None:
            if isinstance(symbol, _Affine):
                return symbol
            if isinstance(symbol, tuple) and isinstance(symbol[1], int) \
                    and not isinstance(symbol[1], bool):
                return _Affine(const=symbol[1])
            return None
        # Constants defined *outside* the nest fold to literals so tile
        # clamps survive LICM/CSE hoisting their operands out of the body.
        owner = value.owner
        if isinstance(owner, arith.ConstantOp):
            attr = owner.value
            if isinstance(attr, IntegerAttr):
                result_type = owner.results[0].type
                if isinstance(result_type, IntegerType) and result_type.width == 1:
                    return None
                return _Affine(const=int(attr.value))
            return None
        value_type = value.type
        if isinstance(value_type, IndexType) or (
            isinstance(value_type, IntegerType) and value_type.width > 1
        ):
            return _Affine(free={value: 1})
        return None

    def _value_ref(self, value: SSAValue) -> _Ref:
        if value in self.banned:
            raise VectorizationError(self.banned[value])
        if value in self.ivs:
            return ("aff", _Affine({self.ivs[value]: 1}))
        symbol = self.sym.get(value)
        if symbol is None:
            owner = value.owner
            if isinstance(owner, arith.ConstantOp):
                attr = owner.value
                if isinstance(attr, IntegerAttr):
                    result_type = owner.results[0].type
                    if isinstance(result_type, IntegerType) and result_type.width == 1:
                        return ("const", bool(attr.value))
                    return ("const", int(attr.value))
                if isinstance(attr, FloatAttr):
                    return ("const", float(attr.value))
            return ("free", value)  # defined outside the nest: env lookup
        if symbol == "array":
            return ("arr", value)
        if isinstance(symbol, _Affine):
            if symbol.is_literal:
                return ("const", symbol.const)
            return ("aff", symbol)
        if isinstance(symbol, tuple) and symbol[0] in ("min", "max"):
            raise VectorizationError(
                "min/max index clamp used as a value outside loop bounds"
            )
        return ("const", symbol[1])


def compile_loop_nest(op: Operation) -> Optional[CompiledNest]:
    """Compile one loop nest, or return None when it is not vectorizable."""
    compiled = compile_loop_nest_or_fallback(op)
    return compiled if isinstance(compiled, CompiledNest) else None


def compile_loop_nest_or_fallback(
    op: Operation,
) -> Union[CompiledNest, VectorizeFallback]:
    """Compile one loop nest, or say *why* it cannot be vectorized."""
    try:
        return _NestCompiler(op).compile()
    except VectorizationError as err:
        return VectorizeFallback(op.name, str(err))


# ---------------------------------------------------------------------------
# whole-function compilation + cache entry point
# ---------------------------------------------------------------------------

class CompiledKernel:
    """Vectorized nests of one function, looked up by nest operation."""

    def __init__(
        self,
        function_name: str,
        nests: dict[int, CompiledNest],
        fallbacks: Optional[dict[int, VectorizeFallback]] = None,
    ):
        self.function_name = function_name
        self.nests = nests
        #: Candidate nest roots that could *not* be compiled, with reasons.
        self.fallbacks: dict[int, VectorizeFallback] = fallbacks or {}

    def nest_for(self, op: Operation) -> Optional[CompiledNest]:
        return self.nests.get(id(op))

    def fallback_for(self, op: Operation) -> Optional[VectorizeFallback]:
        """Why ``op`` was not compiled (None when it was, or was never a root)."""
        return self.fallbacks.get(id(op))

    @property
    def nest_count(self) -> int:
        return len(self.nests)

    @property
    def fallback_reasons(self) -> list[str]:
        """Every compile-time rejection, as human-readable strings."""
        return sorted(str(fallback) for fallback in self.fallbacks.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CompiledKernel {self.function_name!r}: {len(self.nests)} nests, "
            f"{len(self.fallbacks)} fallbacks>"
        )


_CANDIDATES = (scf.ParallelOp, omp.WsLoopOp, scf.ForOp)


def compile_kernel(module: Operation, function_name: str) -> CompiledKernel:
    """Compile every vectorizable loop nest of one function of ``module``.

    Unknown function names yield an empty kernel (the interpreter will raise
    its usual error when the call is attempted), so callers need not special
    case them.
    """
    nests: dict[int, CompiledNest] = {}
    fallbacks: dict[int, VectorizeFallback] = {}
    for op in module.walk():
        if not (isinstance(op, func.FuncOp) and op.sym_name == function_name):
            continue
        compiled_region_roots: set[int] = set()
        for candidate in op.walk():
            if not isinstance(candidate, _CANDIDATES):
                continue
            if any(
                id(ancestor) in compiled_region_roots
                for ancestor in _ancestors(candidate)
            ):
                continue  # already covered by a vectorized enclosing nest
            nest = compile_loop_nest_or_fallback(candidate)
            if isinstance(nest, CompiledNest):
                nests[id(candidate)] = nest
                compiled_region_roots.add(id(candidate))
            else:
                fallbacks[id(candidate)] = nest
        break
    return CompiledKernel(function_name, nests, fallbacks)


def _ancestors(op: Operation):
    current = op.parent_op
    while current is not None:
        yield current
        current = current.parent_op
