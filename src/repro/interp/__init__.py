"""Execution substrate: interpreter, vectorized backend, simulated MPI runtime.

Execution-backend architecture
------------------------------

Lowered programs can be executed by two cooperating engines:

* **tree walker** (:mod:`repro.interp.interpreter`) — the reference
  semantics.  Every operation of the lowered module is dispatched once per
  evaluation, so loop nests cost one python dispatch *per grid cell per op*.
  It executes everything: MPI calls, data-dependent control flow, pointer
  tricks, unknown dialects with registered handlers.
* **vectorized NumPy backend** (:mod:`repro.interp.vectorize`) — the fast
  path.  ``scf.parallel`` / ``omp.wsloop`` / plain ``scf.for`` nests whose
  bodies are pure ``memref.load`` / ``arith`` / ``memref.store`` programs with
  affine (``iv + c``) indices are compiled *once* into whole-array NumPy slice
  expressions and replayed for every invocation, the moral equivalent of the
  generated C the real stack JITs.

Selection rules
---------------

The two engines are combined *per loop nest*, never per program:

1. ``repro.core.run_local`` / ``run_distributed`` accept
   ``backend="auto" | "interpreter" | "vectorized"``; ``auto`` (default) asks
   :func:`repro.interp.vectorize.compile_kernel` for a
   :class:`~repro.interp.vectorize.CompiledKernel` (cached on the
   :class:`~repro.core.CompiledProgram` keyed by function name).
2. When the tree walker reaches a loop nest it first consults that kernel.
   Nests the compiler could not *prove* vectorizable (MPI, ``scf.while``,
   ``scf.if``, non-affine indices) were never compiled and are tree-walked;
   every rejection carries an explicit reason string
   (:class:`~repro.interp.vectorize.VectorizeFallback`, via
   ``CompiledKernel.fallback_for``).  Tiled nests (the ``min``-clamped inner
   bounds of ``convert-stencil-to-scf{tile}``), ``scf.reduce`` reductions and
   ``arith.select`` mask chains *are* compiled: tile loop pairs collapse back
   into whole-extent dimensions, reductions replay the tree walker's
   deterministic left-fold with ``ufunc.accumulate``, and select chains
   become ``np.where`` trees.
3. A compiled nest can still decline at run time — aliased in/out buffers
   with shifted offsets, indices that python would negatively wrap, or
   non-positive steps make it return ``False`` *before touching any buffer*
   (recording why in ``CompiledNest.last_fallback``), and the tree walker
   re-runs that nest invocation.

Both engines produce bit-identical field contents (loads widen to float64
exactly like ``ndarray.item()``, expressions apply the same operation tree)
and identical ``cells_updated`` / ``halo_swaps`` statistics, so cost models
and tests are backend-agnostic; only ``ops_executed`` shrinks on the
vectorized path because per-cell dispatch no longer happens.

Distributed programs execute against one of two worlds implementing the same
:class:`~repro.interp.mpi_runtime.CommunicatorBase` interface (selected by
``run_distributed(runtime=...)``): the :class:`SimulatedMPI` thread world
here — each rank runs one interpreter instance, sharing one compiled kernel,
in its own thread — or the OS-process world of :mod:`repro.runtime`, where
each rank is a pooled worker process computing on shared-memory field
buffers.  Both produce bit-identical fields and matching statistics.
"""

from .codegen import (
    CodegenError,
    CodegenFallback,
    CompiledMegakernel,
    MegakernelTrace,
    emit_megakernel,
    megakernel_signature,
    trace_program,
)
from .interpreter import (
    ExecStatistics,
    Interpreter,
    InterpreterError,
    PlannedOp,
    RequestArray,
    RequestRef,
    compile_block_plans,
    run_function,
)
from .mpi_runtime import (
    CommStatistics,
    CommunicatorBase,
    MPIRuntimeError,
    RankCommunicator,
    SimRequest,
    SimulatedMPI,
)
from .values import DataTypeValue, MemRefValue, PointerValue, RequestHandle, numpy_dtype_for
from .vectorize import (
    CompiledKernel,
    CompiledNest,
    VectorizationError,
    VectorizeFallback,
    compile_kernel,
    compile_loop_nest,
    compile_loop_nest_or_fallback,
)

__all__ = [
    "Interpreter", "InterpreterError", "ExecStatistics", "run_function",
    "RequestArray", "RequestRef", "PlannedOp", "compile_block_plans",
    "CompiledKernel", "CompiledNest", "VectorizationError", "VectorizeFallback",
    "compile_kernel", "compile_loop_nest", "compile_loop_nest_or_fallback",
    "CodegenError", "CodegenFallback", "CompiledMegakernel", "MegakernelTrace",
    "trace_program", "emit_megakernel", "megakernel_signature",
    "SimulatedMPI", "RankCommunicator", "CommunicatorBase", "SimRequest",
    "MPIRuntimeError", "CommStatistics",
    "MemRefValue", "PointerValue", "RequestHandle", "DataTypeValue",
    "numpy_dtype_for",
]
