"""Execution primitives and the deprecated one-shot helpers.

The scatter/gather geometry helpers and :class:`ExecutionResult` live here;
the execution engine itself moved to :mod:`repro.core.session`, where a
:class:`~repro.core.session.Session` owns the runtime resources (worker
pool, shared-memory blocks, thread teams) and a
:class:`~repro.core.session.Plan` pre-resolves the per-run work.

:func:`run_local` and :func:`run_distributed` remain as **deprecated shims**
delegating to a process-wide default session: bit-identical fields and
statistics, but a fresh plan per call — repeated callers should hold a
``Session``/``Plan`` pair instead::

    from repro.core import ExecutionConfig, Session

    with Session(ExecutionConfig(runtime="processes")) as session:
        plan = session.plan(program)
        for _ in range(many):
            plan.run([u0, u1], [timesteps])
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from ..interp import CommStatistics, ExecStatistics
from ..interp.vectorize import CompiledKernel
from ..transforms.distribute import DecompositionStrategy
from .config import (
    EXECUTION_BACKENDS,
    EXECUTION_RUNTIMES,
    ExecutionConfig,
    ExecutionError,
    RuntimeFallbackWarning,
)
from .pipeline import CompiledProgram

__all__ = [
    "EXECUTION_BACKENDS", "EXECUTION_RUNTIMES",
    "ExecutionError", "ExecutionResult", "RuntimeFallbackWarning",
    "run_local", "run_distributed",
    "scatter_field", "gather_field", "local_field_slices",
]


def _kernel_for_backend(
    program: CompiledProgram, function_name: str, backend: str
) -> Optional[CompiledKernel]:
    if backend not in EXECUTION_BACKENDS:
        raise ExecutionError(
            f"unknown execution backend {backend!r}; expected one of "
            f"{', '.join(EXECUTION_BACKENDS)}"
        )
    if backend == "interpreter":
        return None
    kernel = program.compiled_kernel(function_name)
    if backend == "vectorized" and kernel.nest_count == 0:
        reasons = kernel.fallback_reasons
        detail = "; ".join(reasons) if reasons else "the function has no loop nests"
        raise ExecutionError(
            f"backend='vectorized' requested but no loop nest of "
            f"{function_name!r} could be vectorized ({detail})"
        )
    return kernel


@dataclass
class ExecutionResult:
    """Outcome of one execution."""

    statistics: list[ExecStatistics]
    messages_sent: int = 0
    bytes_sent: int = 0
    #: Full world-wide communication counters (distributed runs only).
    comm_statistics: Optional[CommStatistics] = None
    #: The runtime that actually executed: "local", "threads" or "processes"
    #: (reflects the automatic fallback, not just the request).
    runtime: str = "local"
    #: Intra-rank thread-team size of the run (the OpenMP level of the
    #: paper's hybrid MPI+OpenMP configurations; 1 = flat runs).
    threads_per_rank: int = 1
    #: The runtime the caller asked for.  Differs from :attr:`runtime` only
    #: when the request degraded (``"processes"`` falling back to
    #: ``"threads"``), which also emits a :class:`RuntimeFallbackWarning`.
    runtime_requested: str = "local"
    #: The run's merged multi-track timeline (a
    #: :class:`repro.obs.TraceTimeline` with the compile, session, and
    #: per-rank tracks) when the run was traced, else None.
    trace: Optional[Any] = field(default=None, repr=False, compare=False)

    @property
    def total_cells_updated(self) -> int:
        return sum(stat.cells_updated for stat in self.statistics)

    @property
    def total_halo_swaps(self) -> int:
        return sum(stat.halo_swaps for stat in self.statistics)

    @property
    def degraded(self) -> bool:
        """True when a requested runtime was unavailable and a fallback ran."""
        return self.runtime != self.runtime_requested


def local_field_slices(
    global_array: np.ndarray,
    strategy: DecompositionStrategy,
    rank: int,
    halo_lower: Sequence[int],
    halo_upper: Sequence[int],
    margin: Sequence[int],
) -> tuple[slice, ...]:
    """The global-array region holding one rank's local buffer (core + halo).

    ``margin`` is the number of ghost/boundary cells the global array carries
    in front of compute index 0 along each dimension (at least the halo width,
    so slicing never leaves the array).
    """
    core_shape = tuple(
        int(extent) - 2 * int(m) for extent, m in zip(global_array.shape, margin)
    )
    start, end = strategy.global_slab(core_shape, rank)
    slices = []
    for dim in range(global_array.ndim):
        lower = start[dim] + margin[dim] - halo_lower[dim]
        upper = end[dim] + margin[dim] + halo_upper[dim]
        if lower < 0 or upper > global_array.shape[dim]:
            raise ExecutionError(
                f"halo of width {halo_lower[dim]}/{halo_upper[dim]} exceeds the "
                f"global array margin {margin[dim]} along dimension {dim}"
            )
        slices.append(slice(lower, upper))
    return tuple(slices)


def scatter_field(
    global_array: np.ndarray,
    strategy: DecompositionStrategy,
    rank: int,
    halo_lower: Sequence[int],
    halo_upper: Sequence[int],
    margin: Sequence[int],
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Extract one rank's local buffer (core slab + halo) from a global array.

    With ``out`` the slab is written straight into the given buffer — the
    process runtime passes a shared-memory view here, so the field reaches
    the workers with a single copy (the copy-elision path).
    """
    region = global_array[
        local_field_slices(global_array, strategy, rank, halo_lower, halo_upper, margin)
    ]
    if out is None:
        return np.array(region, copy=True)
    out[...] = region
    return out


def gather_field(
    global_array: np.ndarray,
    local_array: np.ndarray,
    strategy: DecompositionStrategy,
    rank: int,
    halo_lower: Sequence[int],
    halo_upper: Sequence[int],
    margin: Sequence[int],
) -> None:
    """Write one rank's core slab back into the global array."""
    core_shape = tuple(
        int(extent) - 2 * int(m) for extent, m in zip(global_array.shape, margin)
    )
    start, end = strategy.global_slab(core_shape, rank)
    global_slices = []
    local_slices = []
    for dim in range(global_array.ndim):
        global_slices.append(slice(start[dim] + margin[dim], end[dim] + margin[dim]))
        local_slices.append(
            slice(halo_lower[dim], halo_lower[dim] + (end[dim] - start[dim]))
        )
    global_array[tuple(global_slices)] = local_array[tuple(local_slices)]


# ---------------------------------------------------------------------------
# deprecated one-shot shims (delegating to the default session)
# ---------------------------------------------------------------------------

def _deprecated(name: str) -> None:
    warnings.warn(
        f"{name}() is deprecated; use repro.core.Session/Plan instead "
        "(session = Session(ExecutionConfig(...)); plan = session.plan(program); "
        "plan.run(fields, scalars)) — plans amortize per-run setup across "
        "repeated executions",
        DeprecationWarning,
        stacklevel=3,
    )


def run_local(
    program: CompiledProgram,
    arguments: Sequence[Any],
    *,
    function: Optional[str] = None,
    backend: str = "auto",
) -> ExecutionResult:
    """Deprecated: run a non-distributed compiled program in-process.

    Delegates to the default :class:`~repro.core.session.Session` with a
    one-shot plan; prefer ``session.plan(program).run(arguments)``.
    """
    _deprecated("run_local")
    from .session import default_session

    return default_session().run(
        program, list(arguments), (), function=function,
        config=ExecutionConfig(backend=backend),
    )


def run_distributed(
    program: CompiledProgram,
    global_fields: Sequence[np.ndarray],
    scalar_arguments: Sequence[Any] = (),
    *,
    function: Optional[str] = None,
    margin: Optional[Sequence[int]] = None,
    timeout: float = 60.0,
    backend: str = "auto",
    runtime: str = "threads",
    threads_per_rank: int = 1,
) -> ExecutionResult:
    """Deprecated: run a distributed compiled program on the simulated world.

    Delegates to the default :class:`~repro.core.session.Session` with a
    one-shot plan — every kwarg maps onto one
    :class:`~repro.core.config.ExecutionConfig` field (see the README's
    migration table).  ``global_fields`` are updated in place exactly as
    before, and results/statistics are bit-identical to the Session API.
    """
    _deprecated("run_distributed")
    if program.distribution is None or program.target.rank_grid is None:
        raise ExecutionError("program was not compiled for a distributed target")
    from .session import default_session

    config = ExecutionConfig(
        backend=backend,
        runtime=runtime,
        threads_per_rank=int(threads_per_rank),
        margin=tuple(int(m) for m in margin) if margin is not None else None,
        timeout=timeout,
    )
    return default_session().run(
        program, global_fields, scalar_arguments, function=function, config=config
    )
