"""Job handles: the future half of the serving layer's submit/await split.

:meth:`Server.submit` returns a :class:`JobHandle` immediately; the
dispatcher thread later runs the job as part of a batched round and
resolves the handle.  The handle is a small purpose-built future rather
than a ``concurrent.futures.Future`` so cancellation has queue semantics:
``cancel()`` succeeds **only while the job is still queued** — once a
batch claimed it, the SPMD round cannot abandon one member's ranks without
deadlocking its siblings, so in-flight jobs always run to completion (or
failure).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional, Sequence

from .errors import JobCancelledError, ServeError

#: Job lifecycle states (``JobHandle.state``).
PENDING = "pending"      #: queued, not yet claimed by a batch
RUNNING = "running"      #: claimed by a dispatch round
DONE = "done"            #: completed; ``result()`` returns the ExecutionResult
FAILED = "failed"        #: the job's error is re-raised by ``result()``
CANCELLED = "cancelled"  #: cancelled while queued; ``result()`` raises

_TERMINAL = frozenset((DONE, FAILED, CANCELLED))


class JobHandle:
    """One submitted job: its payload, lifecycle state, and result slot."""

    def __init__(
        self,
        program: Any,
        fields: Sequence[Any],
        scalars: Sequence[Any],
        function: Optional[str],
        config: Any,
        tenant: str,
        on_cancel: Optional[Callable[["JobHandle"], None]] = None,
    ):
        self.program = program
        self.fields = fields
        self.scalars = scalars
        self.function = function
        self.config = config
        self.tenant = tenant
        self.state = PENDING
        #: Monotonic enqueue timestamp (queue-wait accounting).
        self.enqueued_at = time.monotonic()
        self._condition = threading.Condition()
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._on_cancel = on_cancel

    # -- client surface -------------------------------------------------------
    def done(self) -> bool:
        """Whether the job reached a terminal state (done/failed/cancelled)."""
        return self.state in _TERMINAL

    def cancel(self) -> bool:
        """Cancel the job **if it is still queued**; returns success.

        A claimed (running) or finished job cannot be cancelled — the batch
        round it joined must complete as one SPMD unit.  On success the
        handle transitions to ``cancelled`` and :meth:`result` raises
        :class:`~repro.serve.errors.JobCancelledError`.
        """
        with self._condition:
            if self.state != PENDING:
                return False
            self.state = CANCELLED
            self._condition.notify_all()
        if self._on_cancel is not None:
            self._on_cancel(self)
        return True

    def result(self, timeout: Optional[float] = None):
        """Block until the job finishes; return its ``ExecutionResult``.

        Raises the job's own error if it failed,
        :class:`~repro.serve.errors.JobCancelledError` if it was cancelled,
        and :class:`TimeoutError` if ``timeout`` elapses first (the job keeps
        running; call again to keep waiting).
        """
        with self._condition:
            if not self._condition.wait_for(self.done, timeout):
                raise TimeoutError(
                    f"job for tenant {self.tenant!r} still {self.state} "
                    f"after {timeout}s"
                )
            if self.state == CANCELLED:
                raise JobCancelledError(
                    f"job for tenant {self.tenant!r} was cancelled while queued"
                )
            if self.state == FAILED:
                raise self._error
            return self._result

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """Block until terminal; the job's error (None when it succeeded)."""
        try:
            self.result(timeout)
        except TimeoutError:
            raise
        except ServeError as err:
            return err
        except BaseException as err:  # noqa: BLE001 - the job's own failure
            return err
        return None

    # -- dispatcher surface ---------------------------------------------------
    def _begin(self) -> bool:
        """Claim the job for a batch round; False when it was cancelled."""
        with self._condition:
            if self.state != PENDING:
                return False
            self.state = RUNNING
            return True

    def _complete(self, result: Any) -> None:
        with self._condition:
            self._result = result
            self.state = DONE
            self._condition.notify_all()

    def _fail(self, error: BaseException) -> None:
        with self._condition:
            self._error = error
            self.state = FAILED
            self._condition.notify_all()
