"""Tests of the mini-PSyclone frontend (parser, PSy-IR, backend) and the OEC builder."""

import numpy as np
import pytest

from repro.dialects import stencil
from repro.frontends.oec import BuilderError, StencilProgramBuilder
from repro.frontends.psyclone import (
    ArrayReference,
    Assignment,
    FortranParseError,
    Loop,
    PsycloneXDSLBackend,
    StencilExtractionError,
    extract_stencils,
    parse_fortran,
    reference_execute,
)
from repro.interp import Interpreter
from repro.workloads import pw_advection, tracer_advection

SIMPLE_KERNEL = """
subroutine smooth(out, field)
  do k = 1, nz
    do j = 1, ny
      do i = 1, nx
        out(i, j, k) = 0.25 * (field(i+1, j, k) + field(i-1, j, k) + field(i, j+1, k) + field(i, j-1, k))
      end do
    end do
  end do
end subroutine
"""


class TestFortranParser:
    def test_parse_structure(self):
        schedule = parse_fortran(SIMPLE_KERNEL)
        assert schedule.name == "smooth"
        assert schedule.arguments == ["out", "field"]
        assert len(schedule.body) == 1
        outer = schedule.body[0]
        assert isinstance(outer, Loop) and outer.variable == "k"
        assert schedule.array_names() == ["out", "field"]
        assert schedule.written_arrays() == ["out"]

    def test_offsets_parsed(self):
        schedule = parse_fortran(SIMPLE_KERNEL)
        references = schedule.walk(ArrayReference)
        offsets = {r.offsets for r in references if r.name == "field"}
        assert (1, 0, 0) in offsets and (0, -1, 0) in offsets

    def test_comments_and_declarations_skipped(self):
        source = """
subroutine f(a, b)
  real :: a(:,:,:)  ! a declaration
  do k = 1, nz
    do j = 1, ny
      do i = 1, nx
        a(i, j, k) = b(i, j, k) * 2.0  ! double it
      end do
    end do
  end do
end subroutine
"""
        schedule = parse_fortran(source)
        assert len(schedule.walk(Assignment)) == 1

    def test_parse_errors(self):
        with pytest.raises(FortranParseError):
            parse_fortran("")
        with pytest.raises(FortranParseError):
            parse_fortran("subroutine f(a)\n  do i = 1, n\nend subroutine")
        with pytest.raises(FortranParseError):
            parse_fortran("subroutine f(a)\n  a(i*2) = 1.0\nend subroutine")
        with pytest.raises(FortranParseError):
            parse_fortran("not fortran at all")


class TestStencilExtraction:
    def test_stencils_identified(self):
        schedule = parse_fortran(SIMPLE_KERNEL)
        stencils = extract_stencils(schedule)
        assert len(stencils) == 1
        assert stencils[0].output == "out"
        assert stencils[0].inputs == ["field"]
        assert stencils[0].halo() == 1

    def test_pw_advection_has_three_stencils(self):
        stencils = extract_stencils(pw_advection().schedule)
        assert len(stencils) == 3
        assert {s.output for s in stencils} == {"su", "sv", "sw"}

    def test_tracer_advection_has_many_dependent_stencils(self):
        stencils = extract_stencils(tracer_advection(computations=24).schedule)
        assert len(stencils) == 24
        written = [s.output for s in stencils]
        read = {name for s in stencils for name in s.inputs}
        # Dependencies: previously written arrays are read again later.
        assert set(written) & read

    def test_no_stencil_rejected(self):
        schedule = parse_fortran("subroutine f(a)\n  a(i) = 1.0\nend subroutine")
        schedule.body.clear()
        with pytest.raises(StencilExtractionError):
            extract_stencils(schedule)


class TestPsycloneBackend:
    def test_compiled_kernel_matches_reference(self):
        schedule = parse_fortran(SIMPLE_KERNEL)
        shape = (6, 6, 4)
        module = PsycloneXDSLBackend(dtype=np.float64).build_module(schedule, shape, iterations=2)
        module.verify()
        rng = np.random.default_rng(1)
        arrays = {name: rng.random(tuple(s + 2 for s in shape)) for name in schedule.array_names()}
        reference = {name: array.copy() for name, array in arrays.items()}
        Interpreter(module).call(
            "smooth", *[arrays[name] for name in schedule.array_names()], 2
        )
        reference_execute(schedule, reference, halo=1, iterations=2)
        for name in arrays:
            assert np.allclose(arrays[name], reference[name])

    def test_pw_advection_correctness(self):
        workload = pw_advection(shape=(6, 6, 4), iterations=1)
        schedule = workload.schedule
        module = workload.build_module(dtype=np.float64)
        arrays = workload.arrays(dtype=np.float64, seed=5)
        reference = {name: array.copy() for name, array in arrays.items()}
        Interpreter(module).call(
            schedule.name, *[arrays[n] for n in schedule.array_names()], 1
        )
        reference_execute(schedule, reference, halo=1, iterations=1)
        for name in arrays:
            assert np.allclose(arrays[name], reference[name])

    def test_scalar_parameters_require_values(self):
        source = """
subroutine scaled(out, a)
  do k = 1, nz
    do j = 1, ny
      do i = 1, nx
        out(i, j, k) = alpha * a(i, j, k)
      end do
    end do
  end do
end subroutine
"""
        schedule = parse_fortran(source)
        backend = PsycloneXDSLBackend()
        with pytest.raises(StencilExtractionError):
            backend.build_module(schedule, (4, 4, 2))
        module = backend.build_module(schedule, (4, 4, 2), scalars={"alpha": 2.0})
        module.verify()


class TestOECBuilder:
    def test_builder_produces_valid_module(self):
        builder = StencilProgramBuilder("kernel", shape=(8, 8), halo=1)
        a = builder.add_field("a")
        b = builder.add_field("b")
        builder.add_stencil([a], b, lambda s: s.mul(s.access(0, (0, 0)), s.constant(2.0)))
        builder.swap(a, b)
        module = builder.build()
        module.verify()
        assert len(stencil.apply_ops_of(module)) == 1

    def test_builder_requires_a_stencil(self):
        builder = StencilProgramBuilder("kernel", shape=(4,))
        builder.add_field("a")
        with pytest.raises(BuilderError):
            builder.build()

    def test_builder_execution(self):
        builder = StencilProgramBuilder("kernel", shape=(6,), halo=1, dtype="f64")
        a = builder.add_field("a")
        b = builder.add_field("b")
        builder.add_stencil(
            [a], b, lambda s: s.add(s.access(0, (-1,)), s.access(0, (1,)))
        )
        module = builder.build()
        left = np.arange(8, dtype=np.float64)
        right = np.zeros(8)
        Interpreter(module).call("kernel", left, right, 1)
        expected = left[0:6] + left[2:8]
        assert np.allclose(right[1:7], expected)


MASKED_KERNEL = """
subroutine masked_smooth(out, field)
  do k = 1, nz
    do j = 1, ny
      do i = 1, nx
        out(i, j, k) = merge(0.5 * (field(i+1, j, k) - field(i-1, j, k)), 0.25 * field(i, j, k), field(i, j, k) > 0.5)
      end do
    end do
  end do
end subroutine
"""


class TestMaskedKernelParsing:
    def test_merge_parses_into_merge_and_comparison_nodes(self):
        from repro.frontends.psyclone import BinaryOperation, Comparison, Merge

        schedule = parse_fortran(MASKED_KERNEL)
        assignment = schedule.walk(Assignment)[0]
        merge = assignment.rhs
        assert isinstance(merge, Merge)
        assert isinstance(merge.true_value, BinaryOperation)
        condition = merge.condition
        assert isinstance(condition, Comparison)
        assert condition.operator == ">"
        assert isinstance(condition.lhs, ArrayReference)
        assert schedule.walk(Merge) and schedule.walk(Comparison)

    @pytest.mark.parametrize("operator", [">", "<", ">=", "<=", "==", "/="])
    def test_all_comparison_operators_parse(self, operator):
        from repro.frontends.psyclone import Comparison

        source = MASKED_KERNEL.replace(">", operator, 1) if operator != ">" else MASKED_KERNEL
        schedule = parse_fortran(source)
        comparison = schedule.walk(Comparison)[0]
        assert comparison.operator == operator

    def test_masked_inputs_collected_through_merge(self):
        schedule = parse_fortran(MASKED_KERNEL)
        stencils = extract_stencils(schedule)
        assert stencils[0].inputs == ["field"]
        assert stencils[0].halo() == 1

    def test_masked_compiled_kernel_matches_reference(self):
        schedule = parse_fortran(MASKED_KERNEL)
        shape = (6, 6, 4)
        module = PsycloneXDSLBackend(dtype=np.float64).build_module(schedule, shape)
        module.verify()
        rng = np.random.default_rng(23)
        full = tuple(s + 2 for s in shape)
        out = np.zeros(full)
        field = rng.random(full)
        reference = {"out": out.copy(), "field": field.copy()}
        reference_execute(schedule, reference, halo=1, iterations=1)
        compiled_out, compiled_field = out.copy(), field.copy()
        Interpreter(module).call("masked_smooth", compiled_out, compiled_field, 1)
        assert np.allclose(reference["out"], compiled_out)
