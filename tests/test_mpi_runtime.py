"""Tests of the simulated MPI runtime (point-to-point, collectives, SPMD driver)."""

import numpy as np
import pytest

from repro.interp import MPIRuntimeError, SimulatedMPI


class TestPointToPoint:
    def test_send_recv(self):
        world = SimulatedMPI(2, timeout=5.0)

        def body(comm):
            if comm.rank == 0:
                comm.send(np.array([1.0, 2.0, 3.0]), dest=1, tag=7)
                return None
            buffer = np.zeros(3)
            comm.recv(buffer, source=0, tag=7)
            return buffer

        results = world.run_spmd(body)
        assert np.allclose(results[1], [1.0, 2.0, 3.0])
        assert world.statistics.messages_sent == 1
        assert world.statistics.bytes_sent == 24

    def test_nonblocking_exchange(self):
        world = SimulatedMPI(2, timeout=5.0)

        def body(comm):
            other = 1 - comm.rank
            outgoing = np.full(4, float(comm.rank))
            incoming = np.zeros(4)
            requests = [comm.irecv(incoming, source=other, tag=1),
                        comm.isend(outgoing, dest=other, tag=1)]
            comm.waitall(requests)
            return incoming

        results = world.run_spmd(body)
        assert np.allclose(results[0], 1.0)
        assert np.allclose(results[1], 0.0)

    def test_messages_matched_by_tag(self):
        world = SimulatedMPI(2, timeout=5.0)

        def body(comm):
            if comm.rank == 0:
                comm.send(np.array([1.0]), dest=1, tag=1)
                comm.send(np.array([2.0]), dest=1, tag=2)
                return None
            second = np.zeros(1)
            first = np.zeros(1)
            comm.recv(second, source=0, tag=2)
            comm.recv(first, source=0, tag=1)
            return (first[0], second[0])

        results = world.run_spmd(body)
        assert results[1] == (1.0, 2.0)

    def test_recv_timeout_raises(self):
        world = SimulatedMPI(2, timeout=0.2)

        def body(comm):
            if comm.rank == 1:
                comm.recv(np.zeros(1), source=0, tag=9)
            return None

        with pytest.raises(MPIRuntimeError):
            world.run_spmd(body, timeout=2.0)

    def test_test_polls_completion(self):
        world = SimulatedMPI(2, timeout=5.0)

        def body(comm):
            if comm.rank == 0:
                comm.send(np.array([5.0]), dest=1, tag=0)
                return True
            buffer = np.zeros(1)
            request = comm.irecv(buffer, source=0, tag=0)
            while not comm.test(request):
                pass
            return buffer[0] == 5.0

        assert all(world.run_spmd(body))


class TestCollectives:
    def test_allreduce_sum(self):
        world = SimulatedMPI(4, timeout=5.0)
        results = world.run_spmd(lambda comm: comm.allreduce(np.array([float(comm.rank)])))
        for result in results:
            assert np.allclose(result, 6.0)

    def test_reduce_min_to_root(self):
        world = SimulatedMPI(3, timeout=5.0)
        results = world.run_spmd(
            lambda comm: comm.reduce(np.array([float(10 - comm.rank)]), "min", root=0)
        )
        assert np.allclose(results[0], 8.0)
        assert results[1] is None and results[2] is None

    def test_bcast(self):
        world = SimulatedMPI(3, timeout=5.0)

        def body(comm):
            data = np.array([42.0]) if comm.rank == 0 else np.zeros(1)
            return comm.bcast(data, root=0)

        for result in world.run_spmd(body):
            assert np.allclose(result, 42.0)

    def test_gather(self):
        world = SimulatedMPI(3, timeout=5.0)
        results = world.run_spmd(lambda comm: comm.gather(np.array([float(comm.rank)]), root=0))
        assert np.allclose(results[0].reshape(-1), [0.0, 1.0, 2.0])

    def test_barrier_counts(self):
        world = SimulatedMPI(3, timeout=5.0)
        world.run_spmd(lambda comm: comm.barrier())
        assert world.statistics.barriers == 3

    def test_unknown_reduction_rejected(self):
        world = SimulatedMPI(1, timeout=5.0)
        with pytest.raises(MPIRuntimeError):
            world.run_spmd(lambda comm: comm.reduce(np.ones(1), "median"))


class TestWorldManagement:
    def test_invalid_world_and_ranks(self):
        with pytest.raises(MPIRuntimeError):
            SimulatedMPI(0)
        world = SimulatedMPI(2)
        with pytest.raises(MPIRuntimeError):
            world.communicator(5)

    def test_errors_propagate_from_ranks(self):
        world = SimulatedMPI(2, timeout=2.0)

        def body(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            return comm.rank

        with pytest.raises(ValueError, match="boom"):
            world.run_spmd(body)

    def test_send_to_invalid_rank(self):
        world = SimulatedMPI(2, timeout=2.0)
        with pytest.raises(MPIRuntimeError):
            world.communicator(0).send(np.zeros(1), dest=7)


class TestSpmdDriverTimeouts:
    def test_deadlocked_world_shares_one_deadline(self):
        """Joining N deadlocked ranks must wait ~timeout once, not N times."""
        import time

        world = SimulatedMPI(4, timeout=30.0)

        def body(comm):
            # Every rank waits for a message nobody sends.
            comm.recv(np.zeros(1), source=(comm.rank + 1) % comm.size, tag=9)

        start = time.monotonic()
        with pytest.raises(MPIRuntimeError, match="deadlock"):
            world.run_spmd(body, timeout=0.5)
        elapsed = time.monotonic() - start
        assert elapsed < 4 * 0.5  # the old per-thread join would take >= 2s

    def test_crashed_rank_fails_fast_while_others_block(self):
        """One raising rank must surface its error, not a join timeout."""
        import time

        world = SimulatedMPI(3, timeout=30.0)

        def body(comm):
            if comm.rank == 0:
                raise RuntimeError("rank zero exploded")
            comm.recv(np.zeros(1), source=0, tag=3)  # blocks forever

        start = time.monotonic()
        with pytest.raises(RuntimeError, match="rank zero exploded"):
            world.run_spmd(body, timeout=20.0)
        elapsed = time.monotonic() - start
        assert elapsed < 5.0  # far below the 20s join budget

    def test_originating_error_wins_when_all_ranks_crash(self):
        world = SimulatedMPI(2, timeout=2.0)
        barrier = __import__("threading").Barrier(2)

        def body(comm):
            barrier.wait(timeout=2.0)
            raise ValueError(f"rank {comm.rank} failed")

        # Fail-fast means whichever rank's error lands first is raised; it
        # must be one of the originating errors, never a join timeout.
        with pytest.raises(ValueError, match=r"rank [01] failed"):
            world.run_spmd(body)
