"""FPGA (HLS) lowering of stencil programs (Stencil-HMLS, paper Table 1).

Two configurations are produced:

* *initial* — the stencil is executed unchanged from its Von Neumann form:
  a single HLS stage containing the loop nest, every stencil access reading
  from external DDR memory (no on-chip reuse, initiation interval >> 1).
* *optimized* — the compiler restructures the algorithm for a dataflow
  architecture: separate read / compute / write stages connected by streams
  plus a shift buffer caching the stencil footprint, so the compute stage
  is fully pipelined (initiation interval 1, one DDR read per cycle).

The transformation builds ``hls.dataflow`` regions carrying enough structural
information (stage kinds, initiation intervals, footprints) for the FPGA
performance model to estimate throughput, while the numerical semantics stay
with the stencil ops (kept inside the compute stage) so correctness tests can
still execute the program.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...dialects import hls, stencil
from ...ir.attributes import IntAttr, UnitAttr
from ...ir.builder import Builder
from ...ir.context import MLContext
from ...ir.core import Operation
from ...ir.pass_manager import ModulePass, PassRegistry


@dataclass
class HLSKernelInfo:
    """Structural summary of one synthesised stencil kernel."""

    stencil_points: int
    footprint: tuple[int, ...]
    optimized: bool
    initiation_interval: int
    ddr_reads_per_cell: int

    @property
    def pipelined(self) -> bool:
        return self.initiation_interval == 1


def _apply_footprint(apply_op: stencil.ApplyOp) -> tuple[int, ...]:
    lower, upper = apply_op.halo_extents()
    return tuple(l + u + 1 for l, u in zip(lower, upper))


def _apply_points(apply_op: stencil.ApplyOp) -> int:
    return sum(len(offsets) for offsets in apply_op.access_offsets().values())


def lower_stencil_to_hls(module: Operation, *, optimize: bool = True) -> list[HLSKernelInfo]:
    """Wrap every stencil.apply in an HLS dataflow structure; return kernel infos."""
    infos: list[HLSKernelInfo] = []
    for apply_op in stencil.apply_ops_of(module):
        points = _apply_points(apply_op)
        footprint = _apply_footprint(apply_op)
        builder = Builder.before(apply_op)
        dataflow = hls.DataflowOp()
        builder.insert(dataflow)
        stage_builder = Builder.at_end(dataflow.body.block)
        if optimize:
            read_stage = hls.StageOp("read", ii=1)
            compute_stage = hls.StageOp("compute", ii=1)
            write_stage = hls.StageOp("write", ii=1)
            stage_builder.insert_all([read_stage, compute_stage, write_stage])
            compute_stage.attributes["uses_shift_buffer"] = UnitAttr()
            compute_stage.attributes["footprint_cells"] = IntAttr(
                int(_product(footprint))
            )
            apply_op.attributes["hls_optimized"] = UnitAttr()
            ddr_reads = 1
            initiation_interval = 1
        else:
            # The naive port keeps a single stage; every access is a DDR read
            # and the loop cannot be pipelined across accesses.
            stage = hls.StageOp("compute", ii=max(points, 1))
            stage_builder.insert(stage)
            apply_op.attributes["hls_initial"] = UnitAttr()
            ddr_reads = points
            initiation_interval = max(points, 1)
        infos.append(
            HLSKernelInfo(
                stencil_points=points,
                footprint=footprint,
                optimized=optimize,
                initiation_interval=initiation_interval,
                ddr_reads_per_cell=ddr_reads,
            )
        )
    return infos


def _product(values: tuple[int, ...]) -> int:
    result = 1
    for value in values:
        result *= value
    return result


class ConvertStencilToHLSPass(ModulePass):
    """Lower stencils to HLS dataflow regions (optimised, shift-buffer form)."""

    name = "convert-stencil-to-hls"

    def __init__(self, optimize: bool = True):
        self.optimize = optimize
        self.kernel_infos: list[HLSKernelInfo] = []

    def apply(self, ctx: MLContext, module: Operation) -> None:
        self.kernel_infos = lower_stencil_to_hls(module, optimize=self.optimize)


PassRegistry.register("convert-stencil-to-hls", ConvertStencilToHLSPass)
PassRegistry.register(
    "convert-stencil-to-hls-initial", lambda: ConvertStencilToHLSPass(optimize=False)
)
