"""Dead code elimination: remove pure operations whose results are unused."""

from __future__ import annotations

from ...ir.context import MLContext
from ...ir.core import Operation
from ...ir.pass_manager import ModulePass, PassRegistry
from ...ir.traits import IsTerminator, is_pure


def _is_trivially_dead(op: Operation) -> bool:
    if op.has_trait(IsTerminator):
        return False
    if not is_pure(op):
        return False
    return all(not result.uses for result in op.results)


def eliminate_dead_code(module: Operation) -> int:
    """Erase dead pure ops until a fixpoint; return the number of erased ops."""
    erased_total = 0
    changed = True
    while changed:
        changed = False
        # Walk in reverse so users are visited (and erased) before producers.
        for op in list(module.walk(reverse=True)):
            if op is module or op.parent is None:
                continue
            if _is_trivially_dead(op):
                op.erase()
                erased_total += 1
                changed = True
    return erased_total


class DeadCodeEliminationPass(ModulePass):
    """Remove operations that are pure and unused."""

    name = "dce"

    def apply(self, ctx: MLContext, module: Operation) -> None:
        eliminate_dead_code(module)


PassRegistry.register("dce", DeadCodeEliminationPass)
