"""SSA+Regions IR core (the xDSL-like substrate of the shared compilation stack).

This package provides everything the dialects and transforms build on:

* :mod:`~repro.ir.attributes` / :mod:`~repro.ir.types` — immutable attributes
  and builtin types.
* :mod:`~repro.ir.core` — SSA values, operations, blocks and regions.
* :mod:`~repro.ir.builder` — insertion-point based IR construction.
* :mod:`~repro.ir.printer` / :mod:`~repro.ir.parser` — the shared textual format.
* :mod:`~repro.ir.rewriting` — pattern rewriting (the engine of every lowering).
* :mod:`~repro.ir.pass_manager` — pass pipelines.
"""

from .attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    Data,
    DenseArrayAttr,
    DenseIntOrFPElementsAttr,
    DictionaryAttr,
    FloatAttr,
    FloatData,
    IntAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttribute,
    UnitAttr,
)
from .builder import Builder, InsertPoint, build_single_block_region, first_result
from .context import Dialect, MLContext, default_context
from .core import (
    Block,
    BlockArgument,
    IRError,
    Operation,
    OpResult,
    Region,
    SSAValue,
    Use,
)
from .pass_manager import (
    FunctionPass,
    LambdaPass,
    ModulePass,
    PassFailedError,
    PassManager,
    PassRegistry,
    PipelineReport,
)
from .parser import ParseError, Parser, parse_module
from .printer import Printer, print_module, print_op
from .rewriting import (
    GreedyRewritePatternApplier,
    PatternRewriter,
    PatternRewriteWalker,
    RewriteError,
    RewritePattern,
    TypedPattern,
)
from .traits import (
    CommunicationEffect,
    ConstantLike,
    HasParent,
    IsolatedFromAbove,
    IsTerminator,
    MemoryReadEffect,
    MemoryWriteEffect,
    OpTrait,
    Pure,
    SymbolOp,
    has_side_effects,
    is_pure,
)
from .types import (
    DYNAMIC,
    Float16Type,
    Float32Type,
    Float64Type,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    NoneType,
    ShapedType,
    TensorType,
    VectorType,
    bitwidth_of,
    bytewidth_of,
    f16,
    f32,
    f64,
    i1,
    i32,
    i64,
    index,
    is_float_type,
    is_integer_like,
    none,
)
from .verifier import VerificationError, verify_operation

__all__ = [
    # attributes
    "Attribute", "TypeAttribute", "Data", "IntAttr", "FloatData", "StringAttr",
    "BoolAttr", "UnitAttr", "ArrayAttr", "DictionaryAttr", "SymbolRefAttr",
    "IntegerAttr", "FloatAttr", "DenseArrayAttr", "DenseIntOrFPElementsAttr",
    # types
    "IntegerType", "IndexType", "Float16Type", "Float32Type", "Float64Type",
    "NoneType", "FunctionType", "ShapedType", "MemRefType", "TensorType",
    "VectorType", "DYNAMIC", "i1", "i32", "i64", "f16", "f32", "f64", "index",
    "none", "bitwidth_of", "bytewidth_of", "is_float_type", "is_integer_like",
    # core
    "SSAValue", "OpResult", "BlockArgument", "Use", "Operation", "Block",
    "Region", "IRError",
    # construction
    "Builder", "InsertPoint", "build_single_block_region", "first_result",
    # context
    "MLContext", "Dialect", "default_context",
    # printing / parsing
    "Printer", "print_op", "print_module", "Parser", "parse_module", "ParseError",
    # rewriting
    "RewritePattern", "TypedPattern", "PatternRewriter", "PatternRewriteWalker",
    "GreedyRewritePatternApplier", "RewriteError",
    # passes
    "ModulePass", "FunctionPass", "LambdaPass", "PassManager", "PassRegistry",
    "PipelineReport", "PassFailedError",
    # traits
    "OpTrait", "IsTerminator", "Pure", "HasParent", "IsolatedFromAbove",
    "SymbolOp", "ConstantLike", "MemoryReadEffect", "MemoryWriteEffect",
    "CommunicationEffect", "is_pure", "has_side_effects",
    # verification
    "VerificationError", "verify_operation",
]
