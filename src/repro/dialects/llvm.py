"""A minimal llvm dialect: pointer type and the conversions the MPI lowering needs."""

from __future__ import annotations

from ..ir.attributes import TypeAttribute
from ..ir.context import Dialect
from ..ir.core import Operation, SSAValue
from ..ir.traits import Pure
from ..ir.types import i64


class LLVMPointerType(TypeAttribute):
    """An opaque pointer (``!llvm.ptr``)."""

    name = "llvm.ptr"

    def parameters(self) -> tuple:
        return ()

    def print_parameters(self, printer) -> str:
        return ""

    @classmethod
    def parse_parameters(cls, text: str) -> "LLVMPointerType":
        return cls()

    def __str__(self) -> str:
        return "!llvm.ptr"


class IntToPtrOp(Operation):
    """Convert an integer address to an opaque pointer."""

    name = "llvm.inttoptr"
    traits = frozenset([Pure()])

    def __init__(self, operand: SSAValue):
        super().__init__(operands=[operand], result_types=[LLVMPointerType()])

    @property
    def result(self) -> SSAValue:
        return self.results[0]


class PtrToIntOp(Operation):
    """Convert an opaque pointer to an integer address."""

    name = "llvm.ptrtoint"
    traits = frozenset([Pure()])

    def __init__(self, operand: SSAValue):
        super().__init__(operands=[operand], result_types=[i64])

    @property
    def result(self) -> SSAValue:
        return self.results[0]


class NullOp(Operation):
    """Materialise a null pointer."""

    name = "llvm.mlir.null"
    traits = frozenset([Pure()])

    def __init__(self):
        super().__init__(result_types=[LLVMPointerType()])

    @property
    def result(self) -> SSAValue:
        return self.results[0]


LLVM = Dialect("llvm", [IntToPtrOp, PtrToIntOp, NullOp], [LLVMPointerType])
