"""Analytic performance models of the paper's evaluation platforms.

These models substitute for the ARCHER2/Cirrus/Alveo hardware: they consume
characteristics read off the compiled IR (:mod:`~repro.machine.kernel_model`)
plus per-compiler efficiency factors (:mod:`~repro.machine.compilers`) and
predict runtimes/throughputs whose *relative* behaviour reproduces the paper's
figures.  Absolute numbers are indicative only.
"""

from .compilers import (
    CPUCompilerProfile,
    CRAY_PSYCLONE,
    DEVITO_NATIVE,
    GNU_PSYCLONE,
    GPUCompilerProfile,
    OPENACC_DEVITO,
    PSYCLONE_NVIDIA_GPU,
    XDSL_CPU,
    XDSL_GPU,
    XDSL_PSYCLONE,
    XDSL_PSYCLONE_GPU,
)
from .cpu import CPUEstimate, estimate_cpu_node
from .distributed import ScalingPoint, estimate_strong_scaling
from .fpga_model import FPGAEstimate, estimate_fpga
from .gpu_model import GPUEstimate, estimate_gpu
from .kernel_model import (
    ApplyCharacteristics,
    ProgramCharacteristics,
    characterize_apply,
    characterize_module,
)
from .specs import (
    ALVEO_U280,
    ARCHER2_NODE,
    CPUNodeSpec,
    FPGASpec,
    GPUSpec,
    NetworkSpec,
    SLINGSHOT,
    V100,
)

__all__ = [
    # specs
    "CPUNodeSpec", "GPUSpec", "NetworkSpec", "FPGASpec",
    "ARCHER2_NODE", "SLINGSHOT", "V100", "ALVEO_U280",
    # kernel characteristics
    "ApplyCharacteristics", "ProgramCharacteristics",
    "characterize_apply", "characterize_module",
    # compiler profiles
    "CPUCompilerProfile", "GPUCompilerProfile",
    "DEVITO_NATIVE", "XDSL_CPU", "CRAY_PSYCLONE", "GNU_PSYCLONE", "XDSL_PSYCLONE",
    "OPENACC_DEVITO", "XDSL_GPU", "PSYCLONE_NVIDIA_GPU", "XDSL_PSYCLONE_GPU",
    # models
    "CPUEstimate", "estimate_cpu_node",
    "ScalingPoint", "estimate_strong_scaling",
    "GPUEstimate", "estimate_gpu",
    "FPGAEstimate", "estimate_fpga",
]
