"""Compiler transformations of the shared stack.

Subpackages:

* :mod:`~repro.transforms.common` — CSE, DCE, LICM, constant folding.
* :mod:`~repro.transforms.stencil` — shape inference, fusion, CPU/GPU/FPGA lowerings.
* :mod:`~repro.transforms.smp` — scf -> OpenMP.
* :mod:`~repro.transforms.distribute` — decomposition, dmp insertion, dmp -> mpi.
* :mod:`~repro.transforms.mpi` — mpi -> MPI_* function calls.
"""

from . import common, distribute, mpi, smp, stencil

__all__ = ["common", "distribute", "mpi", "smp", "stencil"]
