"""Tests for the hybrid MPI+OpenMP runtime: thread teams, halo/compute
overlap, and shared-memory copy elision.

The contract: executing with ``threads_per_rank=N`` is *bit-identical* to the
flat ``runtime="threads"`` run for every workload — fields,
``ExecStatistics`` (including the new overlap counter) and the compared part
of ``CommStatistics`` all match — across the heat, wave and masked-tracer
workloads; overlap defers every eligible halo completion past interior
compute; and the process runtime's field buffers live in pooled
shared-memory blocks that are reused across runs.
"""

import numpy as np
import pytest

from repro.core import (
    ExecutionError,
    compile_stencil_program,
    default_session,
    dmp_target,
)


def _run(program, fields, scalars, **config):
    """Execute through the Session API (default session, one-shot plans)."""
    return default_session().run(program, fields, scalars, **config)
from repro.interp import Interpreter, SimulatedMPI
from repro.interp.thread_team import get_thread_team, split_trip_counts
from repro.runtime import processes_available, shutdown_worker_pool
from repro.workloads import acoustic_wave, heat_diffusion, masked_tracer_advection

needs_processes = pytest.mark.skipif(
    not processes_available(), reason="process runtime unavailable on this platform"
)


@pytest.fixture(scope="module", autouse=True)
def _pool_teardown():
    yield
    shutdown_worker_pool()


# ---------------------------------------------------------------------------
# workload harnesses: (program, fields(), scalars) triples
# ---------------------------------------------------------------------------

def _devito_case(workload_fn, shape, rank_grid, steps, **kwargs):
    workload = workload_fn(shape, dtype=np.float64, **kwargs)
    module = workload.operator(backend="xdsl").stencil_module(dt=workload.dt)
    program = compile_stencil_program(module, dmp_target(rank_grid))
    halo = workload.space_order // 2

    def fields():
        extended = tuple(s + 2 * halo for s in shape)
        base = np.zeros(extended)
        centre = tuple(s // 2 for s in extended)
        base[centre] = 1.0
        buffers = workload.function.buffers
        return [base.copy() for _ in range(buffers)]

    return program, fields, [steps], "kernel"


def _tracer_case(shape, rank_grid, steps):
    workload = masked_tracer_advection(shape, iterations=steps, computations=4)
    module = workload.build_module(dtype=np.float64)
    program = compile_stencil_program(module, dmp_target(rank_grid))
    names = workload.schedule.array_names()
    arrays = workload.arrays(halo=1, dtype=np.float64, seed=23)

    def fields():
        return [arrays[name].copy() for name in names]

    return program, fields, [steps], workload.schedule.name


def _cases():
    return {
        "heat": _devito_case(heat_diffusion, (24, 24), (2, 2), 3, space_order=2),
        "wave": _devito_case(acoustic_wave, (24, 24), (2, 1), 3, space_order=4),
        "traadv-masked": _tracer_case((10, 10, 6), (2, 1, 1), 2),
    }


CASES = _cases()


# ---------------------------------------------------------------------------
# hybrid parity (satellite: heat, wave, masked tracer; incl. CommStatistics)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(CASES))
def test_hybrid_thread_world_parity(name):
    """threads_per_rank > 1 in the thread world is bit-identical to flat."""
    program, fields, scalars, function = CASES[name]
    flat = fields()
    reference = _run(
        program, flat, scalars, function=function, runtime="threads"
    )
    hybrid_fields = fields()
    hybrid = _run(
        program, hybrid_fields, scalars, function=function,
        runtime="threads", threads_per_rank=2,
    )
    for a, b in zip(flat, hybrid_fields):
        assert np.array_equal(a, b), f"{name}: hybrid fields diverged"
    assert hybrid.statistics == reference.statistics
    assert hybrid.comm_statistics == reference.comm_statistics
    assert hybrid.comm_statistics.messages_sent == reference.messages_sent > 0
    assert hybrid.threads_per_rank == 2


@needs_processes
@pytest.mark.parametrize("name", sorted(CASES))
def test_hybrid_process_world_parity(name):
    """2 ranks x 2 threads under processes matches flat runtime="threads"."""
    program, fields, scalars, function = CASES[name]
    flat = fields()
    reference = _run(
        program, flat, scalars, function=function, runtime="threads"
    )
    hybrid_fields = fields()
    hybrid = _run(
        program, hybrid_fields, scalars, function=function,
        runtime="processes", threads_per_rank=2,
    )
    assert hybrid.runtime == "processes"
    for a, b in zip(flat, hybrid_fields):
        assert np.array_equal(a, b), f"{name}: hybrid fields diverged"
    assert hybrid.statistics == reference.statistics
    assert hybrid.comm_statistics == reference.comm_statistics
    assert hybrid.comm_statistics.messages_sent == reference.messages_sent > 0


def test_threads_per_rank_validation():
    program, fields, scalars, function = CASES["heat"]
    with pytest.raises(ExecutionError, match="threads_per_rank"):
        _run(
            program, fields(), scalars, function=function, threads_per_rank=0
        )


# ---------------------------------------------------------------------------
# halo/compute overlap
# ---------------------------------------------------------------------------

def test_overlap_defers_every_eligible_swap():
    """On the vectorized heat kernel, every halo swap overlaps with compute."""
    program, fields, scalars, function = CASES["heat"]
    result = _run(
        program, fields(), scalars, function=function, runtime="threads"
    )
    for stats in result.statistics:
        assert stats.halo_swaps > 0
        assert stats.halo_swaps_overlapped == stats.halo_swaps


def test_overlap_fires_on_the_omp_multi_field_path():
    """Regression: the PsyClone/omp tracer path must overlap, not force-complete.

    ``omp.barrier`` (a pure counter) and unrelated back-to-back ``dmp.swap``s
    used to complete every pending halo, leaving the overlap inert on
    multi-field kernels.  Swaps whose consumer stores into the swapped buffer
    legitimately stay blocking, so not *every* swap overlaps — but some must.
    """
    program, fields, scalars, function = CASES["traadv-masked"]
    result = _run(
        program, fields(), scalars, function=function, runtime="threads"
    )
    for stats in result.statistics:
        assert stats.halo_swaps > stats.halo_swaps_overlapped > 0


def test_overlap_disabled_is_bit_identical():
    """The blocking discipline (overlap_halos=False) writes the same bytes."""
    program, fields, scalars, function = CASES["heat"]
    overlapped = fields()
    _run(program, overlapped, scalars, function=function)

    blocking = fields()
    size = 4
    world = SimulatedMPI(size, timeout=60.0)
    from repro.core.executor import gather_field, scatter_field
    from repro.transforms.distribute import GridSlicingStrategy

    strategy = GridSlicingStrategy(program.target.rank_grid)
    domain = program.distribution.local_domain
    halo_lower, halo_upper = domain.halo_lower, domain.halo_upper
    local = [
        [
            scatter_field(field, strategy, rank, halo_lower, halo_upper, halo_lower)
            for field in blocking
        ]
        for rank in range(size)
    ]
    kernel = program.compiled_kernel(function)

    def body(comm):
        interpreter = Interpreter(
            program.module, comm=comm, kernel=kernel, overlap_halos=False
        )
        interpreter.call(function, *local[comm.rank], *scalars)
        assert interpreter.stats.halo_swaps_overlapped == 0

    world.run_spmd(body, timeout=60.0)
    for rank in range(size):
        for global_array, local_array in zip(blocking, local[rank]):
            gather_field(
                global_array, local_array, strategy, rank,
                halo_lower, halo_upper, halo_lower,
            )
    for a, b in zip(overlapped, blocking):
        assert np.array_equal(a, b)


def test_overlap_interpreter_backend_still_blocks():
    """The tree walker (backend="interpreter") completes halos before cells."""
    program, fields, scalars, function = CASES["heat"]
    vectorized = fields()
    reference = _run(
        program, vectorized, scalars, function=function, backend="auto"
    )
    walked = fields()
    walked_result = _run(
        program, walked, scalars, function=function, backend="interpreter"
    )
    for a, b in zip(vectorized, walked):
        assert np.array_equal(a, b)
    # The walker never overlaps (it reads cells one by one)...
    assert all(s.halo_swaps_overlapped == 0 for s in walked_result.statistics)
    # ...while the vectorized backend overlaps every swap of this kernel.
    assert all(
        s.halo_swaps_overlapped == s.halo_swaps for s in reference.statistics
    )


# ---------------------------------------------------------------------------
# shared-memory copy elision
# ---------------------------------------------------------------------------

@needs_processes
def test_copy_elision_and_block_reuse():
    program, fields, scalars, function = CASES["heat"]
    shutdown_worker_pool()  # start from an empty block pool
    first = _run(
        program, fields(), scalars, function=function, runtime="processes"
    )
    field_bytes = sum(array.nbytes for array in fields())
    # Two memcpys per field per rank were elided (scatter-in and gather-out
    # staging); the total must cover at least the global payload once.
    assert first.comm_statistics.bytes_elided > field_bytes
    assert first.comm_statistics.shared_blocks_reused == 0

    second = _run(
        program, fields(), scalars, function=function, runtime="processes"
    )
    # 4 ranks x 2 fields: every block of the repeated run is recycled.
    assert second.comm_statistics.shared_blocks_reused == 8
    # The elision fields are runtime metadata: they must not break the
    # thread/process statistics parity contract.
    assert second.comm_statistics == first.comm_statistics


# ---------------------------------------------------------------------------
# thread team mechanics
# ---------------------------------------------------------------------------

def test_split_trip_counts_partitions_exactly():
    for trips in (1, 2, 3, 7, 16, 1000):
        for parts in (1, 2, 3, 8):
            spans = split_trip_counts(trips, parts)
            assert spans[0][0] == 0 and spans[-1][1] == trips
            for (_, end), (start, _) in zip(spans, spans[1:]):
                assert end == start
            assert len(spans) == min(parts, trips)
            sizes = [end - start for start, end in spans]
            assert max(sizes) - min(sizes) <= 1


def test_thread_teams_are_cached_per_size():
    assert get_thread_team(1) is None
    team = get_thread_team(2)
    assert team is not None and team.size == 2
    assert get_thread_team(2) is team
    assert get_thread_team(3) is not team


@needs_processes
def test_teams_survive_fork_into_workers():
    """Regression: a warm parent team must not deadlock forked workers.

    Only the forking thread survives a fork, so a worker inheriting the
    parent's ThreadPoolExecutor would block forever on its first map.  The
    cache is cleared in the child (os.register_at_fork), so the hybrid
    process run below must finish — before the fix it hung until the pool's
    collect deadline.
    """
    shape = (96, 96)  # big enough that the team path engages (>= 4096 cells)
    workload = heat_diffusion(shape, space_order=2, dtype=np.float64)
    module = workload.operator(backend="xdsl").stencil_module(dt=workload.dt)
    program = compile_stencil_program(module, dmp_target((2, 1)))

    def fields():
        base = np.zeros(tuple(s + 2 for s in shape))
        base[48, 48] = 1.0
        return [base.copy(), base.copy()]

    # Warm the parent's 2-thread team first...
    warm = fields()
    _run(program, warm, [2], runtime="threads", threads_per_rank=2)
    # ...then fork workers that need their own 2-thread teams.
    forked = fields()
    result = _run(
        program, forked, [2], runtime="processes", threads_per_rank=2,
        timeout=60.0,
    )
    assert result.runtime == "processes"
    for a, b in zip(warm, forked):
        assert np.array_equal(a, b)


def test_plan_overlap_defers_unrelated_nest():
    """A nest not touching the swapped array leaves its halos in flight."""
    from repro.dialects import arith, builtin, func, memref, scf
    from repro.interp.interpreter import PendingHalo, _HaloReceive
    from repro.interp.vectorize import compile_kernel
    from repro.ir import Builder, FunctionType, MemRefType, f64

    kernel = func.FuncOp(
        "kernel", FunctionType([MemRefType([8, 8], f64), MemRefType([8, 8], f64)], [])
    )
    u, v = kernel.args
    b = Builder.at_end(kernel.body.block)
    zero = b.insert(arith.ConstantOp.from_int(0)).result
    one = b.insert(arith.ConstantOp.from_int(1)).result
    extent = b.insert(arith.ConstantOp.from_int(8)).result
    loop = scf.ParallelOp([zero, zero], [extent, extent], [one, one])
    inner = Builder.at_end(loop.body.block)
    i, j = loop.induction_variables
    value = inner.insert(memref.LoadOp(u, [i, j])).result
    inner.insert(memref.StoreOp(value, v, [i, j]))
    b.insert(loop)
    b.insert(func.ReturnOp([]))
    module = builtin.ModuleOp([kernel])

    compiled = compile_kernel(module, "kernel")
    nest = next(iter(compiled.nests.values()))
    interp = Interpreter(module)
    u_array = np.arange(64, dtype=np.float64).reshape(8, 8)
    v_array = np.zeros((8, 8))
    from repro.interp.values import MemRefValue

    env = {u: MemRefValue(u_array), v: MemRefValue(v_array)}
    dims = nest._concrete_dims(env, nest.bounds)
    resolved = nest._resolve_regions(interp, env, dims)

    box = (slice(0, 1), slice(0, 8))
    unrelated = np.zeros((8, 8))
    halo_unrelated = PendingHalo(
        unrelated, [_HaloReceive(None, None, box, 8, 0)]
    )
    assert nest._plan_overlap(env, dims, resolved, [halo_unrelated]) == "defer"

    # The same box on the *loaded* array constrains the interior instead.
    halo_related = PendingHalo(u_array, [_HaloReceive(None, None, box, 8, 0)])
    plan = nest._plan_overlap(env, dims, resolved, [halo_related])
    assert plan != "defer" and plan is not None
    interior, strips = plan
    assert interior[0] == (1, 8, 1) and len(strips) == 1

    # And a box on the *stored* array is unprovable: blocking fallback.
    halo_store = PendingHalo(v_array, [_HaloReceive(None, None, box, 8, 0)])
    assert nest._plan_overlap(env, dims, resolved, [halo_store]) is None
