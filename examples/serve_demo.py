"""Serving-layer demo: many tenants, one warm session.

Several tenants submit independent heat-diffusion runs to one
:class:`repro.serve.Server`.  The server keeps a single warm
:class:`repro.core.Session` behind a bounded run queue, shares the compiled
plan across every tenant with the same ``(program, config)``, and packs the
concurrent submissions into batched SPMD rounds.  The demo then fills the
queue to show the typed fast-rejecting backpressure, and finishes with the
per-tenant statistics and the server's own metrics.

Run with:  PYTHONPATH=src python examples/serve_demo.py
"""

import numpy as np

from repro.core import ExecutionConfig, compile_stencil_program, dmp_target
from repro.serve import QueueFullError, Server
from repro.workloads import heat_diffusion

SHAPE = (32, 32)
STEPS = 10
TENANTS = ("acoustics", "climate", "optics")
JOBS_PER_TENANT = 4


def build_program():
    """The paper's heat-diffusion workload on a 2x1 decomposition."""
    workload = heat_diffusion(SHAPE, space_order=2, dtype=np.float64)
    module = workload.operator(backend="xdsl").stencil_module(dt=workload.dt)
    return compile_stencil_program(module, dmp_target((2, 1)))


def fresh_fields():
    shape = tuple(n + 2 for n in SHAPE)  # space_order=2 halo margin
    u0 = np.zeros(shape)
    u0[shape[0] // 2 - 2: shape[0] // 2 + 2,
       shape[1] // 2 - 2: shape[1] // 2 + 2] = 1.0
    return [u0, u0.copy()]


def main() -> None:
    program = build_program()
    config = ExecutionConfig(runtime="threads")

    with Server(config, max_batch=8, max_pending=16) as server:
        # --- concurrent multi-tenant load -------------------------------
        handles = [
            (tenant, server.submit(program, fresh_fields(), [STEPS],
                                   tenant=tenant))
            for _ in range(JOBS_PER_TENANT)
            for tenant in TENANTS
        ]
        for tenant, handle in handles:
            result = handle.result(timeout=120.0)
            assert result.runtime == "threads"
        print(f"served {len(handles)} jobs for {len(TENANTS)} tenants")

        # --- backpressure: a full queue rejects fast, with a typed error
        server.drain(timeout=60.0)
        flood = []
        rejected = 0
        try:
            for _ in range(200):
                flood.append(server.submit(program, fresh_fields(), [STEPS]))
        except QueueFullError as error:
            rejected = 1
            print(f"backpressure: {error}")
        for handle in flood:
            handle.result(timeout=120.0)
        assert rejected, "expected the 200-submit flood to hit the queue bound"

        # --- per-tenant statistics + server metrics ---------------------
        print("\nper-tenant statistics:")
        for tenant in TENANTS:
            stats = server.tenant(tenant)
            exec_stats = stats.exec_statistics()
            print(f"  {tenant:<10} runs={stats.runs}  "
                  f"cells={exec_stats.cells_updated}  "
                  f"ops={exec_stats.ops_executed}")

        snapshot = server.metrics.snapshot()
        print("\nserver metrics:")
        for name in sorted(snapshot):
            if name.startswith("serve."):
                print(f"  {name:<28} {snapshot[name]}")


if __name__ == "__main__":
    main()
