"""Parser for the Fortran subset the mini-PSyclone frontend accepts.

PSyclone's real frontend parses full Fortran; the NEMO-API benchmarks used in
the paper are kernels of the shape::

    subroutine pw_advection(u, v, w, su)
      do k = 1, nz
        do j = 1, ny
          do i = 1, nx
            su(i, j, k) = 0.5 * (u(i+1, j, k) - u(i-1, j, k)) + 0.25 * v(i, j, k)
          end do
        end do
      end do
    end subroutine

This parser supports exactly that shape: a subroutine with an argument list,
(nested) ``do`` loops, assignments whose left-hand side is an array element,
and right-hand sides made of array references with ``index +/- constant``
subscripts, scalar references, numeric literals, parentheses and ``+ - * /``.
Masked computations are supported through the ``merge(tsource, fsource,
mask)`` intrinsic, whose mask argument may use the relational operators
``> < >= <= == /=`` — the shape of the NEMO tracer kernels' land/sea masking.
"""

from __future__ import annotations

import re
from typing import Optional

from .psyir import (
    ArrayReference,
    Assignment,
    BinaryOperation,
    Comparison,
    IndexExpression,
    Literal,
    Loop,
    Merge,
    Reference,
    Schedule,
    UnaryOperation,
)


class FortranParseError(Exception):
    """Raised on Fortran text the subset parser does not understand."""


_SUBROUTINE_RE = re.compile(r"^\s*subroutine\s+(\w+)\s*\(([^)]*)\)\s*$", re.IGNORECASE)
_END_SUBROUTINE_RE = re.compile(r"^\s*end\s*subroutine\b.*$", re.IGNORECASE)
_DO_RE = re.compile(r"^\s*do\s+(\w+)\s*=\s*([^,]+),\s*(.+?)\s*$", re.IGNORECASE)
_END_DO_RE = re.compile(r"^\s*end\s*do\s*$", re.IGNORECASE)
_DECLARATION_RE = re.compile(
    r"^\s*(real|integer|implicit|intent|dimension|use|parameter)\b", re.IGNORECASE
)


def parse_fortran(source: str) -> Schedule:
    """Parse one subroutine into a PSy-IR schedule."""
    lines = [_strip_comment(line) for line in source.splitlines()]
    lines = [line for line in lines if line.strip()]
    if not lines:
        raise FortranParseError("empty Fortran source")

    header = _SUBROUTINE_RE.match(lines[0])
    if header is None:
        raise FortranParseError("source must start with 'subroutine name(args)'")
    name = header.group(1)
    arguments = [arg.strip() for arg in header.group(2).split(",") if arg.strip()]
    schedule = Schedule(name=name, arguments=arguments)

    stack: list[list] = [schedule.body]
    for line in lines[1:]:
        if _END_SUBROUTINE_RE.match(line):
            break
        if _DECLARATION_RE.match(line):
            continue
        do_match = _DO_RE.match(line)
        if do_match:
            loop = Loop(
                variable=do_match.group(1),
                start=_parse_scalar_expression(do_match.group(2).strip()),
                stop=_parse_scalar_expression(do_match.group(3).strip()),
            )
            stack[-1].append(loop)
            stack.append(loop.body)
            continue
        if _END_DO_RE.match(line):
            if len(stack) == 1:
                raise FortranParseError("'end do' without a matching 'do'")
            stack.pop()
            continue
        if "=" in line:
            stack[-1].append(_parse_assignment(line))
            continue
        raise FortranParseError(f"cannot parse line: {line.strip()!r}")
    if len(stack) != 1:
        raise FortranParseError("unterminated 'do' loop")
    return schedule


def _strip_comment(line: str) -> str:
    position = line.find("!")
    return line if position < 0 else line[:position]


def _parse_scalar_expression(text: str):
    text = text.strip()
    if re.fullmatch(r"-?\d+", text):
        return Literal(float(text))
    return Reference(text)


def _parse_assignment(line: str) -> Assignment:
    lhs_text, rhs_text = line.split("=", 1)
    lhs = _ExpressionParser(lhs_text.strip()).parse()
    if not isinstance(lhs, ArrayReference):
        raise FortranParseError(
            f"assignment target must be an array element, got {lhs_text.strip()!r}"
        )
    rhs = _ExpressionParser(rhs_text.strip()).parse()
    return Assignment(lhs=lhs, rhs=rhs)


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<number>\d+\.\d*(?:[eE][-+]?\d+)?|\.\d+|\d+(?:[eE][-+]?\d+)?)"
    r"|(?P<name>[A-Za-z_]\w*)"
    r"|(?P<op>\*\*|==|/=|<=|>=|[-+*/(),<>]))"
)

#: Relational operators accepted inside merge() masks, in PSy-IR spelling.
_COMPARISON_OPS = (">", "<", ">=", "<=", "==", "/=")


class _ExpressionParser:
    """Recursive-descent parser for right-hand-side expressions."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = self._tokenize(text)
        self.position = 0

    def _tokenize(self, text: str) -> list[tuple[str, str]]:
        tokens = []
        position = 0
        while position < len(text):
            match = _TOKEN_RE.match(text, position)
            if match is None or match.end() == position:
                raise FortranParseError(f"cannot tokenise expression: {text[position:]!r}")
            if match.group("number") is not None:
                tokens.append(("number", match.group("number")))
            elif match.group("name") is not None:
                tokens.append(("name", match.group("name")))
            else:
                tokens.append(("op", match.group("op")))
            position = match.end()
        return tokens

    def _peek(self) -> Optional[tuple[str, str]]:
        return self.tokens[self.position] if self.position < len(self.tokens) else None

    def _next(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise FortranParseError(f"unexpected end of expression in {self.text!r}")
        self.position += 1
        return token

    def _expect_op(self, op: str) -> None:
        token = self._next()
        if token != ("op", op):
            raise FortranParseError(f"expected {op!r} in {self.text!r}, found {token[1]!r}")

    def parse(self):
        expr = self._parse_additive()
        if self._peek() is not None:
            raise FortranParseError(f"trailing tokens in expression {self.text!r}")
        return expr

    def _parse_comparison(self):
        node = self._parse_additive()
        if self._peek() in tuple(("op", op) for op in _COMPARISON_OPS):
            operator = self._next()[1]
            rhs = self._parse_additive()
            return Comparison(operator, node, rhs)
        return node

    def _parse_additive(self):
        node = self._parse_multiplicative()
        while self._peek() in (("op", "+"), ("op", "-")):
            operator = self._next()[1]
            rhs = self._parse_multiplicative()
            node = BinaryOperation(operator, node, rhs)
        return node

    def _parse_multiplicative(self):
        node = self._parse_unary()
        while self._peek() in (("op", "*"), ("op", "/")):
            operator = self._next()[1]
            rhs = self._parse_unary()
            node = BinaryOperation(operator, node, rhs)
        return node

    def _parse_unary(self):
        if self._peek() == ("op", "-"):
            self._next()
            return UnaryOperation(self._parse_unary())
        if self._peek() == ("op", "+"):
            self._next()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self):
        token = self._next()
        kind, text = token
        if kind == "number":
            return Literal(float(text))
        if kind == "op" and text == "(":
            inner = self._parse_additive()
            self._expect_op(")")
            return inner
        if kind == "name":
            if text.lower() == "merge" and self._peek() == ("op", "("):
                self._next()
                true_value = self._parse_comparison()
                self._expect_op(",")
                false_value = self._parse_comparison()
                self._expect_op(",")
                condition = self._parse_comparison()
                self._expect_op(")")
                return Merge(true_value, false_value, condition)
            if self._peek() == ("op", "("):
                self._next()
                indices = [self._parse_index()]
                while self._peek() == ("op", ","):
                    self._next()
                    indices.append(self._parse_index())
                self._expect_op(")")
                return ArrayReference(text, tuple(indices))
            return Reference(text)
        raise FortranParseError(f"unexpected token {text!r} in {self.text!r}")

    def _parse_index(self) -> IndexExpression:
        token = self._next()
        if token[0] != "name":
            raise FortranParseError(
                f"array subscripts must be 'index +/- constant', found {token[1]!r}"
            )
        variable = token[1]
        offset = 0
        if self._peek() in (("op", "+"), ("op", "-")):
            sign = 1 if self._next()[1] == "+" else -1
            number = self._next()
            if number[0] != "number":
                raise FortranParseError("array subscript offsets must be integer literals")
            offset = sign * int(float(number[1]))
        return IndexExpression(variable, offset)
