"""Integration tests: whole-pipeline correctness across frontends and targets.

These are the reproduction's ground-truth checks: for every frontend and every
target the shared stack supports, the compiled-and-executed result must match
an independently computed reference (numpy, or the single-rank run).
"""

import numpy as np
import pytest

from repro.core import (
    compile_stencil_program,
    cpu_target,
    dmp_target,
    fpga_target,
    gpu_target,
    run_distributed,
    run_local,
    smp_target,
)
from repro.frontends.psyclone import reference_execute
from repro.workloads import heat_diffusion, acoustic_wave, pw_advection, tracer_advection
from tests.conftest import build_jacobi_module, jacobi_reference


class TestJacobiAcrossTargets:
    @pytest.mark.parametrize(
        "target",
        [
            cpu_target(),
            cpu_target(tile_sizes=(3,)),
            smp_target(threads=4, tile_sizes=(4,)),
            gpu_target(),
            fpga_target(),
            fpga_target(optimize=False),
        ],
        ids=["cpu", "cpu-tiled", "smp", "gpu", "fpga", "fpga-initial"],
    )
    def test_single_rank_targets(self, target, jacobi_initial):
        program = compile_stencil_program(build_jacobi_module(), target)
        steps = 3
        a, b = jacobi_initial.copy(), jacobi_initial.copy()
        run_local(program, [a, b, steps])
        latest = a if steps % 2 == 0 else b
        assert np.allclose(latest, jacobi_reference(jacobi_initial, steps))

    @pytest.mark.parametrize("grid", [(2,), (4,)], ids=["2ranks", "4ranks"])
    @pytest.mark.parametrize("library_calls", [False, True], ids=["dmp-level", "mpi-level"])
    def test_distributed_targets(self, grid, library_calls, jacobi_initial):
        program = compile_stencil_program(
            build_jacobi_module(), dmp_target(grid, lower_to_library_calls=library_calls)
        )
        steps = 4
        a, b = jacobi_initial.copy(), jacobi_initial.copy()
        run_distributed(program, [a, b], [steps])
        expected = jacobi_reference(jacobi_initial, steps)
        assert np.allclose(a[1:9], expected[1:9])


class TestDevitoWorkloadsDistributed:
    @pytest.mark.parametrize("space_order", [2, 4])
    def test_heat_2d(self, space_order):
        reference = None
        for target in (None, dmp_target((2, 2))):
            workload = heat_diffusion((16, 16), space_order=space_order, dtype=np.float64)
            workload.initialise(seed=1)
            operator = workload.operator(backend="xdsl", target=target) if target else \
                workload.operator(backend="native")
            operator.apply(time=3, dt=workload.dt)
            data = workload.function.data.copy()
            if reference is None:
                reference = data
            else:
                assert np.allclose(reference, data, atol=1e-12)

    def test_wave_3d(self):
        reference = None
        for target in (None, dmp_target((2, 1, 1))):
            workload = acoustic_wave((8, 8, 8), space_order=2, dtype=np.float64)
            workload.initialise(seed=2)
            operator = workload.operator(backend="xdsl", target=target) if target else \
                workload.operator(backend="native")
            operator.apply(time=2, dt=workload.dt)
            data = workload.function.data.copy()
            if reference is None:
                reference = data
            else:
                assert np.allclose(reference, data, atol=1e-12)


class TestPsycloneWorkloadsEndToEnd:
    def test_pw_advection_through_full_pipeline(self):
        workload = pw_advection(shape=(8, 8, 4), iterations=2)
        schedule = workload.schedule
        module = workload.build_module(dtype=np.float64)
        program = compile_stencil_program(module, cpu_target())
        arrays = workload.arrays(dtype=np.float64, seed=4)
        reference = {name: array.copy() for name, array in arrays.items()}
        ordered = [arrays[name] for name in schedule.array_names()]
        run_local(program, [*ordered, workload.iterations], function=schedule.name)
        reference_execute(schedule, reference, halo=1, iterations=workload.iterations)
        for name in arrays:
            assert np.allclose(arrays[name], reference[name])

    def test_tracer_advection_small(self):
        workload = tracer_advection(shape=(6, 6, 4), iterations=2, computations=6)
        schedule = workload.schedule
        module = workload.build_module(dtype=np.float64)
        program = compile_stencil_program(module, cpu_target())
        arrays = workload.arrays(dtype=np.float64, seed=6)
        reference = {name: array.copy() for name, array in arrays.items()}
        ordered = [arrays[name] for name in schedule.array_names()]
        run_local(program, [*ordered, workload.iterations], function=schedule.name)
        reference_execute(schedule, reference, halo=1, iterations=workload.iterations)
        for name in arrays:
            assert np.allclose(arrays[name], reference[name])


class TestCommunicationAccounting:
    def test_message_counts_match_decomposition(self, jacobi_initial):
        steps = 5
        program = compile_stencil_program(build_jacobi_module(), dmp_target((4,)))
        a, b = jacobi_initial.copy(), jacobi_initial.copy()
        result = run_distributed(program, [a, b], [steps])
        # 4 ranks in a line: 3 internal boundaries, 2 messages per boundary per step.
        assert result.messages_sent == 6 * steps
        assert result.total_halo_swaps == 4 * steps

    def test_halo_exchange_statistics(self, jacobi_initial):
        program = compile_stencil_program(build_jacobi_module(), dmp_target((2,)))
        a, b = jacobi_initial.copy(), jacobi_initial.copy()
        result = run_distributed(program, [a, b], [2])
        exchanged = sum(stat.halo_elements_exchanged for stat in result.statistics)
        # Each step: each of the two ranks receives one halo element.
        assert exchanged == 2 * 2
