"""Tests of decomposition, the global-to-local pass, swap elimination and MPI lowering."""

import numpy as np
import pytest

from repro.dialects import builtin, dmp, func, mpi, stencil
from repro.interp import Interpreter, SimulatedMPI
from repro.transforms.common import canonicalize
from repro.transforms.distribute import (
    DecompositionError,
    GridSlicingStrategy,
    communicated_elements_per_step,
    distribute_stencil,
    eliminate_redundant_swaps,
    lower_dmp_to_mpi,
)
from repro.transforms.mpi import MPICH_DATATYPE_CONSTANTS, datatype_constant_for, lower_mpi_to_func
from repro.transforms.stencil import lower_stencil_to_scf
from repro.ir import f32, f64, i32, i64
from tests.conftest import build_jacobi_module, jacobi_reference


class TestDecompositionStrategy:
    def test_local_domain_shapes(self):
        strategy = GridSlicingStrategy([2, 2])
        domain = strategy.local_domain((8, 8), (1, 1), (1, 1))
        assert domain.core_shape == (4, 4)
        assert domain.buffer_shape == (6, 6)
        assert domain.field_bounds() == stencil.StencilBoundsAttr([-1, -1], [5, 5])
        assert domain.compute_bounds() == stencil.StencilBoundsAttr([0, 0], [4, 4])

    def test_trailing_dimensions_not_decomposed(self):
        strategy = GridSlicingStrategy([4])
        domain = strategy.local_domain((16, 8, 8), (1, 1, 1), (1, 1, 1))
        assert domain.core_shape == (4, 8, 8)

    def test_indivisible_domain_rejected(self):
        with pytest.raises(DecompositionError):
            GridSlicingStrategy([3]).local_domain((8,), (1,), (1,))

    def test_too_many_grid_dims_rejected(self):
        with pytest.raises(DecompositionError):
            GridSlicingStrategy([2, 2, 2]).local_domain((8, 8), (1, 1), (1, 1))

    def test_exchanges_cover_both_directions(self):
        strategy = GridSlicingStrategy([2, 2])
        domain = strategy.local_domain((8, 8), (1, 1), (1, 1))
        exchanges = strategy.exchanges(domain)
        assert len(exchanges) == 4  # two directions per decomposed dimension
        neighbours = {e.neighbor for e in exchanges}
        assert neighbours == {(-1, 0), (1, 0), (0, -1), (0, 1)}
        assert all(e.element_count() == 4 for e in exchanges)

    def test_singleton_grid_dimension_has_no_exchanges(self):
        strategy = GridSlicingStrategy([1, 4])
        domain = strategy.local_domain((8, 8), (1, 1), (1, 1))
        exchanges = strategy.exchanges(domain)
        assert all(e.neighbor[0] == 0 for e in exchanges)
        assert len(exchanges) == 2

    def test_communicated_elements(self):
        strategy = GridSlicingStrategy([2])
        total = communicated_elements_per_step(strategy, (8, 8), (1, 1), (1, 1))
        assert total == 16  # two faces of 8 elements each

    def test_global_slab(self):
        strategy = GridSlicingStrategy([2, 2])
        assert strategy.global_slab((8, 8), 0) == ((0, 0), (4, 4))
        assert strategy.global_slab((8, 8), 3) == ((4, 4), (8, 8))


class TestDistributePass:
    def test_field_types_and_store_bounds_localised(self):
        module = build_jacobi_module(n=8)
        summary = distribute_stencil(module, GridSlicingStrategy([2]))
        assert summary.global_shape == (8,)
        assert summary.local_domain.core_shape == (4,)
        assert summary.swaps_inserted == 1
        kernel = next(op for op in module.walk() if isinstance(op, func.FuncOp))
        field_type = kernel.function_type.inputs[0]
        assert field_type.bounds == stencil.StencilBoundsAttr([-1], [5])
        store = next(op for op in module.walk() if isinstance(op, stencil.StoreOp))
        assert store.bounds == stencil.StencilBoundsAttr([0], [4])

    def test_swap_inserted_before_each_load(self):
        module = build_jacobi_module()
        distribute_stencil(module, GridSlicingStrategy([2]))
        swaps = [op for op in module.walk() if isinstance(op, dmp.SwapOp)]
        loads = [op for op in module.walk() if isinstance(op, stencil.LoadOp)]
        assert len(swaps) == len(loads) == 1
        assert swaps[0].grid == dmp.GridAttr([2])

    def test_redundant_swaps_eliminated(self):
        module = build_jacobi_module()
        distribute_stencil(module, GridSlicingStrategy([2]))
        # Duplicate every swap to simulate conservative insertion.
        for swap in [op for op in module.walk() if isinstance(op, dmp.SwapOp)]:
            block = swap.parent_block
            clone = swap.clone()
            block.insert_op_after(clone, swap)
        assert eliminate_redundant_swaps(module) == 1
        assert len([op for op in module.walk() if isinstance(op, dmp.SwapOp)]) == 1

    def test_module_without_stencils_rejected(self):
        module = builtin.ModuleOp([])
        with pytest.raises(DecompositionError):
            distribute_stencil(module, GridSlicingStrategy([2]))


class TestDmpToMPI:
    def lowered_module(self):
        module = build_jacobi_module()
        distribute_stencil(module, GridSlicingStrategy([2]))
        lower_stencil_to_scf(module)
        lower_dmp_to_mpi(module)
        module.verify()
        return module

    def test_lowering_structure(self):
        module = self.lowered_module()
        names = [op.name for op in module.walk()]
        assert "dmp.swap" not in names
        assert names.count("mpi.isend") == 2
        assert names.count("mpi.irecv") == 2
        assert names.count("mpi.waitall") == 1
        assert "mpi.comm_rank" in names
        # Out-of-grid neighbours fall back to null requests in the else branch.
        assert "mpi.set_null_request" in names

    def test_distributed_execution_matches_reference(self, jacobi_initial):
        module = self.lowered_module()
        canonicalize(module)
        steps = 3
        world = SimulatedMPI(2)
        expected = jacobi_reference(jacobi_initial, steps)
        locals_a = [jacobi_initial[0:6].copy(), jacobi_initial[4:10].copy()]
        locals_b = [arr.copy() for arr in locals_a]

        def body(comm):
            Interpreter(module, comm=comm).call(
                "kernel", locals_a[comm.rank], locals_b[comm.rank], steps
            )

        world.run_spmd(body)
        gathered = jacobi_initial.copy()
        for rank in range(2):
            source = locals_a[rank] if steps % 2 == 0 else locals_b[rank]
            gathered[1 + rank * 4 : 1 + rank * 4 + 4] = source[1:5]
        assert np.allclose(gathered, expected)
        assert world.statistics.messages_sent == 2 * steps


class TestMPIToFunc:
    def test_magic_constants(self):
        assert datatype_constant_for(f32) == MPICH_DATATYPE_CONSTANTS["f32"]
        assert datatype_constant_for(f64) == MPICH_DATATYPE_CONSTANTS["f64"]
        assert datatype_constant_for(i32) == MPICH_DATATYPE_CONSTANTS["i32"]
        assert datatype_constant_for(i64) == MPICH_DATATYPE_CONSTANTS["i64"]
        with pytest.raises(ValueError):
            datatype_constant_for(object())

    def test_mpi_ops_become_library_calls(self):
        module = build_jacobi_module()
        distribute_stencil(module, GridSlicingStrategy([2]))
        lower_stencil_to_scf(module)
        lower_dmp_to_mpi(module)
        lower_mpi_to_func(module)
        module.verify()
        names = [op.name for op in module.walk()]
        assert not any(
            name.startswith("mpi.") and name not in (
                "mpi.allocate_requests", "mpi.get_request", "mpi.set_null_request"
            )
            for name in names
        )
        callees = {op.callee for op in module.walk() if isinstance(op, func.CallOp)}
        assert {"MPI_Comm_rank", "MPI_Isend", "MPI_Irecv", "MPI_Waitall"} <= callees
        declarations = {
            op.sym_name
            for op in module.walk()
            if isinstance(op, func.FuncOp) and op.is_declaration
        }
        assert "MPI_Isend" in declarations

    def test_library_call_execution_matches_reference(self, jacobi_initial):
        module = build_jacobi_module()
        distribute_stencil(module, GridSlicingStrategy([2]))
        lower_stencil_to_scf(module)
        lower_dmp_to_mpi(module)
        lower_mpi_to_func(module)
        canonicalize(module)
        steps = 2
        world = SimulatedMPI(2)
        locals_a = [jacobi_initial[0:6].copy(), jacobi_initial[4:10].copy()]
        locals_b = [arr.copy() for arr in locals_a]

        def body(comm):
            Interpreter(module, comm=comm).call(
                "kernel", locals_a[comm.rank], locals_b[comm.rank], steps
            )

        world.run_spmd(body)
        expected = jacobi_reference(jacobi_initial, steps)
        gathered = jacobi_initial.copy()
        for rank in range(2):
            source = locals_a[rank] if steps % 2 == 0 else locals_b[rank]
            gathered[1 + rank * 4 : 1 + rank * 4 + 4] = source[1:5]
        assert np.allclose(gathered, expected)
