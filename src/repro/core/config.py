"""The one execution-configuration object shared by every frontend.

Execution used to be configured through kwarg soup repeated on every call
(``run_distributed(backend=..., runtime=..., threads_per_rank=..., margin=...,
timeout=...)``), validated — or silently not — at different depths of the
stack.  :class:`ExecutionConfig` replaces that: one frozen dataclass, fully
validated at construction, accepted by :class:`~repro.core.session.Session`,
:class:`~repro.core.session.Plan`, and every frontend (the Devito
``Operator``, the PsyClone backend, the OEC builder).  Because validation
happens exactly once, the per-run hot path never re-checks anything.

This module sits at the bottom of the ``repro.core`` layering and imports
nothing from the rest of the package.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace
from typing import Optional, Sequence


class ExecutionError(Exception):
    """Raised when a compiled program cannot be executed."""


class RuntimeFallbackWarning(RuntimeWarning):
    """A requested execution runtime was unavailable and a fallback ran.

    Emitted when ``runtime="processes"`` degrades to ``"threads"`` (shared
    memory unavailable on the platform).  The run still produces bit-identical
    results, but without multi-core scaling — callers that care can compare
    ``ExecutionResult.runtime_requested`` against ``.runtime``.
    """


#: Valid values of :attr:`ExecutionConfig.backend`:
#:
#: * ``"auto"`` (default) — vectorize every loop nest that can be proven
#:   vectorizable (including the min-clamped *tiled* stencil_to_scf output,
#:   ``scf.reduce`` reductions and ``arith.select`` mask chains), tree-walk
#:   the rest (always safe, usually fastest);
#: * ``"vectorized"`` — like auto, but raise when *nothing* in the function
#:   could be vectorized (benchmarks use this to avoid silently measuring the
#:   tree walker);
#: * ``"interpreter"`` — force the per-cell tree walker everywhere (the
#:   reference semantics).
EXECUTION_BACKENDS = ("auto", "interpreter", "vectorized")

#: Valid values of :attr:`ExecutionConfig.runtime`:
#:
#: * ``"threads"`` (default) — every rank runs in a Python thread of this
#:   process against one shared :class:`~repro.interp.SimulatedMPI` world
#:   (cheap, always available, serialized by the GIL outside NumPy);
#: * ``"processes"`` — every rank runs in its own OS process from the
#:   session's persistent worker pool, with shared-memory field buffers and
#:   queue-backed messaging (real multi-core scaling).  Falls back to
#:   ``"threads"`` — with a :class:`RuntimeFallbackWarning` — when shared
#:   memory is unavailable.
EXECUTION_RUNTIMES = ("threads", "processes")

#: Valid values of :attr:`ExecutionConfig.codegen`:
#:
#: * ``"auto"`` (default) — plans whose traced time loop fits the megakernel
#:   shape run the generated fused function; anything untraceable silently
#:   keeps the planned-op path with the reason recorded on
#:   ``Plan.codegen_fallback``;
#: * ``"megakernel"`` — force the generated path and raise
#:   :class:`ExecutionError` (with the tracer's reason) when it cannot be
#:   built (benchmarks use this to avoid silently measuring dispatch);
#: * ``"planned"`` — never generate code; always walk the ``PlannedOp`` list.
EXECUTION_CODEGEN = ("auto", "megakernel", "planned")

#: Valid values of :attr:`ExecutionConfig.trace`:
#:
#: * ``"off"`` — no tracing; the hot paths stay statement-identical to the
#:   untraced build (megakernels are emitted without any span bookkeeping);
#: * ``"summary"`` — per-span-name totals only (counts + seconds), bounded
#:   memory regardless of run length;
#: * ``"timeline"`` — additionally record every span into a bounded ring
#:   buffer per track, exportable as Chrome trace-event JSON via
#:   ``Session.dump_trace(path)`` / ``ExecutionResult.trace``.
#:
#: The default (``None``) resolves from the ``REPRO_TRACE`` environment
#: variable, falling back to ``"off"``.
EXECUTION_TRACE = ("off", "summary", "timeline")


@dataclass(frozen=True)
class ExecutionConfig:
    """Everything that shapes one execution, validated once at construction.

    The same object configures local and distributed runs; fields that do not
    apply (e.g. ``runtime`` for a non-distributed program) are simply ignored
    by the plan.
    """

    #: Execution engine for each rank's loop nests (:data:`EXECUTION_BACKENDS`).
    backend: str = "auto"
    #: Where distributed ranks run (:data:`EXECUTION_RUNTIMES`).
    runtime: str = "threads"
    #: Whether plans compile their time loop to a megakernel
    #: (:data:`EXECUTION_CODEGEN`).
    codegen: str = "auto"
    #: Expected number of distributed ranks; ``None`` derives it from the
    #: program's target.  Used by :meth:`Session.warmup` to pre-spawn workers
    #: and validated against the target's rank grid at plan time.
    ranks: Optional[int] = None
    #: Intra-rank thread-team size (the OpenMP level of the paper's hybrid
    #: MPI+OpenMP configurations; 1 = flat runs).
    threads_per_rank: int = 1
    #: Defer halo-receive completion past independent interior compute.
    #: ``None`` (default) resolves to True wherever the vectorized backend can
    #: prove it safe; an explicit ``True`` conflicts with
    #: ``backend="interpreter"`` (the tree walker reads cells one by one and
    #: can never overlap), which is rejected here rather than silently ignored.
    overlap_halos: Optional[bool] = None
    #: Ghost/boundary cells the *global* arrays carry in front of compute
    #: index 0 along each dimension; ``None`` uses the decomposition's halo.
    margin: Optional[tuple[int, ...]] = None
    #: Per-run communication deadline in seconds.
    timeout: float = 60.0
    #: Pre-spawn runtime resources (worker processes, thread teams) when the
    #: session is entered as a context manager, so the first ``plan.run()``
    #: pays no spawn latency.
    warm_start: bool = False
    #: Observability mode (:data:`EXECUTION_TRACE`); ``None`` resolves from
    #: the ``REPRO_TRACE`` environment variable (default ``"off"``).
    trace: Optional[str] = None

    def __post_init__(self) -> None:
        if self.trace is None:
            resolved = os.environ.get("REPRO_TRACE", "").strip() or "off"
            object.__setattr__(self, "trace", resolved)
        if self.trace not in EXECUTION_TRACE:
            raise ExecutionError(
                f"unknown trace mode {self.trace!r}; expected one of "
                f"{', '.join(EXECUTION_TRACE)} (or unset REPRO_TRACE)"
            )
        if self.backend not in EXECUTION_BACKENDS:
            raise ExecutionError(
                f"unknown execution backend {self.backend!r}; expected one of "
                f"{', '.join(EXECUTION_BACKENDS)}"
            )
        if self.runtime not in EXECUTION_RUNTIMES:
            raise ExecutionError(
                f"unknown execution runtime {self.runtime!r}; expected one of "
                f"{', '.join(EXECUTION_RUNTIMES)}"
            )
        if self.codegen not in EXECUTION_CODEGEN:
            raise ExecutionError(
                f"unknown codegen mode {self.codegen!r}; expected one of "
                f"{', '.join(EXECUTION_CODEGEN)}"
            )
        if self.codegen == "megakernel" and self.backend == "interpreter":
            raise ExecutionError(
                "codegen='megakernel' conflicts with backend='interpreter': "
                "megakernels are emitted from compiled vectorized nests, "
                "which the tree walker never builds"
            )
        if not isinstance(self.threads_per_rank, int) or self.threads_per_rank < 1:
            raise ExecutionError("threads_per_rank must be an integer >= 1")
        if self.ranks is not None and (
            not isinstance(self.ranks, int) or self.ranks < 1
        ):
            raise ExecutionError("ranks must be an integer >= 1 (or None)")
        if not isinstance(self.timeout, (int, float)) or self.timeout <= 0:
            raise ExecutionError("timeout must be a positive number of seconds")
        if self.overlap_halos not in (None, True, False):
            raise ExecutionError("overlap_halos must be True, False or None (auto)")
        if self.overlap_halos is True and self.backend == "interpreter":
            raise ExecutionError(
                "overlap_halos=True conflicts with backend='interpreter': the "
                "tree walker reads cells one by one and can never overlap "
                "halo exchanges with compute"
            )
        if self.margin is not None:
            margin = tuple(int(m) for m in self.margin)
            if any(m < 0 for m in margin):
                raise ExecutionError("margin entries must be non-negative")
            object.__setattr__(self, "margin", margin)

    def replace(self, **changes) -> "ExecutionConfig":
        """A copy with ``changes`` applied (re-validated, unknown keys rejected)."""
        known = {f.name for f in fields(self)}
        unknown = set(changes) - known
        if unknown:
            raise ExecutionError(
                f"unknown ExecutionConfig field(s): {', '.join(sorted(unknown))}"
            )
        return replace(self, **changes)

    def plan_key(self) -> tuple:
        """The hashable identity of this config *as seen by a Plan*.

        Two configs with the same plan key produce behaviourally identical
        plans for the same program, so cross-tenant plan caches (the
        :mod:`repro.serve` layer) may share one compiled plan between them.
        Session-level knobs that never reach the plan are excluded:
        ``warm_start`` only controls context-manager pre-spawning.
        """
        return tuple(
            getattr(self, f.name) for f in fields(self) if f.name != "warm_start"
        )

    def resolved_overlap(self) -> bool:
        """The effective overlap flag (auto = on unless the tree walker runs)."""
        if self.overlap_halos is None:
            return self.backend != "interpreter"
        return self.overlap_halos

    @staticmethod
    def coerce(
        config: Optional["ExecutionConfig"] = None, **overrides
    ) -> "ExecutionConfig":
        """``config`` (or the defaults) with non-None ``overrides`` applied."""
        base = config if config is not None else ExecutionConfig()
        overrides = {k: v for k, v in overrides.items() if v is not None}
        return base.replace(**overrides) if overrides else base


def normalize_margin(
    margin: Optional[Sequence[int]], default: Sequence[int]
) -> tuple[int, ...]:
    """Resolve a config margin against the decomposition's halo default."""
    if margin is None:
        return tuple(int(m) for m in default)
    return tuple(int(m) for m in margin)
