"""Pytest configuration for the benchmark harness."""

import os
import sys

# Make bench_helpers and the tests package importable regardless of the
# directory pytest is invoked from.
sys.path.insert(0, os.path.dirname(__file__))
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
