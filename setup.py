"""Setuptools entry point.

The pyproject.toml metadata is authoritative; this file exists so that
``pip install -e .`` works in offline environments that lack the ``wheel``
package needed by PEP 517 editable installs.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of 'A shared compilation stack for distributed-memory "
        "parallelism in stencil DSLs' (ASPLOS 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
