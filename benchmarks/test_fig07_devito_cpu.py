"""Figure 7: Devito vs xDSL-Devito heat/wave kernels on one ARCHER2 node.

Regenerates both panels (7a heat, 7b acoustic wave) for 2D/3D and space orders
2/4/8, and additionally times a small real execution of the heat kernel
through the shared stack so the benchmark exercises compilation + execution,
not only the analytic model.
"""

import numpy as np
import pytest

from bench_helpers import attach_rows
from repro.evaluation import figure7_devito_cpu
from repro.workloads import heat_diffusion


@pytest.mark.benchmark(group="figure7")
def test_figure7_heat_rows(benchmark):
    rows = benchmark(figure7_devito_cpu, ("heat",))
    attach_rows(benchmark, "figure7a", rows)
    by_kernel = {r["kernel"]: r["speedup_xdsl_over_devito"] for r in rows}
    assert by_kernel["heat2d-5pt"] > 1.0
    assert by_kernel["heat3d-13pt"] < 1.0


@pytest.mark.benchmark(group="figure7")
def test_figure7_wave_rows(benchmark):
    rows = benchmark(figure7_devito_cpu, ("wave",))
    attach_rows(benchmark, "figure7b", rows)
    assert any(r["speedup_xdsl_over_devito"] > 1.0 for r in rows)
    assert any(r["speedup_xdsl_over_devito"] < 1.0 for r in rows)


@pytest.mark.benchmark(group="figure7-execution")
@pytest.mark.parametrize("space_order", [2, 4, 8])
def test_heat2d_shared_stack_execution(benchmark, space_order):
    """Compile + execute a small heat kernel through the shared stack."""

    def run():
        workload = heat_diffusion((24, 24), space_order=space_order, dtype=np.float64)
        workload.initialise()
        workload.operator(backend="xdsl").apply(time=2, dt=workload.dt)
        return workload.function.data

    data = benchmark(run)
    assert np.isfinite(data).all()
