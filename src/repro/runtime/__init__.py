"""Process-based SPMD runtime: true multi-core execution of the MPI world.

The thread world (:class:`repro.interp.SimulatedMPI`) is concurrency-correct
but serialized by the GIL outside NumPy; this package runs every rank in its
own OS process so the paper's strong-scaling shape (figs. 8 and 11) is
measurable in wall-clock time rather than only modeled:

* :mod:`repro.runtime.mp_world` — shared-memory field buffers, the queue
  mailbox transport, and :class:`ProcessRankCommunicator`, which implements
  the same :class:`~repro.interp.mpi_runtime.CommunicatorBase` interface (and
  therefore the same collective algorithms and tag discipline) as the thread
  world;
* :mod:`repro.runtime.worker_pool` — a persistent worker pool: programs are
  compiled once in the parent, shipped once per worker, and cached worker-side
  so repeated runs amortize all startup;
* :mod:`repro.runtime.stats` — picklable per-rank statistics merged
  deterministically in the parent.

Select it with ``run_distributed(..., runtime="processes")``; results are
bit-identical to ``runtime="threads"`` and the executor falls back to threads
automatically when shared memory is unavailable.
"""

from .mp_world import (
    MPRequest,
    ProcessRankCommunicator,
    SharedField,
    SharedFieldSpec,
    default_context,
    processes_available,
)
from .shared_pool import (
    LeasedField,
    SharedFieldPool,
    shared_field_pool,
)
from .stats import (
    RankStats,
    combine_exec_statistics,
    merge_comm_statistics,
    sort_rank_stats,
)
from .worker_pool import (
    PoolManager,
    WorkerError,
    WorkerFailure,
    WorkerPool,
    default_pool_manager,
    get_worker_pool,
    run_program_processes,
    run_spmd_processes,
    shutdown_worker_pool,
)

__all__ = [
    "ProcessRankCommunicator", "MPRequest",
    "SharedField", "SharedFieldSpec",
    "processes_available", "default_context",
    "WorkerPool", "WorkerError", "WorkerFailure", "PoolManager",
    "get_worker_pool", "shutdown_worker_pool", "default_pool_manager",
    "run_program_processes", "run_spmd_processes",
    "RankStats", "merge_comm_statistics", "combine_exec_statistics",
    "sort_rank_stats",
    "LeasedField", "SharedFieldPool", "shared_field_pool",
]
