"""Core builtin types used as SSA value types.

These mirror the MLIR builtin types our dialects need: integers, floats,
index, function types, and shaped memref types.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .attributes import Attribute, TypeAttribute

#: Sentinel used in shaped types for a dynamically sized dimension.
DYNAMIC = -1


class IntegerType(TypeAttribute):
    """An integer type of a given bit width (i1, i32, i64, ...)."""

    name = "builtin.integer_type"

    __slots__ = ("width",)

    def __init__(self, width: int):
        self.width = int(width)

    def parameters(self) -> tuple:
        return (self.width,)

    def __str__(self) -> str:
        return f"i{self.width}"


class IndexType(TypeAttribute):
    """The platform-sized index type used for loop bounds and memory indexing."""

    name = "builtin.index_type"

    def parameters(self) -> tuple:
        return ()

    def __str__(self) -> str:
        return "index"


class _FloatType(TypeAttribute):
    """Base class for floating point types."""

    width: int = 0

    def parameters(self) -> tuple:
        return (self.width,)

    def __str__(self) -> str:
        return f"f{self.width}"


class Float16Type(_FloatType):
    name = "builtin.f16"
    width = 16


class Float32Type(_FloatType):
    name = "builtin.f32"
    width = 32


class Float64Type(_FloatType):
    name = "builtin.f64"
    width = 64


class NoneType(TypeAttribute):
    """A unit type carrying no information."""

    name = "builtin.none_type"

    def parameters(self) -> tuple:
        return ()

    def __str__(self) -> str:
        return "none"


class FunctionType(TypeAttribute):
    """The type of a function: input types -> result types."""

    name = "builtin.function_type"

    __slots__ = ("inputs", "outputs")

    def __init__(self, inputs: Iterable[TypeAttribute], outputs: Iterable[TypeAttribute]):
        self.inputs: tuple[TypeAttribute, ...] = tuple(inputs)
        self.outputs: tuple[TypeAttribute, ...] = tuple(outputs)

    def parameters(self) -> tuple:
        return (self.inputs, self.outputs)

    def __str__(self) -> str:
        ins = ", ".join(str(t) for t in self.inputs)
        outs = ", ".join(str(t) for t in self.outputs)
        return f"({ins}) -> ({outs})"


class ShapedType(TypeAttribute):
    """Base class for types with a static shape and an element type."""

    __slots__ = ("shape", "element_type")

    def __init__(self, shape: Sequence[int], element_type: TypeAttribute):
        self.shape: tuple[int, ...] = tuple(int(s) for s in shape)
        self.element_type = element_type

    def parameters(self) -> tuple:
        return (self.shape, self.element_type)

    @property
    def rank(self) -> int:
        return len(self.shape)

    def element_count(self) -> int:
        count = 1
        for dim in self.shape:
            if dim == DYNAMIC:
                raise ValueError("cannot count elements of a dynamically shaped type")
            count *= dim
        return count

    def has_static_shape(self) -> bool:
        return all(dim != DYNAMIC for dim in self.shape)


class MemRefType(ShapedType):
    """A reference to a (row-major) memory buffer of a given shape."""

    name = "builtin.memref"

    def __str__(self) -> str:
        dims = "x".join("?" if d == DYNAMIC else str(d) for d in self.shape)
        sep = "x" if self.shape else ""
        return f"memref<{dims}{sep}{self.element_type}>"


class TensorType(ShapedType):
    """An immutable value-semantics tensor type."""

    name = "builtin.tensor"

    def __str__(self) -> str:
        dims = "x".join("?" if d == DYNAMIC else str(d) for d in self.shape)
        sep = "x" if self.shape else ""
        return f"tensor<{dims}{sep}{self.element_type}>"


class VectorType(ShapedType):
    """A fixed-size vector type (used by the vectorisation cost model)."""

    name = "builtin.vector"

    def __str__(self) -> str:
        dims = "x".join(str(d) for d in self.shape)
        sep = "x" if self.shape else ""
        return f"vector<{dims}{sep}{self.element_type}>"


# Commonly used singletons.  Types are compared structurally, so reusing these
# instances is purely a convenience.
i1 = IntegerType(1)
i32 = IntegerType(32)
i64 = IntegerType(64)
f16 = Float16Type()
f32 = Float32Type()
f64 = Float64Type()
index = IndexType()
none = NoneType()


def bitwidth_of(type_: Attribute) -> int:
    """Return the bit width of a scalar integer/float/index type."""
    if isinstance(type_, IntegerType):
        return type_.width
    if isinstance(type_, _FloatType):
        return type_.width
    if isinstance(type_, IndexType):
        return 64
    raise TypeError(f"type {type_} has no bit width")


def bytewidth_of(type_: Attribute) -> int:
    """Return the byte width of a scalar type (rounded up)."""
    return (bitwidth_of(type_) + 7) // 8


def is_float_type(type_: Attribute) -> bool:
    return isinstance(type_, _FloatType)


def is_integer_like(type_: Attribute) -> bool:
    return isinstance(type_, (IntegerType, IndexType))
