"""Execution substrate: the IR interpreter and the simulated MPI runtime."""

from .interpreter import (
    ExecStatistics,
    Interpreter,
    InterpreterError,
    RequestArray,
    RequestRef,
    run_function,
)
from .mpi_runtime import (
    CommStatistics,
    MPIRuntimeError,
    RankCommunicator,
    SimRequest,
    SimulatedMPI,
)
from .values import DataTypeValue, MemRefValue, PointerValue, RequestHandle, numpy_dtype_for

__all__ = [
    "Interpreter", "InterpreterError", "ExecStatistics", "run_function",
    "RequestArray", "RequestRef",
    "SimulatedMPI", "RankCommunicator", "SimRequest", "MPIRuntimeError",
    "CommStatistics",
    "MemRefValue", "PointerValue", "RequestHandle", "DataTypeValue",
    "numpy_dtype_for",
]
