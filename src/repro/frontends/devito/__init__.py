"""A miniature Devito: symbolic finite-difference DSL on the shared stack."""

from .operator import Operator, OperatorError
from .symbolic import (
    Access,
    BinOp,
    Constant,
    Dimension,
    Eq,
    Expr,
    Function,
    Grid,
    Scalar,
    SolveError,
    Symbol,
    TimeFunction,
    central_difference_coefficients,
    solve,
)

__all__ = [
    "Grid", "Dimension", "Function", "TimeFunction", "Constant",
    "Expr", "Scalar", "Symbol", "Access", "BinOp", "Eq", "solve", "SolveError",
    "central_difference_coefficients",
    "Operator", "OperatorError",
]
