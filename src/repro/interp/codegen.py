"""Megakernel code generation: trace the time loop once, emit one function.

Even with vectorized nests and pre-resolved block plans, every timestep of a
``Plan.run()`` still walks a ``PlannedOp`` list: per-op dispatch, pending-halo
checks, environment dict traffic.  On small grids with many timesteps that
dispatch — not the NumPy work — dominates.  This module erases it: the
program's time loop is *traced* once (:func:`trace_program`) and *emitted*
(:func:`emit_megakernel`) as a single straight-line Python function — fused
whole-array NumPy statements for every compiled nest, ``dmp.swap``
isend/irecv posts, interior-box execution and halo completion points inlined
at fixed program points — compiled with :func:`compile` and executed directly.

The discipline mirrors the interpreter exactly:

* statement emission reuses :mod:`repro.interp.vectorize`'s expression
  templates and the *real* ``CompiledNest`` geometry machinery
  (``_resolve_regions`` / ``_plan_overlap`` / ``_aliasing_is_safe``), replayed
  at emit time against the concrete buffers, so the generated slices and the
  overlap decisions are the ones the dynamic path would have made;
* swap geometry comes from :func:`repro.interp.interpreter.swap_message_plan`,
  the same per-(op, rank) plan the swap handler executes;
* every statistics counter is *statically hoisted*: the emitted function adds
  ``pre + trips * per_iteration`` to each field up front, reproducing the
  planned-op path's counts bit-for-bit.

Anything the tracer cannot prove — data-dependent control flow, runtime-
dependent nest geometry, reductions, aliased buffers, untraceable ops — is
rejected with a :class:`CodegenError` carrying an explicit reason string; the
caller then records a :class:`CodegenFallback` and keeps the ``PlannedOp``
path, exactly like :class:`~repro.interp.vectorize.VectorizeFallback` does per
nest.

Set ``REPRO_DUMP_MEGAKERNEL=1`` to dump every generated source to stderr.
"""

from __future__ import annotations

import hashlib
import os
import sys
from typing import Any, Optional

import numpy as np

from ..dialects import arith, dmp, omp, scf
from ..ir.attributes import FloatAttr, IntegerAttr
from ..ir.core import Operation, SSAValue
from ..ir.types import IntegerType
from .interpreter import swap_message_plan
from .vectorize import (
    CompiledKernel,
    CompiledNest,
    _Bailout,
    binary_expression,
    unary_expression,
    widen_expression,
)


class CodegenError(Exception):
    """A program (or one plan of it) cannot be megakernel-compiled.

    The message is the fallback reason surfaced to users; it must say *what*
    the tracer could not prove, not where it gave up.
    """


class CodegenFallback:
    """Why a plan bounced to the planned-op path (mirrors VectorizeFallback)."""

    __slots__ = ("function_name", "reason")

    def __init__(self, function_name: str, reason: str):
        self.function_name = function_name
        self.reason = reason

    def __str__(self) -> str:
        return f"{self.function_name}: {self.reason}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CodegenFallback({self.function_name!r}, {self.reason!r})"


_CAST_OPS = ("builtin.unrealized_conversion_cast", "memref.cast")

#: Symbolic values of the tracer:
#:   ("arg", i)    — function block argument i (constant across iterations)
#:   ("const", x)  — compile-time literal
#:   ("slot", k)   — loop-carried value k of the time loop (rotates per step)
#:   ("iv",)       — the time-loop induction variable
_Sym = tuple


class _LoopInfo:
    """The traced time loop: bounds, carried-slot initialization, rotation."""

    __slots__ = ("op", "lower", "upper", "step", "init_args", "perm")

    def __init__(self, op, lower: _Sym, upper: _Sym, step: int,
                 init_args: list[int], perm: list[int]):
        self.op = op
        self.lower = lower
        self.upper = upper
        self.step = step
        #: ``init_args[k]`` = the function-argument index slot ``k`` starts as.
        self.init_args = init_args
        #: ``perm[j]`` = the slot whose value becomes slot ``j`` next step.
        self.perm = perm


class MegakernelTrace:
    """One traced program: steps of the loop body plus hoisted statistics.

    ``steps`` holds ``("swap", op, src_sym, ordinal)`` and
    ``("nest", op, nest, base_syms)`` records in program order; the in-flight
    halo bookkeeping (prefix completion before a swap of the same buffer,
    overlap decisions at each nest) is replayed by the emitter against the
    concrete buffers, where the geometry is known.
    """

    __slots__ = ("function_name", "func_op", "loop", "steps", "sym", "overlap",
                 "arg_count", "pre_ops", "iter_ops", "iter_omp_regions",
                 "iter_omp_barriers", "iter_kernel_launches", "iter_halo_swaps")

    def __init__(self, function_name: str, func_op, loop, steps, sym,
                 overlap: bool, arg_count: int, pre_ops: int, iter_ops: int,
                 iter_omp_regions: int, iter_omp_barriers: int,
                 iter_kernel_launches: int, iter_halo_swaps: int):
        self.function_name = function_name
        self.func_op = func_op
        self.loop = loop
        self.steps = steps
        self.sym = sym
        self.overlap = overlap
        self.arg_count = arg_count
        self.pre_ops = pre_ops
        self.iter_ops = iter_ops
        self.iter_omp_regions = iter_omp_regions
        self.iter_omp_barriers = iter_omp_barriers
        self.iter_kernel_launches = iter_kernel_launches
        self.iter_halo_swaps = iter_halo_swaps


def trace_program(func_op, kernel: CompiledKernel, *,
                  overlap: bool = True) -> MegakernelTrace:
    """Trace one function into a :class:`MegakernelTrace`.

    Raises :class:`CodegenError` (with the fallback reason) when the function
    does not fit the megakernel shape: an optional constant/cast preamble, at
    most one loop-carried ``scf.for`` time loop whose body consists solely of
    halo swaps, OpenMP structure and compiled vectorizable nests, and a bare
    ``func.return``.
    """
    return _Tracer(func_op, kernel, overlap).trace()


class _Tracer:
    def __init__(self, func_op, kernel: CompiledKernel, overlap: bool):
        self.func_op = func_op
        self.kernel = kernel
        self.overlap = overlap
        self.sym: dict[SSAValue, _Sym] = {}
        self.steps: list[tuple] = []
        self.iter_ops = 0
        self.iter_omp_regions = 0
        self.iter_omp_barriers = 0
        self.iter_kernel_launches = 0
        self.iter_halo_swaps = 0

    def trace(self) -> MegakernelTrace:
        block = self.func_op.body.block
        for index, block_arg in enumerate(block.args):
            self.sym[block_arg] = ("arg", index)
        ops = list(block.ops)
        if not ops:
            raise CodegenError("the function body is empty")

        loop_index: Optional[int] = None
        for index, op in enumerate(ops):
            if isinstance(op, scf.ForOp) and op.iter_args:
                loop_index = index
                break

        if loop_index is None:
            # No time loop: the whole body is one straight-line segment.
            terminator = ops[-1]
            self._require_bare_return(terminator)
            loop = None
            pre_ops = 1  # the func.return
            self._trace_segment(ops[:-1])
        else:
            for op in ops[:loop_index]:
                self._trace_preamble_op(op)
            loop_op = ops[loop_index]
            remainder = ops[loop_index + 1 :]
            if len(remainder) != 1:
                raise CodegenError(
                    "operations after the time loop cannot be megakernel-"
                    "compiled"
                )
            self._require_bare_return(remainder[0])
            for result in loop_op.results:
                if result.uses:
                    raise CodegenError(
                        "the time loop's results are used after the loop"
                    )
            loop = self._trace_loop(loop_op)
            pre_ops = loop_index + 2  # preamble + scf.for + func.return

        return MegakernelTrace(
            self.func_op.sym_name, self.func_op, loop, self.steps, self.sym,
            self.overlap, len(block.args), pre_ops, self.iter_ops,
            self.iter_omp_regions, self.iter_omp_barriers,
            self.iter_kernel_launches, self.iter_halo_swaps,
        )

    # -- structure ----------------------------------------------------------
    @staticmethod
    def _require_bare_return(op: Operation) -> None:
        if op.name != "func.return" or op.operands:
            raise CodegenError(
                "the function must end in a value-less func.return"
            )

    def _trace_preamble_op(self, op: Operation) -> None:
        if isinstance(op, arith.ConstantOp):
            self.sym[op.results[0]] = ("const", self._constant_literal(op))
            return
        if op.name in _CAST_OPS:
            self.sym[op.results[0]] = self._sym_of(op.operands[0])
            return
        raise CodegenError(
            f"operation {op.name!r} before the time loop cannot be "
            "megakernel-compiled"
        )

    def _trace_loop(self, op: scf.ForOp) -> _LoopInfo:
        lower = self._bound_sym(op.lower_bound, "lower bound")
        upper = self._bound_sym(op.upper_bound, "upper bound")
        step_sym = self._sym_of(op.step)
        if step_sym[0] != "const" or not self._is_int(step_sym[1]) \
                or step_sym[1] <= 0:
            raise CodegenError(
                "the time-loop step must be a positive constant"
            )
        init_args: list[int] = []
        for value in op.iter_args:
            sym = self._sym_of(value)
            if sym[0] != "arg" or sym[1] in init_args:
                raise CodegenError(
                    "every loop-carried value must be a distinct function "
                    "argument"
                )
            init_args.append(sym[1])
        block = op.body.block
        self.sym[block.args[0]] = ("iv",)
        for slot, block_arg in enumerate(block.args[1:]):
            self.sym[block_arg] = ("slot", slot)
        body_ops = list(block.ops)
        terminator = body_ops[-1] if body_ops else None
        if not isinstance(terminator, scf.YieldOp):
            raise CodegenError("the time-loop body must end in scf.yield")
        self._trace_segment(body_ops[:-1])
        self.iter_ops += 1  # the scf.yield is dispatched once per iteration
        perm: list[int] = []
        for operand in terminator.operands:
            sym = self._sym_of(operand)
            if sym[0] != "slot":
                raise CodegenError(
                    "the time loop must yield a permutation of its "
                    "loop-carried values"
                )
            perm.append(sym[1])
        if sorted(perm) != list(range(len(op.iter_args))):
            raise CodegenError(
                "the time loop must yield a permutation of its loop-carried "
                "values"
            )
        # A buffer reachable both directly (as the function argument) and
        # through a rotating slot would make nest geometry parity-dependent
        # in ways the per-parity replay cannot always separate; reject.
        for kind, *rest in self.steps:
            syms = [rest[1]] if kind == "swap" else rest[2]
            for sym in syms:
                if sym[0] == "arg" and sym[1] in init_args:
                    raise CodegenError(
                        "a field argument is used both directly and as a "
                        "loop-carried buffer"
                    )
        return _LoopInfo(op, lower, upper, step_sym[1], init_args, perm)

    def _bound_sym(self, value: SSAValue, what: str) -> _Sym:
        sym = self._sym_of(value)
        if sym[0] == "const":
            if not self._is_int(sym[1]):
                raise CodegenError(f"the time-loop {what} must be an integer")
            return sym
        if sym[0] == "arg":
            return sym
        raise CodegenError(
            f"the time-loop {what} must be a constant or a function argument"
        )

    # -- the loop-body segment ----------------------------------------------
    def _trace_segment(self, ops: list[Operation]) -> None:
        for op in ops:
            self._trace_op(op)

    def _trace_op(self, op: Operation) -> None:
        self.iter_ops += 1
        name = op.name
        if isinstance(op, arith.ConstantOp):
            self.sym[op.results[0]] = ("const", self._constant_literal(op))
            return
        if name in _CAST_OPS:
            self.sym[op.results[0]] = self._sym_of(op.operands[0])
            return
        if isinstance(op, dmp.SwapOp):
            src = self._sym_of(op.data)
            if src[0] not in ("arg", "slot"):
                raise CodegenError(
                    "dmp.swap operates on a buffer that is not a function "
                    "argument"
                )
            ordinal = self.iter_halo_swaps
            self.iter_halo_swaps += 1
            self.steps.append(("swap", op, src, ordinal))
            return
        if isinstance(op, omp.ParallelOp):
            self.iter_omp_regions += 1
            self._trace_segment(list(op.body.block.ops))
            return
        if name == "omp.barrier":
            self.iter_omp_barriers += 1
            return
        if name in ("omp.terminator", "gpu.terminator"):
            return
        if isinstance(op, (scf.ParallelOp, omp.WsLoopOp, scf.ForOp)):
            self._trace_nest(op)
            return
        raise CodegenError(
            f"operation {name!r} cannot be megakernel-compiled"
        )

    def _trace_nest(self, op: Operation) -> None:
        if isinstance(op, scf.ParallelOp) and "gpu_kernel" in op.attributes:
            self.iter_kernel_launches += 1
        nest = self.kernel.nest_for(op)
        if nest is None:
            fallback = self.kernel.fallback_for(op)
            raise CodegenError(
                str(fallback) if fallback is not None
                else f"{op.name} has no compiled vectorized nest"
            )
        if nest.has_reduce:
            raise CodegenError(
                "reduction nests cannot be megakernel-compiled"
            )
        if op.results:
            raise CodegenError(
                "loop nests producing values cannot be megakernel-compiled"
            )
        base_syms = self._validate_nest(nest)
        self.steps.append(("nest", op, nest, base_syms))

    def _validate_nest(self, nest: CompiledNest) -> list[_Sym]:
        """Check the nest's geometry and value refs are emit-time resolvable.

        Returns the symbolic identities of every load/store base buffer, in
        instruction order (consumed by the loop-carried-alias check and the
        emitter's buffer binding).
        """
        for lower, upper, step in (*nest.bounds, *nest.count_bounds):
            for affine in (lower, upper, step):
                self._require_const_affine(affine)
        base_syms: list[_Sym] = []
        for instr in nest.instrs:
            kind = instr[0]
            if kind in ("load", "store"):
                base_sym = self._sym_of(instr[2])
                if base_sym[0] not in ("arg", "slot"):
                    raise CodegenError(
                        "nest buffer is not a function argument"
                    )
                base_syms.append(base_sym)
                for affine in instr[3]:
                    self._require_const_affine(affine)
                if kind == "store":
                    self._validate_ref(instr[1])
            elif kind == "binary":
                self._validate_ref(instr[3])
                self._validate_ref(instr[4])
            elif kind == "unary":
                self._validate_ref(instr[3])
            elif kind == "select":
                for ref in instr[2:5]:
                    self._validate_ref(ref)
        return base_syms

    def _validate_ref(self, ref: tuple) -> None:
        tag = ref[0]
        if tag in ("arr", "const"):
            return
        if tag == "free":
            sym = self.sym.get(ref[1])
            if sym is None or sym[0] not in ("const", "arg", "iv"):
                raise CodegenError(
                    "nest reads a value the tracer cannot resolve"
                )
            return
        # ("aff", affine): materialized per box; its free terms must be
        # emit-time constants.
        self._require_const_affine(ref[1])

    def _require_const_affine(self, affine) -> None:
        for value in affine.free:
            sym = self.sym.get(value)
            if sym is None or sym[0] != "const" or not self._is_int(sym[1]):
                raise CodegenError(
                    "nest geometry depends on runtime values"
                )

    # -- leaves ---------------------------------------------------------------
    def _constant_literal(self, op: arith.ConstantOp):
        attr = op.value
        if isinstance(attr, IntegerAttr):
            result_type = op.results[0].type
            if isinstance(result_type, IntegerType) and result_type.width == 1:
                return bool(attr.value)
            return int(attr.value)
        if isinstance(attr, FloatAttr):
            return float(attr.value)
        raise CodegenError("unsupported constant payload")

    def _sym_of(self, value: SSAValue) -> _Sym:
        sym = self.sym.get(value)
        if sym is None:
            raise CodegenError(
                "value has no traceable definition"
            )
        return sym

    @staticmethod
    def _is_int(value) -> bool:
        return isinstance(value, int) and not isinstance(value, bool)


# ---------------------------------------------------------------------------
# emit-time geometry replay support
# ---------------------------------------------------------------------------

class _MockReceive:
    """Stand-in for _HaloReceive: the geometry _plan_overlap consults."""

    __slots__ = ("axis", "recv_slice")

    def __init__(self, axis: int, recv_slice: tuple):
        self.axis = axis
        self.recv_slice = recv_slice


class _MockHalo:
    """Stand-in for PendingHalo: feeds CompiledNest._plan_overlap at emit."""

    __slots__ = ("array", "items")

    def __init__(self, array: np.ndarray, items: list):
        self.array = array
        self.items = items


class _EmitAdapter:
    """Interpreter stand-in for geometry resolution: env holds raw arrays."""

    @staticmethod
    def as_array(value):
        return value


_EMIT_INTERP = _EmitAdapter()


# ---------------------------------------------------------------------------
# runtime helpers referenced by generated code
# ---------------------------------------------------------------------------

def _post_swap(comm, array, plan):
    """Post one dmp.swap: buffered sends first, then staged receives.

    Statistics are *not* counted here — the generated function hoists them.
    The payload-copy-before-any-post order matches the interpreter's swap
    handler exactly.
    """
    payloads = [
        (array[send_slice].copy(), neighbor, tag)
        for send_slice, neighbor, tag in plan.sends
    ]
    for payload, neighbor, tag in payloads:
        comm.isend(payload, neighbor, tag)
    items = []
    for recv_slice, neighbor, tag, shape, _elements, _axis in plan.receives:
        buffer = np.empty(shape, dtype=array.dtype)
        items.append((comm.irecv(buffer, neighbor, tag), buffer, recv_slice))
    return array, items


def _complete_swap(comm, posted):
    """Wait for one posted swap's receives and land them, in posting order."""
    array, items = posted
    for request, buffer, recv_slice in items:
        comm.wait(request)
        array[recv_slice] = buffer


class CompiledMegakernel:
    """One compiled megakernel: a single Python function per (plan, rank).

    ``run`` re-checks what only the concrete call can prove — argument
    layout and pairwise buffer aliasing — and returns False to bounce that
    run to the planned-op path when the guard fails.
    """

    __slots__ = ("label", "source", "signature", "array_indices", "traced", "_fn")

    def __init__(self, label: str, source: str, signature: tuple,
                 array_indices: tuple, namespace: dict, traced: bool = False):
        self.label = label
        self.source = source
        self.signature = signature
        self.array_indices = array_indices
        #: Whether span bookkeeping was inlined at emission time.  Traced and
        #: untraced kernels are separate cache entries; the untraced source is
        #: statement-identical to a build without observability at all.
        self.traced = traced
        code = compile(source, f"<megakernel:{label}>", "exec")
        exec(code, namespace)
        self._fn = namespace["_megakernel"]

    def matches(self, args) -> bool:
        """Whether ``args`` has the traced layout (count, shapes, dtypes)."""
        count, arrays = self.signature
        if len(args) != count:
            return False
        array_positions = set()
        for index, shape, dtype in arrays:
            value = args[index]
            if not isinstance(value, np.ndarray) or value.shape != shape \
                    or value.dtype.str != dtype:
                return False
            array_positions.add(index)
        for index, value in enumerate(args):
            if index not in array_positions and isinstance(value, np.ndarray):
                return False
        return True

    def run(self, args, stats, comm=None, tracer=None) -> bool:
        """Execute; False bounces to the planned path (aliased buffers)."""
        arrays = [args[index] for index in self.array_indices]
        for first in range(len(arrays)):
            for second in range(first + 1, len(arrays)):
                if np.shares_memory(arrays[first], arrays[second]):
                    return False
        if self.traced:
            self._fn(args, stats, comm, tracer)
        else:
            self._fn(args, stats, comm)
        return True


def megakernel_signature(args) -> tuple:
    """The layout key of an argument list: count + per-array (i, shape, dtype)."""
    return (
        len(args),
        tuple(
            (index, value.shape, value.dtype.str)
            for index, value in enumerate(args)
            if isinstance(value, np.ndarray)
        ),
    )


# ---------------------------------------------------------------------------
# the emitter
# ---------------------------------------------------------------------------

def _perm_order(perm: list[int]) -> int:
    import math

    order = 1
    seen: set[int] = set()
    for start in range(len(perm)):
        if start in seen:
            continue
        length, position = 0, start
        while position not in seen:
            seen.add(position)
            position = perm[position]
            length += 1
        order = math.lcm(order, length)
    return order


def _slice_src(slices) -> str:
    parts = []
    for piece in slices:
        if piece.step in (None, 1):
            parts.append(f"{piece.start}:{piece.stop}")
        else:
            parts.append(f"{piece.start}:{piece.stop}:{piece.step}")
    return ", ".join(parts)


def _slice_key(slices) -> tuple:
    return tuple((piece.start, piece.stop, piece.step) for piece in slices)


def emit_megakernel(trace: MegakernelTrace, sample_args, *, rank: int = 0,
                    size: int = 1, label: Optional[str] = None,
                    traced: bool = False) -> CompiledMegakernel:
    """Emit (and compile) the megakernel of ``trace`` for one rank.

    ``sample_args`` fixes the buffer layout the generated code is specialized
    to; :meth:`CompiledMegakernel.matches` gates reuse on later calls.
    Raises :class:`CodegenError` with a fallback reason when the concrete
    geometry cannot be emitted (aliased fields, rotation-dependent geometry,
    un-sliceable regions...).

    With ``traced=True`` the generated function takes a fourth ``_tracer``
    argument and brackets each timestep, nest, and halo post/wait with span
    bookkeeping.  With ``traced=False`` (the default) no bookkeeping is
    emitted at all — the source is statement-identical to a build without
    the observability layer.
    """
    emitter = _MegakernelEmitter(trace, list(sample_args), rank, size,
                                 traced=traced)
    return emitter.emit(
        label or f"{trace.function_name}@r{rank}of{size}"
    )


class _MegakernelEmitter:
    def __init__(self, trace: MegakernelTrace, args: list, rank: int, size: int,
                 traced: bool = False):
        self.trace = trace
        self.args = args
        self.rank = rank
        self.size = size
        self.traced = traced
        self._span = 0
        if len(args) != trace.arg_count:
            raise CodegenError(
                f"expected {trace.arg_count} arguments, got {len(args)}"
            )
        self.static_env = {
            value: sym[1] for value, sym in trace.sym.items()
            if sym[0] == "const"
        }
        self.array_indices = tuple(
            index for index, value in enumerate(args)
            if isinstance(value, np.ndarray)
        )
        arrays = [args[index] for index in self.array_indices]
        for first in range(len(arrays)):
            for second in range(first + 1, len(arrays)):
                if np.shares_memory(arrays[first], arrays[second]):
                    raise CodegenError("field arguments alias each other")
        # Source-building state (filled by the parity-0 replay).
        self.lines: list[tuple[int, str]] = []
        self.ctx: list[Any] = []
        self._var = 0
        self.iter_cells = 0
        self.iter_mpi_messages = 0
        self.iter_halo_elements = 0
        self.iter_overlapped = 0

    # -- argument/slot resolution -------------------------------------------
    def _array_for(self, sym: _Sym, slot_arrays: list) -> np.ndarray:
        if sym[0] == "slot":
            return slot_arrays[sym[1]]
        value = self.args[sym[1]]
        if not isinstance(value, np.ndarray):
            raise CodegenError("a traced buffer argument is not an array")
        return value

    @staticmethod
    def _var_for(sym: _Sym) -> str:
        return f"b{sym[1]}" if sym[0] == "slot" else f"a{sym[1]}"

    def _new_var(self) -> str:
        self._var += 1
        return f"_v{self._var}"

    def _span_lines(self, name: str) -> tuple[str, str]:
        """Begin/end source lines for one inlined span (unique local var)."""
        self._span += 1
        var = f"_s{self._span}"
        return (
            f"{var} = _tracer.begin('{name}')",
            f"_tracer.end('{name}', {var})",
        )

    def _add_ctx(self, value) -> int:
        self.ctx.append(value)
        return len(self.ctx) - 1

    # -- top level -----------------------------------------------------------
    def emit(self, label: str) -> CompiledMegakernel:
        trace = self.trace
        loop = trace.loop
        if loop is None:
            parities = 1
            init_slots: list = []
        else:
            parities = _perm_order(loop.perm)
            if parities > 8:
                raise CodegenError(
                    "buffer rotation period too long to validate"
                )
            init_slots = [self.args[index] for index in loop.init_args]
            for value in init_slots:
                if not isinstance(value, np.ndarray):
                    raise CodegenError(
                        "a loop-carried buffer argument is not an array"
                    )
        slot_arrays = list(init_slots)
        reference = self._replay(slot_arrays, emit=True)
        for _parity in range(1, parities):
            slot_arrays = [slot_arrays[j] for j in loop.perm]
            if self._replay(slot_arrays, emit=False) != reference:
                raise CodegenError("buffer rotation changes nest geometry")
        source = self._render(label)
        if os.environ.get("REPRO_DUMP_MEGAKERNEL", "0") not in ("", "0"):
            print(f"# --- megakernel {label} ---\n{source}", file=sys.stderr)
        namespace = {
            "_np": np,
            "_ctx": tuple(self.ctx),
            "_post": _post_swap,
            "_cm": _complete_swap,
        }
        return CompiledMegakernel(
            label, source, megakernel_signature(self.args),
            self.array_indices, namespace, traced=self.traced,
        )

    # -- one-iteration replay -------------------------------------------------
    def _replay(self, slot_arrays: list, emit: bool) -> tuple:
        """Replay one loop iteration against concrete (parity) buffers.

        Returns the geometry signature of every action taken; the emit pass
        (parity 0) additionally records source lines, context values and the
        hoisted per-iteration statistics.  Every decision — swap prefix
        completion, overlap split, slice resolution — is the one the dynamic
        path would make, so comparing signatures across parities proves the
        single emitted body is exact for all of them.
        """
        actions: list[tuple] = []
        # In-flight swaps: (ordinal, array, mock halo, element count).
        inflight: list[tuple] = []

        def complete(entries: list[tuple], overlapped: bool) -> None:
            for ordinal, _array, _mock, elements in entries:
                actions.append(("complete", ordinal, overlapped))
                if emit:
                    if self.traced:
                        begin, end = self._span_lines("halo.wait")
                        self.lines.append((1, begin))
                        self.lines.append((1, f"_cm(_comm, _h{ordinal})"))
                        self.lines.append((1, end))
                    else:
                        self.lines.append((1, f"_cm(_comm, _h{ordinal})"))
                    self.iter_halo_elements += elements
                    if overlapped:
                        self.iter_overlapped += 1

        for step in self.trace.steps:
            if step[0] == "swap":
                _, op, src, ordinal = step
                array = self._array_for(src, slot_arrays)
                actions.append(("swap", ordinal, array.shape, array.dtype.str))
                # complete_pending_halos_touching: the posting-order prefix
                # up to the last halo sharing this buffer.
                last = -1
                for index, entry in enumerate(inflight):
                    if entry[1] is array or np.shares_memory(entry[1], array):
                        last = index
                if last >= 0:
                    complete(inflight[: last + 1], overlapped=False)
                    del inflight[: last + 1]
                if self.size == 1:
                    continue
                plan = swap_message_plan(op, self.rank)
                mock = _MockHalo(
                    array,
                    [_MockReceive(axis, recv_slice)
                     for recv_slice, _n, _t, _s, _e, axis in plan.receives],
                )
                elements = sum(record[4] for record in plan.receives)
                entry = (ordinal, array, mock, elements)
                if emit:
                    slot = self._add_ctx(plan)
                    variable = self._var_for(src)
                    if self.traced:
                        begin, end = self._span_lines("halo.post")
                        self.lines.append((1, begin))
                        self.lines.append(
                            (1, f"_h{ordinal} = _post(_comm, {variable}, "
                                f"_ctx[{slot}])")
                        )
                        self.lines.append((1, end))
                    else:
                        self.lines.append(
                            (1, f"_h{ordinal} = _post(_comm, {variable}, "
                                f"_ctx[{slot}])")
                        )
                    self.iter_mpi_messages += len(plan.sends)
                if self.trace.overlap:
                    inflight.append(entry)
                else:
                    complete([entry], overlapped=False)
            else:
                _, op, nest, base_syms = step
                self._replay_nest(
                    nest, base_syms, slot_arrays, inflight, actions,
                    complete, emit,
                )

        if inflight:
            if self.trace.loop is not None:
                raise CodegenError(
                    "a halo exchange is still in flight at the end of the "
                    "time-loop body"
                )
            # No time loop: the interpreter completes leftovers at function
            # end (non-overlapped).
            complete(inflight, overlapped=False)
            inflight.clear()
        return tuple(actions)

    def _replay_nest(self, nest: CompiledNest, base_syms, slot_arrays,
                     inflight, actions, complete, emit: bool) -> None:
        env: dict = dict(self.static_env)
        position_syms: dict[int, _Sym] = {}
        sym_iter = iter(base_syms)
        for position, instr in enumerate(nest.instrs):
            if instr[0] in ("load", "store"):
                sym = next(sym_iter)
                position_syms[position] = sym
                env[instr[2]] = self._array_for(sym, slot_arrays)
        try:
            dims = nest._concrete_dims(env, nest.bounds)
            cells = nest._cell_count(env)
            resolved = nest._resolve_regions(_EMIT_INTERP, env, dims)
            loads, stores, regions = resolved
            if not nest._aliasing_is_safe(loads, stores, regions):
                raise CodegenError(
                    "aliasing stores: load/store regions overlap between "
                    "cells"
                )
            overlap_plan = None
            if inflight:
                mocks = [entry[2] for entry in inflight]
                plan = nest._plan_overlap(env, dims, resolved, mocks)
                if plan is None:
                    complete(list(inflight), overlapped=False)
                    inflight.clear()
                elif plan != "defer":
                    overlap_plan = plan
            actions.append(("nest", cells, tuple(dims)))
            if emit:
                self.iter_cells += cells
            spans = emit and self.traced
            if spans:
                nest_begin, nest_end = self._span_lines("nest")
                self.lines.append((1, nest_begin))
            if overlap_plan is None:
                self._emit_box(
                    nest, position_syms, env, dims, resolved, actions, emit
                )
            else:
                interior_dims, strips = overlap_plan
                interior_dims = [tuple(dim) for dim in interior_dims]
                interior = nest._resolve_regions(
                    _EMIT_INTERP, env, interior_dims
                )
                if spans:
                    in_begin, in_end = self._span_lines("nest.interior")
                    self.lines.append((1, in_begin))
                self._emit_box(
                    nest, position_syms, env, interior_dims, interior,
                    actions, emit,
                )
                if spans:
                    self.lines.append((1, in_end))
                complete(list(inflight), overlapped=True)
                inflight.clear()
                if spans:
                    bd_begin, bd_end = self._span_lines("nest.boundary")
                    self.lines.append((1, bd_begin))
                for strip_dims in strips:
                    strip_dims = [tuple(dim) for dim in strip_dims]
                    strip = nest._resolve_regions(
                        _EMIT_INTERP, env, strip_dims
                    )
                    self._emit_box(
                        nest, position_syms, env, strip_dims, strip,
                        actions, emit,
                    )
                if spans:
                    self.lines.append((1, bd_end))
            if spans:
                self.lines.append((1, nest_end))
        except _Bailout as bail:
            raise CodegenError(f"nest cannot be emitted: {bail.reason}")

    # -- one box of one nest --------------------------------------------------
    def _emit_box(self, nest: CompiledNest, position_syms, env, box_dims,
                  resolved, actions, emit: bool) -> None:
        """Emit the straight-line statements of one (nest, box) pair.

        The statement order mirrors ``CompiledNest._prepare_box`` exactly:
        loads and element-wise math in instruction order, store values
        prepared in place, every commit deferred past the last instruction.
        """
        loads, stores, regions = resolved
        actions.append((
            "box",
            tuple(box_dims),
            tuple(
                (position, _slice_key(slices), view_shape, region_shape)
                for position, (array, slices, view_shape, region_shape)
                in sorted(regions.items())
            ),
        ))
        if not emit:
            return
        nest_shape = tuple(
            len(range(lower, upper, step)) for lower, upper, step in box_dims
        )
        force_copy = sum(1 for instr in nest.instrs if instr[0] == "store") > 1
        values: dict[SSAValue, tuple] = {}
        commits: list[str] = []
        for position, instr in enumerate(nest.instrs):
            kind = instr[0]
            if kind == "load":
                array, slices, view_shape, _ = regions[position]
                variable = self._var_for(position_syms[position])
                source = f"{variable}[{_slice_src(slices)}]"
                if array[slices].shape != view_shape:
                    source += f".reshape({view_shape!r})"
                source = widen_expression(source, array.dtype)
                dtype_kind = array.dtype.kind
                if dtype_kind == "f":
                    dtype: Any = np.dtype(np.float64)
                elif dtype_kind == "b":
                    dtype = array.dtype
                else:
                    dtype = np.dtype(np.int64)
                name = self._new_var()
                self.lines.append((1, f"{name} = {source}"))
                values[instr[1]] = (name, True, dtype, view_shape)
            elif kind == "store":
                array, slices, _, region_shape = regions[position]
                ref = self._resolve_ref(instr[1], values, box_dims)
                expr, is_array, dtype, shape = ref
                variable = self._var_for(position_syms[position])
                try:
                    if np.broadcast_shapes(shape, nest_shape) != nest_shape:
                        raise ValueError
                except ValueError:
                    raise CodegenError(
                        "store value cannot be broadcast to the iteration "
                        "space"
                    )
                if (not force_copy and is_array
                        and isinstance(dtype, np.dtype)
                        and dtype == array.dtype
                        and shape == nest_shape
                        and region_shape == nest_shape):
                    # array[slices] = value is bit-identical to the
                    # broadcast/reshape/astype pipeline when every step of
                    # that pipeline is the identity.
                    commits.append(
                        f"{variable}[{_slice_src(slices)}] = {expr}"
                    )
                else:
                    prepared = self._new_var()
                    self.lines.append((1,
                        f"{prepared} = _np.broadcast_to(_np.asarray({expr}), "
                        f"{nest_shape!r}).reshape({region_shape!r})"
                        f".astype({variable}.dtype, copy={force_copy})"
                    ))
                    commits.append(
                        f"{variable}[{_slice_src(slices)}] = {prepared}"
                    )
            elif kind == "binary":
                op_name = instr[-1]
                a = self._resolve_ref(instr[3], values, box_dims)
                b = self._resolve_ref(instr[4], values, box_dims)
                expr = binary_expression(op_name, a[0], b[0])
                if expr is None:
                    slot = self._add_ctx(instr[2])
                    expr = f"_ctx[{slot}]({a[0]}, {b[0]})"
                shape = self._broadcast(a[3], b[3])
                name = self._new_var()
                self.lines.append((1, f"{name} = {expr}"))
                values[instr[1]] = (
                    name, a[1] or b[1], self._binary_dtype(op_name, a, b),
                    shape,
                )
            elif kind == "unary":
                op_name = instr[-1]
                a = self._resolve_ref(instr[3], values, box_dims)
                expr = unary_expression(op_name, a[0], a[1])
                if expr is None:
                    slot = self._add_ctx(instr[2])
                    expr = f"_ctx[{slot}]({a[0]})"
                name = self._new_var()
                self.lines.append((1, f"{name} = {expr}"))
                values[instr[1]] = (
                    name, a[1], self._unary_dtype(op_name, a), a[3]
                )
            elif kind == "select":
                cond = self._resolve_ref(instr[2], values, box_dims)
                a = self._resolve_ref(instr[3], values, box_dims)
                b = self._resolve_ref(instr[4], values, box_dims)
                shape = self._broadcast(self._broadcast(cond[3], a[3]), b[3])
                dtype = (
                    a[2]
                    if a[1] and b[1] and isinstance(a[2], np.dtype)
                    and a[2] == b[2] else None
                )
                name = self._new_var()
                self.lines.append(
                    (1, f"{name} = _np.where({cond[0]}, {a[0]}, {b[0]})")
                )
                values[instr[1]] = (name, True, dtype, shape)
            else:  # pragma: no cover - has_reduce nests are rejected earlier
                raise CodegenError("unsupported nest instruction")
        for line in commits:
            self.lines.append((1, line))

    # -- operand references ---------------------------------------------------
    def _resolve_ref(self, ref: tuple, values: dict, box_dims) -> tuple:
        """Resolve a vectorize _Ref to ``(expr, is_array, dtype, shape)``.

        ``dtype`` is a numpy dtype when statically known, a "pyint" /
        "pyfloat" / "pybool" marker for python scalars, or None (unknown —
        which only forfeits the simple-store optimization, never
        correctness).
        """
        tag = ref[0]
        if tag == "arr":
            return values[ref[1]]
        if tag == "const":
            return (_literal(ref[1]), False, _scalar_marker(ref[1]), ())
        if tag == "free":
            sym = self.trace.sym[ref[1]]
            if sym[0] == "const":
                return (
                    _literal(sym[1]), False, _scalar_marker(sym[1]), ()
                )
            if sym[0] == "arg":
                return (f"a{sym[1]}", False, None, ())
            return ("_t", False, "pyint", ())
        # ("aff", affine) — materialized per box; geometry-free terms were
        # validated to be emit-time constants.
        value = CompiledNest._materialize(ref[1], list(box_dims), self.static_env)
        if isinstance(value, np.ndarray):
            slot = self._add_ctx(value)
            return (f"_ctx[{slot}]", True, np.dtype(np.int64), value.shape)
        return (repr(int(value)), False, "pyint", ())

    @staticmethod
    def _broadcast(a: tuple, b: tuple) -> tuple:
        try:
            return np.broadcast_shapes(a, b)
        except ValueError:
            raise CodegenError("operand shapes do not broadcast")

    @staticmethod
    def _binary_dtype(name: str, a: tuple, b: tuple):
        if name.startswith("arith.cmp"):
            return np.dtype(np.bool_)
        kinds = []
        for operand in (a, b):
            dtype = operand[2]
            if operand[1]:
                if not isinstance(dtype, np.dtype):
                    return None
            elif dtype not in ("pyint", "pyfloat"):
                return None
            kinds.append(dtype)
        arrays = [dtype for dtype in kinds if isinstance(dtype, np.dtype)]
        if not arrays:
            return None
        if name in _FLOAT_BINOPS:
            if all(dtype == np.float64 for dtype in arrays):
                return np.dtype(np.float64)
            return None
        if name in _INT_BINOPS:
            if all(dtype == np.int64 for dtype in arrays) and "pyfloat" not in kinds:
                return np.dtype(np.int64)
        return None

    @staticmethod
    def _unary_dtype(name: str, a: tuple):
        if name in ("arith.sitofp", "arith.extf", "arith.truncf"):
            return np.dtype(np.float64) if a[1] else "pyfloat"
        if name == "arith.fptosi":
            return np.dtype(np.int64) if a[1] else "pyint"
        if name in ("arith.extsi", "arith.trunci", "arith.negf"):
            return a[2]
        return None

    # -- source assembly ------------------------------------------------------
    @staticmethod
    def _bound_src(sym: _Sym) -> str:
        if sym[0] == "const":
            return str(sym[1])
        return f"int(a{sym[1]})"

    def _render(self, label: str) -> str:
        trace = self.trace
        indent = "    "
        body: list[str] = [f"# megakernel {label}"]
        for index in range(trace.arg_count):
            body.append(f"a{index} = _args[{index}]")
        loop = trace.loop
        if loop is None:
            body.append("_trips = 1")
        else:
            body.append(f"_lo = {self._bound_src(loop.lower)}")
            body.append(f"_hi = {self._bound_src(loop.upper)}")
            body.append(f"_st = {loop.step}")
            body.append("_trips = len(range(_lo, _hi, _st))")
        body.append(
            f"_stats.ops_executed += {trace.pre_ops} + _trips * {trace.iter_ops}"
        )
        for field, per_iteration in (
            ("omp_regions", trace.iter_omp_regions),
            ("omp_barriers", trace.iter_omp_barriers),
            ("kernel_launches", trace.iter_kernel_launches),
            ("halo_swaps", trace.iter_halo_swaps),
            ("cells_updated", self.iter_cells),
            ("mpi_messages", self.iter_mpi_messages),
            ("halo_elements_exchanged", self.iter_halo_elements),
            ("halo_swaps_overlapped", self.iter_overlapped),
        ):
            if per_iteration:
                body.append(f"_stats.{field} += _trips * {per_iteration}")
        inner = [text for _level, text in self.lines]
        if loop is None:
            body.extend(inner)
        else:
            for slot, index in enumerate(loop.init_args):
                body.append(f"b{slot} = a{index}")
            body.append("for _t in range(_lo, _hi, _st):")
            loop_body = list(inner)
            perm = loop.perm
            if perm != list(range(len(perm))):
                targets = ", ".join(f"b{j}" for j in range(len(perm)))
                sources = ", ".join(f"b{j}" for j in perm)
                loop_body.append(f"{targets} = {sources}")
            if self.traced:
                # One "step" span per time-loop trip, rotation included —
                # mirrors the interpreter's per-iteration span.
                loop_body = (
                    ["_spt = _tracer.begin('step')"]
                    + loop_body
                    + ["_tracer.end('step', _spt)"]
                )
            if not loop_body:
                loop_body.append("pass")
            body.extend(indent + line for line in loop_body)
        body.append("return True")
        header = (
            "def _megakernel(_args, _stats, _comm, _tracer):\n"
            if self.traced else
            "def _megakernel(_args, _stats, _comm):\n"
        )
        return header + "\n".join(indent + line for line in body) + "\n"


_FLOAT_BINOPS = frozenset({
    "arith.addf", "arith.subf", "arith.mulf", "arith.divf", "arith.powf",
    "arith.maximumf", "arith.minimumf",
})

_INT_BINOPS = frozenset({
    "arith.addi", "arith.subi", "arith.muli", "arith.minsi", "arith.maxsi",
})


def _scalar_marker(value) -> str:
    if isinstance(value, bool):
        return "pybool"
    if isinstance(value, int):
        return "pyint"
    return "pyfloat"


def _literal(value) -> str:
    """Python source for a scalar literal; repr round-trips floats exactly."""
    import math

    if isinstance(value, float) and not math.isfinite(value):
        return f'float("{value!r}")'
    return repr(value)


def program_fingerprint(text: str) -> str:
    """A stable content hash for megakernel cache keys."""
    return hashlib.sha256(text.encode()).hexdigest()
