"""Compilation targets of the shared stack.

A :class:`Target` describes *where* a stencil program should run and with
which parallelisation: sequential CPU, OpenMP shared memory, MPI distributed
memory (optionally combined with OpenMP), GPU, or FPGA.  The pipeline builder
maps a target onto the appropriate sequence of lowering passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


class TargetKind:
    """Enumeration of supported execution targets."""

    CPU_SEQUENTIAL = "cpu"
    CPU_OPENMP = "smp"
    DISTRIBUTED = "dmp"
    GPU = "gpu"
    FPGA = "fpga"

    ALL = (CPU_SEQUENTIAL, CPU_OPENMP, DISTRIBUTED, GPU, FPGA)


@dataclass(frozen=True)
class Target:
    """A fully specified compilation target."""

    kind: str = TargetKind.CPU_SEQUENTIAL
    #: OpenMP threads per rank (smp / dmp targets).
    threads: Optional[int] = None
    #: Cartesian MPI rank grid (dmp target), e.g. (2, 2).
    rank_grid: Optional[tuple[int, ...]] = None
    #: Loop tile sizes for the CPU lowering; None disables tiling.
    tile_sizes: Optional[tuple[int, ...]] = None
    #: Fuse independent stencil regions before lowering.
    fuse_stencils: bool = True
    #: Lower dmp all the way to MPI_* function calls (instead of stopping at mpi).
    lower_to_library_calls: bool = False
    #: FPGA: apply the dataflow/shift-buffer optimisation.
    fpga_optimize: bool = True

    def __post_init__(self) -> None:
        if self.kind not in TargetKind.ALL:
            raise ValueError(
                f"unknown target kind {self.kind!r}; expected one of {TargetKind.ALL}"
            )
        if self.kind == TargetKind.DISTRIBUTED and self.rank_grid is None:
            raise ValueError("a distributed target requires a rank_grid")

    @property
    def is_distributed(self) -> bool:
        return self.kind == TargetKind.DISTRIBUTED

    @property
    def ranks(self) -> int:
        if self.rank_grid is None:
            return 1
        total = 1
        for extent in self.rank_grid:
            total *= extent
        return total


def cpu_target(tile_sizes: Optional[Sequence[int]] = None) -> Target:
    """A sequential CPU target (reference semantics)."""
    return Target(
        kind=TargetKind.CPU_SEQUENTIAL,
        tile_sizes=tuple(tile_sizes) if tile_sizes else None,
    )


def smp_target(threads: int = 16, tile_sizes: Optional[Sequence[int]] = None) -> Target:
    """A shared-memory (OpenMP) CPU target."""
    return Target(
        kind=TargetKind.CPU_OPENMP,
        threads=threads,
        tile_sizes=tuple(tile_sizes) if tile_sizes else (64, 64, 64),
    )


def dmp_target(
    rank_grid: Sequence[int],
    threads: int = 16,
    lower_to_library_calls: bool = False,
) -> Target:
    """A distributed-memory (MPI [+ OpenMP]) target."""
    return Target(
        kind=TargetKind.DISTRIBUTED,
        rank_grid=tuple(rank_grid),
        threads=threads,
        lower_to_library_calls=lower_to_library_calls,
    )


def gpu_target() -> Target:
    """A single-GPU target."""
    return Target(kind=TargetKind.GPU)


def fpga_target(optimize: bool = True) -> Target:
    """An FPGA dataflow target."""
    return Target(kind=TargetKind.FPGA, fpga_optimize=optimize)
