"""Tests for the multi-tenant serving layer (repro.serve).

Covers the ISSUE 9 robustness checklist: queue-full backpressure returns the
typed error synchronously (no hang), cancellation has queue semantics, a
failed client's job doesn't poison the shared batch/pool (riding the worker
reaping of the process runtime), per-tenant statistics are bit-identical to
standalone-Session runs of the same jobs, and the cross-tenant plan cache
shares one compiled plan between tenants.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core import (
    ExecutionConfig,
    ExecutionError,
    Session,
    compile_stencil_program,
    cpu_target,
    dmp_target,
)
from repro.obs import MetricsRegistry
from repro.runtime import processes_available, shutdown_worker_pool
from repro.serve import (
    JobCancelledError,
    QueueFullError,
    Server,
    ServerClosedError,
)
from repro.workloads import heat_diffusion

needs_processes = pytest.mark.skipif(
    not processes_available(), reason="process runtime unavailable on this platform"
)


@pytest.fixture(scope="module", autouse=True)
def _pool_teardown():
    yield
    shutdown_worker_pool()


def _compile_heat(rank_grid=None, shape=(16, 16)):
    workload = heat_diffusion(shape, space_order=2, dtype=np.float64)
    module = workload.operator(backend="xdsl").stencil_module(dt=workload.dt)
    target = dmp_target(rank_grid) if rank_grid is not None else cpu_target()
    return compile_stencil_program(module, target)


def _heat_fields(shape=(18, 18)):
    u0 = np.zeros(shape)
    u0[shape[0] // 2 - 1: shape[0] // 2 + 1,
       shape[1] // 2 - 1: shape[1] // 2 + 1] = 1.0
    return [u0, u0.copy()]


def _standalone_reference(program, steps, config):
    """Fields + result of one run on a plain standalone Session."""
    with Session(config) as session:
        fields = _heat_fields()
        result = session.plan(program).run(fields, [steps])
    return fields, result


# ---------------------------------------------------------------------------
# admission control: bounded queue, typed backpressure, cancellation
# ---------------------------------------------------------------------------

class TestAdmissionControl:
    def test_queue_full_rejects_fast_with_typed_error(self):
        """A full queue raises QueueFullError synchronously — no blocking."""
        program = _compile_heat((2, 1))
        # start=False: nothing drains, so the queue state is deterministic.
        server = Server(max_pending=2, start=False)
        try:
            first = server.submit(program, _heat_fields(), [1])
            second = server.submit(program, _heat_fields(), [1])
            began = time.monotonic()
            with pytest.raises(QueueFullError, match="full"):
                server.submit(program, _heat_fields(), [1])
            assert time.monotonic() - began < 1.0, "rejection must not block"
            assert server.metrics.get("serve.jobs_rejected") == 1
            assert server.queue_depth() == 2
        finally:
            server.close(drain=False)
        # The non-draining close cancelled the queued jobs.
        for handle in (first, second):
            with pytest.raises(JobCancelledError):
                handle.result(timeout=5.0)

    def test_submit_after_close_raises_typed_error(self):
        program = _compile_heat((2, 1))
        server = Server(start=False)
        server.close(drain=False)
        with pytest.raises(ServerClosedError):
            server.submit(program, _heat_fields(), [1])

    def test_cancel_only_while_queued(self):
        """cancel() succeeds for queued jobs and fails for finished ones."""
        program = _compile_heat((2, 1))
        server = Server(start=False)
        try:
            handle = server.submit(program, _heat_fields(), [1])
            assert handle.cancel() is True
            assert handle.cancel() is False  # already terminal
            with pytest.raises(JobCancelledError):
                handle.result(timeout=5.0)
            assert server.metrics.get("serve.jobs_cancelled") == 1
        finally:
            server.close(drain=False)
        with Server() as server:
            done = server.submit(program, _heat_fields(), [2])
            assert done.result(timeout=60.0) is not None
            assert done.cancel() is False  # completed jobs cannot be cancelled


# ---------------------------------------------------------------------------
# batched dispatch: bit-identity, plan sharing, error isolation
# ---------------------------------------------------------------------------

class TestBatchedDispatch:
    def test_results_and_tenant_stats_bit_identical_to_standalone(self):
        """Batched jobs reproduce a standalone Session run bit for bit."""
        program = _compile_heat((2, 1))
        config = ExecutionConfig(runtime="threads")
        ref_fields, ref_result = _standalone_reference(program, 5, config)

        with Server(config, max_batch=8) as server:
            fieldsets = [_heat_fields() for _ in range(6)]
            handles = [
                server.submit(program, fields, [5], tenant=f"tenant{i % 2}")
                for i, fields in enumerate(fieldsets)
            ]
            results = [handle.result(timeout=60.0) for handle in handles]
            for fields in fieldsets:
                assert np.array_equal(fields[0], ref_fields[0])
                assert np.array_equal(fields[1], ref_fields[1])

            # Per-tenant statistics must equal the same runs merged through a
            # registry the way a standalone session merges them.
            reference = MetricsRegistry()
            for _ in range(3):  # each tenant completed 3 of the 6 jobs
                reference.ingest_all(ref_result.statistics, "exec.")
                reference.ingest(ref_result.comm_statistics, "comm.")
            for name in ("tenant0", "tenant1"):
                stats = server.tenant(name)
                assert stats.runs == 3
                assert stats.exec_statistics() == reference.as_exec_statistics()
                assert stats.comm_statistics() == reference.as_comm_statistics()
            assert all(result.runtime == "threads" for result in results)

    def test_plan_cache_shared_across_tenants(self):
        """Two tenants with the same (program, config) share one Plan."""
        program = _compile_heat((2, 1))
        with Server(ExecutionConfig(runtime="threads")) as server:
            for tenant in ("alice", "bob", "alice", "bob"):
                server.submit(
                    program, _heat_fields(), [2], tenant=tenant
                ).result(timeout=60.0)
            assert server.session.counters.plans_created == 1
            assert server.metrics.get("serve.plan_cache_miss") == 1
            assert server.metrics.get("serve.plan_cache_hit") == 3

    def test_failed_job_does_not_poison_its_batch(self):
        """A job that cannot even stage fails alone; siblings complete."""
        program = _compile_heat((2, 1))
        with Server(ExecutionConfig(runtime="threads"), start=False) as server:
            good_before = server.submit(program, _heat_fields(), [2])
            bad = server.submit(program, _heat_fields(), [2, 3])  # arg count
            good_after = server.submit(program, _heat_fields(), [2])
            server.start()  # all three land in one dispatch round
            assert good_before.result(timeout=60.0) is not None
            with pytest.raises(ExecutionError, match="expects"):
                bad.result(timeout=60.0)
            assert good_after.result(timeout=60.0) is not None
            assert server.metrics.get("serve.jobs_failed") == 1
            assert server.metrics.get("serve.jobs_completed") == 2
            assert server.tenant("default").jobs_failed == 1
            # The shared session still serves fresh jobs afterwards.
            assert server.submit(
                program, _heat_fields(), [2]
            ).result(timeout=60.0) is not None

    def test_local_programs_ride_the_same_queue(self):
        """Non-distributed programs are served (and batched) too."""
        program = _compile_heat(None)
        config = ExecutionConfig()
        ref_fields, ref_result = _standalone_reference(program, 4, config)
        with Server(config) as server:
            fields = _heat_fields()
            result = server.submit(program, fields, [4]).result(timeout=60.0)
            assert result.runtime == "local"
            assert np.array_equal(fields[0], ref_fields[0])
            assert np.array_equal(fields[1], ref_fields[1])
            stats = server.tenant("default")
            assert stats.exec_statistics() == ref_result.statistics[0]

    def test_mixed_configs_get_separate_plans(self):
        """Different ExecutionConfigs never share a cache entry."""
        program = _compile_heat((2, 1))
        with Server(ExecutionConfig(runtime="threads")) as server:
            server.submit(program, _heat_fields(), [2]).result(timeout=60.0)
            server.submit(
                program, _heat_fields(), [2], codegen="planned"
            ).result(timeout=60.0)
            assert server.session.counters.plans_created == 2
            assert server.metrics.get("serve.plan_cache_miss") == 2


# ---------------------------------------------------------------------------
# process world: pooled batching + worker-reaping robustness
# ---------------------------------------------------------------------------

@needs_processes
class TestProcessServe:
    def test_process_batch_bit_identical(self):
        program = _compile_heat((2, 1))
        config = ExecutionConfig(runtime="processes")
        ref_fields, ref_result = _standalone_reference(program, 5, config)
        with Server(config, max_batch=4) as server:
            fieldsets = [_heat_fields() for _ in range(4)]
            handles = [server.submit(program, f, [5]) for f in fieldsets]
            results = [handle.result(timeout=120.0) for handle in handles]
            for fields in fieldsets:
                assert np.array_equal(fields[0], ref_fields[0])
                assert np.array_equal(fields[1], ref_fields[1])
            assert all(result.runtime == "processes" for result in results)
            stats = server.tenant("default")
            reference = MetricsRegistry()
            for _ in range(4):
                reference.ingest_all(ref_result.statistics, "exec.")
                reference.ingest(ref_result.comm_statistics, "comm.")
            assert stats.exec_statistics() == reference.as_exec_statistics()
            # One pooled round served all four jobs (8 workers partitioned).
            assert server.metrics.get("serve.batches") == 1

    def test_dead_worker_is_reaped_not_poisonous(self):
        """A tenant's worker dying between rounds never hangs the server.

        Rides the worker-reaping discipline: the dead worker is detected at
        the next round's entry, the pool is transparently replaced, and the
        queued jobs complete on the fresh pool.
        """
        program = _compile_heat((2, 1))
        config = ExecutionConfig(runtime="processes")
        with Server(config) as server:
            first = server.submit(program, _heat_fields(), [2])
            assert first.result(timeout=120.0) is not None
            victim = server.session._pool_manager.pool._processes[1]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(5)
            fields = _heat_fields()
            second = server.submit(program, fields, [2])
            assert second.result(timeout=120.0) is not None
            assert server.metrics.get("serve.jobs_completed") == 2
