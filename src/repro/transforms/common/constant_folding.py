"""Constant folding for the arith dialect.

Binary/unary arith operations whose operands are all produced by
``arith.constant`` are replaced by a new constant.  Together with CSE and DCE
this forms the canonicalisation pipeline, and is what makes the compile-time
known stencil bounds pay off (paper §4.1: "known bounds enable constant
folding of most of the memory access address computations").
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from ...dialects import arith
from ...ir.attributes import FloatAttr, IntegerAttr
from ...ir.context import MLContext
from ...ir.core import Operation, SSAValue
from ...ir.pass_manager import ModulePass, PassRegistry
from ...ir.types import i1, is_float_type

Number = Union[int, float]

_INT_FOLDERS: dict[str, Callable[[int, int], int]] = {
    "arith.addi": lambda a, b: a + b,
    "arith.subi": lambda a, b: a - b,
    "arith.muli": lambda a, b: a * b,
    "arith.divsi": lambda a, b: int(a / b) if b != 0 else 0,
    "arith.remsi": lambda a, b: int(a - b * int(a / b)) if b != 0 else 0,
    "arith.floordivsi": lambda a, b: a // b if b != 0 else 0,
    "arith.minsi": min,
    "arith.maxsi": max,
    "arith.andi": lambda a, b: a & b,
    "arith.ori": lambda a, b: a | b,
    "arith.xori": lambda a, b: a ^ b,
    "arith.shli": lambda a, b: a << b,
}

_FLOAT_FOLDERS: dict[str, Callable[[float, float], float]] = {
    "arith.addf": lambda a, b: a + b,
    "arith.subf": lambda a, b: a - b,
    "arith.mulf": lambda a, b: a * b,
    "arith.divf": lambda a, b: a / b if b != 0.0 else float("inf"),
    "arith.maximumf": max,
    "arith.minimumf": min,
    "arith.powf": lambda a, b: a ** b,
}

_CMPI_FOLDERS: dict[str, Callable[[int, int], bool]] = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
    "ult": lambda a, b: abs(a) < abs(b),
    "ule": lambda a, b: abs(a) <= abs(b),
    "ugt": lambda a, b: abs(a) > abs(b),
    "uge": lambda a, b: abs(a) >= abs(b),
}


def _constant_value(value: SSAValue) -> Optional[Number]:
    owner = value.owner
    if isinstance(owner, arith.ConstantOp):
        return owner.literal()
    return None


def _make_constant(value: Number, type_) -> arith.ConstantOp:
    if is_float_type(type_):
        return arith.ConstantOp(FloatAttr(float(value), type_), type_)
    return arith.ConstantOp(IntegerAttr(int(value), type_), type_)


def _try_fold(op: Operation) -> Optional[arith.ConstantOp]:
    if op.name in _INT_FOLDERS or op.name in _FLOAT_FOLDERS:
        lhs = _constant_value(op.operands[0])
        rhs = _constant_value(op.operands[1])
        if lhs is None or rhs is None:
            return None
        folder = _INT_FOLDERS.get(op.name) or _FLOAT_FOLDERS[op.name]
        return _make_constant(folder(lhs, rhs), op.results[0].type)
    if op.name == "arith.negf":
        operand = _constant_value(op.operands[0])
        if operand is None:
            return None
        return _make_constant(-operand, op.results[0].type)
    if op.name == "arith.cmpi":
        lhs = _constant_value(op.operands[0])
        rhs = _constant_value(op.operands[1])
        if lhs is None or rhs is None:
            return None
        assert isinstance(op, arith.CmpiOp)
        result = _CMPI_FOLDERS[op.predicate](int(lhs), int(rhs))
        return _make_constant(int(result), i1)
    if op.name == "arith.select":
        condition = _constant_value(op.operands[0])
        if condition is None:
            return None
        chosen = op.operands[1] if condition else op.operands[2]
        constant = _constant_value(chosen)
        if constant is None:
            return None
        return _make_constant(constant, op.results[0].type)
    if op.name == "arith.index_cast":
        operand = _constant_value(op.operands[0])
        if operand is None:
            return None
        return _make_constant(int(operand), op.results[0].type)
    return None


def _try_algebraic_simplification(op: Operation) -> Optional[SSAValue]:
    """x+0, x*1, x*0 style simplifications returning an existing value."""
    if op.name in ("arith.addi", "arith.addf", "arith.subi", "arith.subf"):
        rhs = _constant_value(op.operands[1])
        if rhs == 0:
            return op.operands[0]
        if op.name in ("arith.addi", "arith.addf"):
            lhs = _constant_value(op.operands[0])
            if lhs == 0:
                return op.operands[1]
    if op.name in ("arith.muli", "arith.mulf"):
        for this, other in ((0, 1), (1, 0)):
            constant = _constant_value(op.operands[this])
            if constant == 1:
                return op.operands[other]
    return None


def fold_constants(module: Operation) -> int:
    """Fold constant arith expressions under ``module``; return the fold count."""
    folded = 0
    changed = True
    while changed:
        changed = False
        for op in list(module.walk()):
            if op.parent is None or not op.results:
                continue
            simplified = _try_algebraic_simplification(op)
            if simplified is not None:
                op.results[0].replace_by(simplified)
                op.erase()
                folded += 1
                changed = True
                continue
            replacement = _try_fold(op)
            if replacement is None:
                continue
            block = op.parent_block
            assert block is not None
            block.insert_op_before(replacement, op)
            op.results[0].replace_by(replacement.results[0])
            op.erase()
            folded += 1
            changed = True
    return folded


class ConstantFoldingPass(ModulePass):
    """Fold arith expressions over compile-time constants."""

    name = "constant-folding"

    def apply(self, ctx: MLContext, module: Operation) -> None:
        fold_constants(module)


PassRegistry.register("constant-folding", ConstantFoldingPass)
