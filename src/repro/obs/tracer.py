"""Span tracer: monotonic-clock spans into a bounded, picklable ring buffer.

A :class:`Tracer` records *spans* (named intervals measured with
``time.perf_counter``) and *counters* for one track — one rank, one thread
team, the session lifecycle, or the compile phase.  Overhead discipline:

* Trace *off* costs one attribute read per hook site (``tracer is None``);
  the megakernel emitter goes further and emits no bookkeeping at all.
* Trace *summary* keeps only per-name totals — O(distinct names) memory.
* Trace *timeline* additionally appends one tuple per span into a
  ``collections.deque`` ring buffer, so memory stays bounded even for
  million-step runs.

Worker processes cannot share a clock with the parent, so every tracer
captures a paired ``(time.time(), time.perf_counter())`` reference at
construction.  :class:`TraceRecord` ships both across the pickle boundary
and :class:`repro.obs.export.TraceTimeline` aligns all tracks onto one
wall-clock axis.

The compile phase has no session to hang a tracer on, so this module also
provides a small thread-local scope — :func:`compile_tracing` — that the
stencil pipeline, the frontends, and the pass manager all share: whoever
enters first owns the tracer, nested entries reuse it.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

#: Recording modes accepted by :class:`Tracer`.  ``ExecutionConfig.trace``
#: adds ``"off"`` on top, which simply means "no tracer is constructed".
TRACE_MODES: Tuple[str, ...] = ("summary", "timeline")

#: Default ring-buffer capacity (spans) for timeline mode.
DEFAULT_RING = 65536


@dataclass
class TraceRecord:
    """Picklable export of one tracer: everything a merge needs.

    ``events`` holds ``(name, start_perf, duration_s, depth)`` tuples in
    span-*end* order; ``depth`` is the nesting depth at which the span ran
    (0 = top level).  ``totals`` maps span name to ``[count, seconds]`` and
    is populated in both recording modes; ``counts`` holds plain counters.
    """

    track: str
    wall_ref: float
    perf_ref: float
    events: List[Tuple[str, float, float, int]]
    totals: dict
    counts: dict


class Tracer:
    """Record spans and counters for one track."""

    __slots__ = ("mode", "track", "events", "totals", "counts", "_depth",
                 "wall_ref", "perf_ref")

    def __init__(self, mode: str = "timeline", *, track: str = "main",
                 maxlen: int = DEFAULT_RING) -> None:
        if mode not in TRACE_MODES:
            raise ValueError(
                f"unknown trace mode {mode!r}; expected one of {TRACE_MODES}")
        self.mode = mode
        self.track = track
        self.events = deque(maxlen=maxlen) if mode == "timeline" else None
        self.totals: dict = {}
        self.counts: dict = {}
        self._depth = 0
        # Paired clock reference for cross-process alignment.
        self.wall_ref = time.time()
        self.perf_ref = time.perf_counter()

    # ------------------------------------------------------------------
    # Spans.  begin/end is the flat API used from generated megakernel
    # code and from hot paths where a context manager would cost a frame.
    # ------------------------------------------------------------------

    def begin(self, name: str) -> float:
        self._depth += 1
        return time.perf_counter()

    def end(self, name: str, start: float) -> None:
        duration = time.perf_counter() - start
        self._depth -= 1
        total = self.totals.get(name)
        if total is None:
            self.totals[name] = [1, duration]
        else:
            total[0] += 1
            total[1] += duration
        if self.events is not None:
            self.events.append((name, start, duration, self._depth))

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        start = self.begin(name)
        try:
            yield
        finally:
            self.end(name, start)

    def instant(self, name: str) -> None:
        """Record a zero-duration marker (e.g. ``worker.error``)."""
        now = time.perf_counter()
        total = self.totals.get(name)
        if total is None:
            self.totals[name] = [1, 0.0]
        else:
            total[0] += 1
        if self.events is not None:
            self.events.append((name, now, 0.0, self._depth))

    # ------------------------------------------------------------------
    # Counters.
    # ------------------------------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + value

    # ------------------------------------------------------------------
    # Export.
    # ------------------------------------------------------------------

    def record(self, track: Optional[str] = None) -> TraceRecord:
        """Snapshot this tracer as a picklable :class:`TraceRecord`."""
        return TraceRecord(
            track=track if track is not None else self.track,
            wall_ref=self.wall_ref,
            perf_ref=self.perf_ref,
            events=list(self.events) if self.events is not None else [],
            totals={name: list(pair) for name, pair in self.totals.items()},
            counts=dict(self.counts),
        )


# ----------------------------------------------------------------------
# Compile-phase tracing scope.
# ----------------------------------------------------------------------

_COMPILE_TLS = threading.local()


def current_compile_tracer() -> Optional[Tracer]:
    """The tracer of the innermost active :func:`compile_tracing` scope."""
    return getattr(_COMPILE_TLS, "tracer", None)


@contextmanager
def compile_tracing(maxlen: int = 8192) -> Iterator[Tracer]:
    """Enter (or join) the thread-local compile-tracing scope.

    The outermost caller — a frontend ``compile()`` or
    ``compile_stencil_program`` itself — creates the tracer and owns its
    lifetime; nested scopes yield the same tracer so frontend lowering and
    pipeline stages land on one track.  Compile tracing is always on: it
    runs once per program, costs microseconds, and the record travels on
    ``CompiledProgram.compile_record`` until a traced run surfaces it.
    """
    tracer = current_compile_tracer()
    if tracer is not None:
        yield tracer
        return
    tracer = Tracer("timeline", track="compile", maxlen=maxlen)
    _COMPILE_TLS.tracer = tracer
    try:
        yield tracer
    finally:
        _COMPILE_TLS.tracer = None
