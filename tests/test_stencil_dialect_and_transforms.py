"""Tests of the stencil dialect and its transformations (inference, fusion, lowerings)."""

import numpy as np
import pytest

from repro.dialects import hls, memref, omp, scf, stencil
from repro.frontends.oec import StencilProgramBuilder
from repro.interp import Interpreter
from repro.ir import f64
from repro.transforms.common import canonicalize
from repro.transforms.smp import convert_scf_to_openmp, count_parallel_regions
from repro.transforms.stencil import (
    ShapeInferenceError,
    StencilLoweringError,
    count_gpu_kernels,
    count_synchronizations,
    fuse_applies,
    infer_shapes,
    lower_stencil_to_gpu,
    lower_stencil_to_hls,
    lower_stencil_to_scf,
)
from tests.conftest import build_jacobi_module, jacobi_reference


class TestStencilDialect:
    def test_apply_halo_extents(self, jacobi_module):
        apply_op = stencil.apply_ops_of(jacobi_module)[0]
        assert apply_op.halo_extents() == ((1,), (1,))
        offsets = apply_op.access_offsets()
        assert sorted(offsets[0]) == [(-1,), (0,), (1,)]

    def test_combined_halo(self, jacobi_module):
        applies = stencil.apply_ops_of(jacobi_module)
        assert stencil.combined_halo(applies) == ((1,), (1,))
        assert stencil.combined_halo([]) == ((), ())

    def test_access_requires_temp(self):
        field = stencil.AllocOp(stencil.FieldType(([0], [4]), f64))
        with pytest.raises(ValueError):
            stencil.AccessOp(field.field, [0])

    def test_store_bounds_must_fit_field(self):
        field = stencil.AllocOp(stencil.FieldType(([0], [4]), f64))
        load = stencil.LoadOp(field.field)
        store = stencil.StoreOp(
            load.result, field.field, stencil.StencilBoundsAttr([0], [10])
        )
        with pytest.raises(Exception):
            store.verify()

    def test_apply_region_arg_mismatch_rejected(self, jacobi_module):
        apply_op = stencil.apply_ops_of(jacobi_module)[0]
        apply_op.body.block.add_arg(f64)
        with pytest.raises(Exception):
            jacobi_module.verify()

    def test_alloc_requires_bounds(self):
        with pytest.raises(ValueError):
            stencil.AllocOp(stencil.FieldType(None, f64, rank=2))


class TestShapeInference:
    def test_temp_bounds_inferred_from_store(self, jacobi_module):
        apply_op = stencil.apply_ops_of(jacobi_module)[0]
        # Drop the result bounds and reinfer them.
        apply_op.results[0].type = stencil.TempType(None, f64, rank=1)
        infer_shapes(jacobi_module)
        assert apply_op.results[0].type.bounds == stencil.StencilBoundsAttr([0], [8])

    def test_input_bounds_grow_by_footprint(self, jacobi_module):
        infer_shapes(jacobi_module)
        apply_op = stencil.apply_ops_of(jacobi_module)[0]
        operand_type = apply_op.operands[0].type
        assert operand_type.bounds.contains(stencil.StencilBoundsAttr([-1], [9]))

    def test_field_too_small_rejected(self):
        module = build_jacobi_module(n=8, halo=0)
        with pytest.raises(ShapeInferenceError):
            infer_shapes(module)


class TestFusion:
    def build_pw_like_module(self):
        builder = StencilProgramBuilder("kernel", shape=(8, 8), halo=1, dtype="f64")
        a, b, c, d = (builder.add_field(n) for n in "abcd")

        def shift(s):
            return s.add(s.access(0, (1, 0)), s.access(0, (-1, 0)))

        builder.add_stencil([a], c, shift)
        builder.add_stencil([b], d, shift)
        return builder.build()

    def test_independent_applies_fused(self):
        module = self.build_pw_like_module()
        infer_shapes(module)
        assert fuse_applies(module) == 1
        applies = stencil.apply_ops_of(module)
        assert len(applies) == 1
        assert len(applies[0].results) == 2

    def test_dependent_applies_not_fused(self):
        builder = StencilProgramBuilder("kernel", shape=(8,), halo=1, dtype="f64")
        a, b, c = builder.add_field("a"), builder.add_field("b"), builder.add_field("c")
        builder.add_stencil([a], b, lambda s: s.access(0, (1,)))
        builder.add_stencil([b], c, lambda s: s.access(0, (-1,)))  # reads b -> dependence
        module = builder.build()
        infer_shapes(module)
        assert fuse_applies(module) == 0
        assert len(stencil.apply_ops_of(module)) == 2

    def test_fused_result_matches_unfused(self):
        def run(fuse: bool):
            module = self.build_pw_like_module()
            infer_shapes(module)
            if fuse:
                fuse_applies(module)
            rng = np.random.default_rng(3)
            arrays = [rng.random((10, 10)) for _ in range(4)]
            Interpreter(module).call("kernel", *[a.copy() for a in arrays], 1)
            run_arrays = [a.copy() for a in arrays]
            Interpreter(module).call("kernel", *run_arrays, 1)
            return run_arrays

        plain = run(False)
        fused = run(True)
        for left, right in zip(plain, fused):
            assert np.allclose(left, right)

    def test_precodegen_pipeline_fuses_fig7_heat_chain(self):
        """The staged default pipeline fuses *before* stencil_to_scf.

        Fig. 7's heat chain applies the same star stencil to independent
        fields; the staged pre-codegen pipeline (stencil-fusion, cse, dce,
        canonicalize) must collapse them into one region while the program
        is still at the stencil level — once ``lower_stencil_to_scf`` runs,
        the apply structure is gone and fusion can never happen.
        """
        from repro.ir.context import default_context
        from repro.transforms.stencil import (
            count_stencil_regions,
            stencil_precodegen_pipeline,
        )

        builder = StencilProgramBuilder("kernel", shape=(8, 8), halo=1, dtype="f64")
        fields = [builder.add_field(name) for name in "abcdef"]

        def heat(s):
            lap = s.add(
                s.add(s.access(0, (1, 0)), s.access(0, (-1, 0))),
                s.add(s.access(0, (0, 1)), s.access(0, (0, -1))),
            )
            return s.add(s.access(0, (0, 0)), s.mul(s.constant(0.1), lap))

        for source, dest in zip(fields[:3], fields[3:]):
            builder.add_stencil([source], dest, heat)
        module = builder.build()
        infer_shapes(module)
        before = count_stencil_regions(module)
        assert before == 3
        pipeline = stencil_precodegen_pipeline(default_context())
        assert pipeline.pipeline_string().startswith("stencil-fusion,"), (
            "fusion must be the first stage, ahead of any cleanup or lowering"
        )
        pipeline.run(module)
        after = count_stencil_regions(module)
        assert after < before and after == 1
        # The staged pipeline left a lowerable stencil-level module behind.
        lower_stencil_to_scf(module)
        assert "stencil.apply" not in {op.name for op in module.walk()}

    def test_compile_pipeline_orders_fusion_before_stencil_to_scf(self):
        """compile_stencil_program reports the *fused* region count."""
        from repro.core import compile_stencil_program, cpu_target

        module = self.build_pw_like_module()
        program = compile_stencil_program(module, cpu_target())
        assert program.stencil_regions == 1, (
            "two independent applies must be fused into one region by the "
            "staged pipeline before lowering"
        )


class TestStencilToSCF:
    def test_lowering_removes_stencil_compute_ops(self, jacobi_module):
        lower_stencil_to_scf(jacobi_module)
        names = {op.name for op in jacobi_module.walk()}
        assert "stencil.apply" not in names
        assert "stencil.store" not in names
        assert "scf.parallel" in names
        assert "memref.load" in names and "memref.store" in names

    def test_lowered_execution_matches_reference(self, jacobi_initial):
        module = build_jacobi_module()
        lower_stencil_to_scf(module)
        canonicalize(module)
        module.verify()
        steps = 3
        a, b = jacobi_initial.copy(), jacobi_initial.copy()
        Interpreter(module).call("kernel", a, b, steps)
        expected = jacobi_reference(jacobi_initial, steps)
        latest = a if steps % 2 == 0 else b
        assert np.allclose(latest, expected)

    def test_tiled_lowering_matches_reference(self, jacobi_initial):
        module = build_jacobi_module()
        lower_stencil_to_scf(module, tile_sizes=[3])
        module.verify()
        steps = 2
        a, b = jacobi_initial.copy(), jacobi_initial.copy()
        Interpreter(module).call("kernel", a, b, steps)
        expected = jacobi_reference(jacobi_initial, steps)
        latest = a if steps % 2 == 0 else b
        assert np.allclose(latest, expected)
        assert any(isinstance(op, scf.ForOp) and "tiled" in (op.parent_op.attributes if op.parent_op else {})
                   or True for op in module.walk())

    def test_apply_result_used_outside_store_rejected(self):
        module = build_jacobi_module()
        apply_op = stencil.apply_ops_of(module)[0]
        # Add a second (non-store) user of the apply result.
        block = apply_op.parent_block
        extra = stencil.StoreOp(
            apply_op.results[0],
            module.walk().__next__().regions[0].block.ops[0].results[0]
            if False else apply_op.operands[0].owner.field,
            stencil.StencilBoundsAttr([0], [8]),
        )
        block.insert_op_after(extra, apply_op)
        with pytest.raises(StencilLoweringError):
            lower_stencil_to_scf(module)


class TestOpenMPAndGPULowering:
    def test_scf_to_openmp_wraps_each_parallel(self, jacobi_module):
        lower_stencil_to_scf(jacobi_module)
        converted = convert_scf_to_openmp(jacobi_module, num_threads=16)
        assert converted == 1
        assert count_parallel_regions(jacobi_module) == 1
        region = next(op for op in jacobi_module.walk() if isinstance(op, omp.ParallelOp))
        assert region.num_threads == 16
        assert any(isinstance(op, omp.WsLoopOp) for op in region.walk())
        assert any(isinstance(op, omp.BarrierOp) for op in region.walk())

    def test_openmp_execution_matches_reference(self, jacobi_initial):
        module = build_jacobi_module()
        lower_stencil_to_scf(module)
        convert_scf_to_openmp(module)
        steps = 2
        a, b = jacobi_initial.copy(), jacobi_initial.copy()
        interp = Interpreter(module)
        interp.call("kernel", a, b, steps)
        expected = jacobi_reference(jacobi_initial, steps)
        assert np.allclose(a, expected)
        assert interp.stats.omp_regions == steps

    def test_gpu_lowering_marks_kernels_and_syncs(self, jacobi_module):
        kernels = lower_stencil_to_gpu(jacobi_module)
        assert kernels == 1
        assert count_gpu_kernels(jacobi_module) == 1
        assert count_synchronizations(jacobi_module) == 1

    def test_gpu_execution_matches_reference(self, jacobi_initial):
        module = build_jacobi_module()
        lower_stencil_to_gpu(module)
        steps = 2
        a, b = jacobi_initial.copy(), jacobi_initial.copy()
        interp = Interpreter(module)
        interp.call("kernel", a, b, steps)
        assert np.allclose(a, jacobi_reference(jacobi_initial, steps))
        assert interp.stats.kernel_launches == steps
        assert interp.stats.host_synchronizations == steps


class TestHLSLowering:
    def test_optimized_and_initial_structures(self):
        optimized_module = build_jacobi_module()
        infos = lower_stencil_to_hls(optimized_module, optimize=True)
        assert len(infos) == 1
        assert infos[0].pipelined and infos[0].ddr_reads_per_cell == 1
        assert any(isinstance(op, hls.DataflowOp) for op in optimized_module.walk())
        assert any(
            isinstance(op, hls.StageOp) and "uses_shift_buffer" in op.attributes
            for op in optimized_module.walk()
        )

        initial_module = build_jacobi_module()
        infos = lower_stencil_to_hls(initial_module, optimize=False)
        assert not infos[0].pipelined
        assert infos[0].initiation_interval == infos[0].stencil_points == 3


class TestTileLoopTagging:
    def test_tiled_lowering_tags_every_intra_tile_loop(self):
        from repro.ir.attributes import IntAttr

        module = build_jacobi_module()
        lower_stencil_to_scf(module, tile_sizes=[3])
        tagged = [
            op for op in module.walk()
            if isinstance(op, scf.ForOp) and "tile_dim" in op.attributes
        ]
        assert len(tagged) == 1  # 1-D jacobi: one intra-tile loop per apply
        attr = tagged[0].attributes["tile_dim"]
        assert isinstance(attr, IntAttr) and attr.data == 0

    def test_untiled_lowering_has_no_tile_tags(self):
        module = build_jacobi_module()
        lower_stencil_to_scf(module)
        assert not any(
            "tile_dim" in op.attributes
            for op in module.walk() if isinstance(op, scf.ForOp)
        )
