"""The canonicalisation pipeline: constant folding + CSE + DCE to a fixpoint."""

from __future__ import annotations

from ...ir.context import MLContext
from ...ir.core import Operation
from ...ir.pass_manager import ModulePass, PassRegistry
from .constant_folding import fold_constants
from .cse import eliminate_common_subexpressions
from .dce import eliminate_dead_code


def canonicalize(module: Operation, max_iterations: int = 10) -> int:
    """Run fold/CSE/DCE repeatedly until nothing changes; return total rewrites."""
    total = 0
    for _ in range(max_iterations):
        changed = 0
        changed += fold_constants(module)
        changed += eliminate_common_subexpressions(module)
        changed += eliminate_dead_code(module)
        total += changed
        if changed == 0:
            break
    return total


class CanonicalizePass(ModulePass):
    """Fold constants, deduplicate pure ops and drop dead code, to a fixpoint."""

    name = "canonicalize"

    def apply(self, ctx: MLContext, module: Operation) -> None:
        canonicalize(module)


PassRegistry.register("canonicalize", CanonicalizePass)
