"""Vectorized backend vs tree-walking interpreter on the Fig. 7 CPU kernels.

The whole point of the shared stack is that the *same* lowered program runs
fast; this benchmark pins the execution-backend speedup contract: on the heat
kernels of fig. 7a (2D, space orders 2/4/8) the vectorized NumPy backend must
be at least 10x faster than the per-cell tree walker while producing
bit-identical fields.
"""

import time

import numpy as np
import pytest

from bench_helpers import attach_rows
from repro.core import run_local
from repro.workloads import heat_diffusion

GRID = (64, 64)
TIMESTEPS = 3
MIN_SPEEDUP = 10.0


def _compiled_heat(space_order):
    workload = heat_diffusion(GRID, space_order=space_order, dtype=np.float64)
    workload.initialise(seed=space_order)
    operator = workload.operator(backend="xdsl")
    program = operator.compile(workload.dt)
    return program, operator._field_arguments()


def _time_backend(program, fields, backend, repeats=1):
    best = float("inf")
    outputs = None
    for _ in range(repeats):
        arrays = [field.copy() for field in fields]
        start = time.perf_counter()
        run_local(program, [*arrays, TIMESTEPS], function="kernel", backend=backend)
        best = min(best, time.perf_counter() - start)
        outputs = arrays
    return best, outputs


@pytest.mark.benchmark(group="backend-speedup")
@pytest.mark.parametrize("space_order", [2, 4, 8])
def test_vectorized_backend_speedup(benchmark, space_order):
    program, fields = _compiled_heat(space_order)
    # Warm the nest-compilation cache so both timings measure pure execution.
    program.compiled_kernel("kernel")

    interp_time, interp_fields = _time_backend(program, fields, "interpreter")
    vector_time, vector_fields = benchmark(
        lambda: _time_backend(program, fields, "vectorized", repeats=3)
    )

    for a, b in zip(interp_fields, vector_fields):
        assert np.array_equal(a, b), "backends diverged"

    speedup = interp_time / vector_time
    attach_rows(
        benchmark,
        "backend-speedup",
        [
            {
                "kernel": f"heat2d-so{space_order}",
                "grid": list(GRID),
                "timesteps": TIMESTEPS,
                "interpreter_s": interp_time,
                "vectorized_s": vector_time,
                "speedup": speedup,
            }
        ],
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized backend is only {speedup:.1f}x faster than the "
        f"interpreter on heat2d-so{space_order} (need >= {MIN_SPEEDUP}x)"
    )
