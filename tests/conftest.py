"""Shared fixtures: small stencil programs used across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dialects import arith, builtin, func, scf, stencil
from repro.ir import Builder, FunctionType, MemRefType, default_context, f64, index


@pytest.fixture
def ctx():
    return default_context()


def build_jacobi_module(n: int = 8, halo: int = 1, coefficient: float = 1.0 / 3.0):
    """A double-buffered 1D Jacobi smoother at the stencil level.

    kernel(%u : field, %v : field, %steps : index) iterates ``steps`` times,
    each step computing v = (u[-1] + u[0] + u[1]) * coefficient over [0, n)
    and swapping the two buffers.
    """
    field_bounds = stencil.StencilBoundsAttr([-halo], [n + halo])
    store_bounds = stencil.StencilBoundsAttr([0], [n])
    field_type = stencil.FieldType(field_bounds, f64)

    kernel = func.FuncOp("kernel", FunctionType([field_type, field_type, index], []))
    u_arg, v_arg, steps = kernel.args
    builder = Builder.at_end(kernel.body.block)
    zero = builder.insert(arith.ConstantOp.from_int(0)).result
    one = builder.insert(arith.ConstantOp.from_int(1)).result
    loop = scf.ForOp(zero, steps, one, iter_args=[u_arg, v_arg])
    builder.insert(loop)
    builder.insert(func.ReturnOp([]))

    body = Builder.at_end(loop.body.block)
    current, nxt = loop.body.block.args[1], loop.body.block.args[2]
    load = body.insert(stencil.LoadOp(current))
    apply_op = stencil.ApplyOp([load.result], [stencil.TempType(store_bounds, f64)])
    body.insert(apply_op)
    inner = Builder.at_end(apply_op.body.block)
    arg = apply_op.region_args[0]
    left = inner.insert(stencil.AccessOp(arg, [-1])).result
    centre = inner.insert(stencil.AccessOp(arg, [0])).result
    right = inner.insert(stencil.AccessOp(arg, [1])).result
    scale = inner.insert(arith.ConstantOp.from_float(coefficient, f64)).result
    total = inner.insert(arith.AddfOp(inner.insert(arith.AddfOp(left, centre)).result, right)).result
    inner.insert(stencil.ReturnOp([inner.insert(arith.MulfOp(total, scale)).result]))
    body.insert(stencil.StoreOp(apply_op.results[0], nxt, store_bounds))
    body.insert(scf.YieldOp([nxt, current]))
    return builtin.ModuleOp([kernel])


def jacobi_reference(initial: np.ndarray, steps: int, halo: int = 1,
                     coefficient: float = 1.0 / 3.0) -> np.ndarray:
    """Numpy reference for :func:`build_jacobi_module` (returns the latest buffer)."""
    n = initial.shape[0] - 2 * halo
    a = initial.astype(np.float64).copy()
    b = a.copy()
    for _ in range(steps):
        for i in range(n):
            b[halo + i] = (a[halo + i - 1] + a[halo + i] + a[halo + i + 1]) * coefficient
        a, b = b, a
    return a


@pytest.fixture
def jacobi_module():
    return build_jacobi_module()


@pytest.fixture
def jacobi_initial():
    data = np.zeros(10)
    data[1:9] = np.arange(8, dtype=float)
    return data


def build_reduce_module(n: int, combine_op, init_value: float):
    """sum/min/max-style reduction of u[i,j]^2 over an n x n memref.

    kernel(%u : memref<nxn>, %out : memref<1>) runs one scf.parallel nest with
    an init value, folds every squared element through ``combine_op`` via
    scf.reduce, and stores the loop result to out[0].  Shared by the backend
    equivalence tests and the reduce speedup benchmark.
    """
    from repro.dialects import arith, memref

    kernel = func.FuncOp(
        "kernel",
        FunctionType([MemRefType([n, n], f64), MemRefType([1], f64)], []),
    )
    u, out = kernel.args
    builder = Builder.at_end(kernel.body.block)
    zero = builder.insert(arith.ConstantOp.from_int(0)).result
    one = builder.insert(arith.ConstantOp.from_int(1)).result
    extent = builder.insert(arith.ConstantOp.from_int(n)).result
    init = builder.insert(arith.ConstantOp.from_float(init_value, f64)).result
    loop = scf.ParallelOp(
        [zero, zero], [extent, extent], [one, one], init_values=[init]
    )
    inner = Builder.at_end(loop.body.block)
    i, j = loop.induction_variables
    value = inner.insert(memref.LoadOp(u, [i, j])).result
    squared = inner.insert(arith.MulfOp(value, value)).result
    inner.insert(scf.ReduceOp.combining(squared, combine_op))
    builder.insert(loop)
    builder.insert(memref.StoreOp(loop.results[0], out, [zero]))
    builder.insert(func.ReturnOp([]))
    return builtin.ModuleOp([kernel])
