"""Benchmark workload generators for the paper's evaluation kernels."""

from .devito_workloads import (
    PAPER_PROBLEM_SIZES,
    PAPER_SPACE_ORDERS,
    PAPER_TIMESTEPS,
    DevitoWorkload,
    acoustic_wave,
    heat_diffusion,
    kernel_label,
    paper_workload,
)
from .psyclone_workloads import (
    PAPER_PW_SCALING_SHAPE,
    PAPER_PW_SIZES_CPU,
    PAPER_PW_SIZES_GPU,
    PAPER_TRAADV_SCALING_SHAPE,
    PAPER_TRAADV_SIZES_CPU,
    PAPER_TRAADV_SIZES_GPU,
    PsycloneWorkload,
    masked_tracer_advection,
    pw_advection,
    tracer_advection,
)

__all__ = [
    "DevitoWorkload", "heat_diffusion", "acoustic_wave", "paper_workload",
    "kernel_label", "PAPER_PROBLEM_SIZES", "PAPER_TIMESTEPS", "PAPER_SPACE_ORDERS",
    "PsycloneWorkload", "pw_advection", "tracer_advection",
    "masked_tracer_advection",
    "PAPER_PW_SIZES_CPU", "PAPER_TRAADV_SIZES_CPU",
    "PAPER_PW_SIZES_GPU", "PAPER_TRAADV_SIZES_GPU",
    "PAPER_PW_SCALING_SHAPE", "PAPER_TRAADV_SCALING_SHAPE",
]
