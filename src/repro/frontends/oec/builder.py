"""An Open-Earth-Compiler-style frontend: build stencil programs directly.

The Open Earth Compiler exposes its programs at the stencil-specification
level; this builder provides the same entry point for users who want to write
stencil-dialect programs programmatically rather than through a symbolic DSL
or Fortran.  It is also what several tests and examples use to construct
hand-written stencil programs concisely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ...dialects import arith, builtin, func, scf, stencil
from ...ir import Builder, FunctionType, SSAValue, f32, f64, index


class BuilderError(Exception):
    """Raised on inconsistent use of the program builder."""


@dataclass
class FieldHandle:
    """A field declared on the builder (becomes a kernel argument)."""

    name: str
    argument_index: int


class StencilExpressionBuilder:
    """Helper handed to stencil body callbacks to emit the per-cell computation."""

    def __init__(self, builder: Builder, apply_op: stencil.ApplyOp, element_type):
        self._builder = builder
        self._apply = apply_op
        self._element_type = element_type

    def access(self, operand_index: int, offset: Sequence[int]) -> SSAValue:
        """Read input ``operand_index`` at a relative ``offset``."""
        arg = self._apply.region_args[operand_index]
        return self._builder.insert(stencil.AccessOp(arg, list(offset))).result

    def constant(self, value: float) -> SSAValue:
        return self._builder.insert(
            arith.ConstantOp.from_float(float(value), self._element_type)
        ).result

    def index(self, dim: int) -> SSAValue:
        return self._builder.insert(stencil.IndexOp(dim)).result

    def add(self, lhs: SSAValue, rhs: SSAValue) -> SSAValue:
        return self._builder.insert(arith.AddfOp(lhs, rhs)).result

    def sub(self, lhs: SSAValue, rhs: SSAValue) -> SSAValue:
        return self._builder.insert(arith.SubfOp(lhs, rhs)).result

    def mul(self, lhs: SSAValue, rhs: SSAValue) -> SSAValue:
        return self._builder.insert(arith.MulfOp(lhs, rhs)).result

    def div(self, lhs: SSAValue, rhs: SSAValue) -> SSAValue:
        return self._builder.insert(arith.DivfOp(lhs, rhs)).result


@dataclass
class _StencilSpec:
    inputs: list[FieldHandle]
    output: FieldHandle
    body: Callable[[StencilExpressionBuilder], SSAValue]


class StencilProgramBuilder:
    """Builds a stencil-level module: fields, stencil sweeps and a time loop."""

    def __init__(
        self,
        name: str = "kernel",
        *,
        shape: Sequence[int],
        halo: int = 1,
        dtype: str = "f32",
    ):
        self.name = name
        self.shape = tuple(int(s) for s in shape)
        self.halo = int(halo)
        self.element_type = f32 if dtype == "f32" else f64
        self._fields: list[FieldHandle] = []
        self._stencils: list[_StencilSpec] = []
        self._swap_pairs: list[tuple[FieldHandle, FieldHandle]] = []

    # -- declarations -----------------------------------------------------------
    def add_field(self, name: str) -> FieldHandle:
        handle = FieldHandle(name=name, argument_index=len(self._fields))
        self._fields.append(handle)
        return handle

    def add_stencil(
        self,
        inputs: Sequence[FieldHandle],
        output: FieldHandle,
        body: Callable[[StencilExpressionBuilder], SSAValue],
    ) -> None:
        """Declare one stencil sweep: read ``inputs``, write ``output``.

        ``body`` receives a :class:`StencilExpressionBuilder` and returns the
        SSA value of the updated cell.
        """
        self._stencils.append(_StencilSpec(list(inputs), output, body))

    def swap(self, first: FieldHandle, second: FieldHandle) -> None:
        """Swap two fields between time-loop iterations (double buffering)."""
        self._swap_pairs.append((first, second))

    # -- module construction ----------------------------------------------------------
    def build(self) -> builtin.ModuleOp:
        """Build the module; the kernel takes all fields plus an iteration count."""
        if not self._stencils:
            raise BuilderError("declare at least one stencil before building")
        rank = len(self.shape)
        field_bounds = stencil.StencilBoundsAttr(
            [-self.halo] * rank, [s + self.halo for s in self.shape]
        )
        store_bounds = stencil.StencilBoundsAttr([0] * rank, list(self.shape))
        field_type = stencil.FieldType(field_bounds, self.element_type)
        temp_type = stencil.TempType(store_bounds, self.element_type)

        arg_types = [field_type] * len(self._fields) + [index]
        kernel = func.FuncOp(self.name, FunctionType(arg_types, []))
        builder = Builder.at_end(kernel.body.block)
        field_args = list(kernel.args[: len(self._fields)])
        iterations = kernel.args[len(self._fields)]

        zero = builder.insert(arith.ConstantOp.from_int(0)).result
        one = builder.insert(arith.ConstantOp.from_int(1)).result
        loop = scf.ForOp(zero, iterations, one, iter_args=field_args)
        builder.insert(loop)
        builder.insert(func.ReturnOp([]))

        body = Builder.at_end(loop.body.block)
        loop_fields = list(loop.body.block.args[1:])

        for spec in self._stencils:
            loads = [
                body.insert(stencil.LoadOp(loop_fields[handle.argument_index]))
                for handle in spec.inputs
            ]
            apply_op = stencil.ApplyOp([load.result for load in loads], [temp_type])
            body.insert(apply_op)
            expression_builder = StencilExpressionBuilder(
                Builder.at_end(apply_op.body.block), apply_op, self.element_type
            )
            result = spec.body(expression_builder)
            Builder.at_end(apply_op.body.block).insert(stencil.ReturnOp([result]))
            body.insert(
                stencil.StoreOp(
                    apply_op.results[0],
                    loop_fields[spec.output.argument_index],
                    store_bounds,
                )
            )

        yielded = list(loop_fields)
        for first, second in self._swap_pairs:
            yielded[first.argument_index], yielded[second.argument_index] = (
                yielded[second.argument_index],
                yielded[first.argument_index],
            )
        body.insert(scf.YieldOp(yielded))
        return builtin.ModuleOp([kernel])

    def compile(self, target=None):
        """Build the module and run the shared pipeline for ``target``.

        The OEC analogue of ``Operator.compile``: one call from builder state
        to a :class:`~repro.core.CompiledProgram` ready for a session plan::

            program = builder.compile(dmp_target((2, 2)))
            with Session(ExecutionConfig(runtime="processes")) as session:
                session.plan(program).run([u, v], [timesteps])
        """
        from ...core import compile_stencil_program, cpu_target
        from ...obs import compile_tracing

        with compile_tracing() as tracer:
            span = tracer.begin("oec.build")
            module = self.build()
            tracer.end("oec.build", span)
            program = compile_stencil_program(module, target or cpu_target())
            program.compile_record = tracer.record()
        return program
