"""Tests of the IR interpreter: arithmetic, control flow, memory, functions."""

import numpy as np
import pytest

from repro.dialects import arith, builtin, func, memref, scf
from repro.interp import Interpreter, InterpreterError, MemRefValue
from repro.ir import Builder, FunctionType, MemRefType, f64, i32, index


def make_kernel(inputs, outputs):
    kernel = func.FuncOp("kernel", FunctionType(inputs, outputs))
    return kernel, Builder.at_end(kernel.body.block)


def run(module, *args, function="kernel"):
    return Interpreter(module).call(function, *args)


class TestArithmetic:
    def test_integer_arithmetic(self):
        kernel, b = make_kernel([i32, i32], [i32])
        x, y = kernel.args
        total = b.insert(arith.AddiOp(x, y)).result
        product = b.insert(arith.MuliOp(total, x)).result
        b.insert(func.ReturnOp([product]))
        assert run(builtin.ModuleOp([kernel]), 3, 4) == [21]

    def test_float_arithmetic_and_compare(self):
        kernel, b = make_kernel([f64, f64], [f64]);
        x, y = kernel.args
        quotient = b.insert(arith.DivfOp(x, y)).result
        is_bigger = b.insert(arith.CmpfOp("ogt", quotient, y)).result
        chosen = b.insert(arith.SelectOp(is_bigger, quotient, y)).result
        b.insert(func.ReturnOp([chosen]))
        assert run(builtin.ModuleOp([kernel]), 8.0, 2.0) == [4.0]

    def test_casts(self):
        kernel, b = make_kernel([index], [f64])
        as_float = b.insert(arith.SIToFPOp(kernel.args[0], f64)).result
        b.insert(func.ReturnOp([as_float]))
        assert run(builtin.ModuleOp([kernel]), 7) == [7.0]

    def test_integer_min_max(self):
        kernel, b = make_kernel([i32, i32], [i32, i32])
        lo = b.insert(arith.MinSIOp(*kernel.args)).result
        hi = b.insert(arith.MaxSIOp(*kernel.args)).result
        b.insert(func.ReturnOp([lo, hi]))
        assert run(builtin.ModuleOp([kernel]), 9, -3) == [-3, 9]


class TestControlFlow:
    def test_for_loop_with_iter_args(self):
        # Sum 0..n-1 via a loop-carried accumulator.
        kernel, b = make_kernel([index], [index])
        zero = b.insert(arith.ConstantOp.from_int(0)).result
        one = b.insert(arith.ConstantOp.from_int(1)).result
        loop = scf.ForOp(zero, kernel.args[0], one, iter_args=[zero])
        b.insert(loop)
        inner = Builder.at_end(loop.body.block)
        accumulated = inner.insert(
            arith.AddiOp(loop.body.block.args[1], loop.induction_variable)
        ).result
        inner.insert(scf.YieldOp([accumulated]))
        b.insert(func.ReturnOp([loop.results[0]]))
        assert run(builtin.ModuleOp([kernel]), 5) == [10]

    def test_if_with_results(self):
        kernel, b = make_kernel([i32], [i32])
        ten = b.insert(arith.ConstantOp.from_int(10, i32)).result
        cond = b.insert(arith.CmpiOp("sgt", kernel.args[0], ten)).result
        if_op = scf.IfOp(cond, [i32])
        Builder.at_end(if_op.then_region.block).insert(scf.YieldOp([kernel.args[0]]))
        Builder.at_end(if_op.else_region.block).insert(scf.YieldOp([ten]))
        b.insert(if_op)
        b.insert(func.ReturnOp([if_op.results[0]]))
        module = builtin.ModuleOp([kernel])
        assert run(module, 50) == [50]
        assert run(module, 3) == [10]

    def test_parallel_loop_visits_every_cell(self):
        kernel, b = make_kernel([], [])
        buffer = b.insert(memref.AllocOp(MemRefType([4, 3], f64))).memref
        zero = b.insert(arith.ConstantOp.from_int(0)).result
        one = b.insert(arith.ConstantOp.from_int(1)).result
        four = b.insert(arith.ConstantOp.from_int(4)).result
        three = b.insert(arith.ConstantOp.from_int(3)).result
        loop = scf.ParallelOp([zero, zero], [four, three], [one, one])
        inner = Builder.at_end(loop.body.block)
        value = inner.insert(arith.ConstantOp.from_float(1.0, f64)).result
        inner.insert(memref.StoreOp(value, buffer, list(loop.induction_variables)))
        inner.insert(scf.YieldOp([]))
        b.insert(loop)
        b.insert(func.ReturnOp([]))
        interp = Interpreter(builtin.ModuleOp([kernel]))
        interp.call("kernel")
        assert interp.stats.cells_updated == 12

    def test_function_call(self):
        callee, cb = make_kernel([i32], [i32])
        callee.attributes["sym_name"] = __import__("repro").ir.StringAttr("double")
        doubled = cb.insert(arith.AddiOp(callee.args[0], callee.args[0])).result
        cb.insert(func.ReturnOp([doubled]))
        caller, b = make_kernel([i32], [i32])
        call = b.insert(func.CallOp("double", [caller.args[0]], [i32]))
        b.insert(func.ReturnOp([call.results[0]]))
        module = builtin.ModuleOp([callee, caller])
        assert run(module, 21) == [42]

    def test_unknown_function_call_raises(self):
        caller, b = make_kernel([], [])
        b.insert(func.CallOp("missing", [], []))
        b.insert(func.ReturnOp([]))
        with pytest.raises(InterpreterError):
            run(builtin.ModuleOp([caller]))


class TestMemory:
    def test_alloc_load_store(self):
        kernel, b = make_kernel([], [f64])
        buffer = b.insert(memref.AllocOp(MemRefType([4], f64))).memref
        two = b.insert(arith.ConstantOp.from_int(2)).result
        value = b.insert(arith.ConstantOp.from_float(3.5, f64)).result
        b.insert(memref.StoreOp(value, buffer, [two]))
        loaded = b.insert(memref.LoadOp(buffer, [two])).result
        b.insert(func.ReturnOp([loaded]))
        assert run(builtin.ModuleOp([kernel])) == [3.5]

    def test_subview_and_copy_share_semantics(self):
        kernel, b = make_kernel([], [])
        big = b.insert(memref.AllocOp(MemRefType([6], f64))).memref
        small = b.insert(memref.AllocOp(MemRefType([2], f64))).memref
        one = b.insert(arith.ConstantOp.from_int(1)).result
        value = b.insert(arith.ConstantOp.from_float(9.0, f64)).result
        b.insert(memref.StoreOp(value, small, [one]))
        view = b.insert(memref.SubviewOp(big, [2], [2])).result
        b.insert(memref.CopyOp(small, view))
        b.insert(func.ReturnOp([]))
        interp = Interpreter(builtin.ModuleOp([kernel]))
        interp.call("kernel")

    def test_memref_arguments_wrap_numpy(self):
        kernel, b = make_kernel([MemRefType([3], f64)], [f64])
        zero = b.insert(arith.ConstantOp.from_int(0)).result
        loaded = b.insert(memref.LoadOp(kernel.args[0], [zero])).result
        b.insert(func.ReturnOp([loaded]))
        data = np.array([1.5, 2.5, 3.5])
        assert run(builtin.ModuleOp([kernel]), data) == [1.5]

    def test_memref_value_helpers(self):
        value = MemRefValue.allocate((4, 4), f64, origin=(-1, -1))
        assert value.shape == (4, 4)
        assert value.logical_index((0, 0)) == (1, 1)
        view = value.view((1, 1), (2, 2))
        view.array[:] = 5.0
        assert value.array[1, 1] == 5.0

    def test_pointer_round_trip(self):
        kernel, b = make_kernel([], [index])
        buffer = b.insert(memref.AllocOp(MemRefType([4], f64))).memref
        address = b.insert(memref.ExtractAlignedPointerAsIndexOp(buffer)).result
        b.insert(func.ReturnOp([address]))
        interp = Interpreter(builtin.ModuleOp([kernel]))
        (address,) = interp.call("kernel")
        assert interp.buffer_at(address).shape == (4,)


class TestErrors:
    def test_unknown_operation(self):
        kernel, b = make_kernel([], [])
        from repro.ir.parser import UnregisteredOp

        b.insert(UnregisteredOp.with_name("mystery.op").create())
        b.insert(func.ReturnOp([]))
        with pytest.raises(InterpreterError):
            run(builtin.ModuleOp([kernel]))

    def test_argument_count_checked(self):
        kernel, b = make_kernel([i32], [])
        b.insert(func.ReturnOp([]))
        with pytest.raises(InterpreterError):
            run(builtin.ModuleOp([kernel]))

    def test_missing_function(self):
        with pytest.raises(InterpreterError):
            Interpreter(builtin.ModuleOp([])).call("nope")
