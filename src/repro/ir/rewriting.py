"""Pattern-rewrite infrastructure.

A :class:`RewritePattern` matches a single operation and rewrites it through a
:class:`PatternRewriter`.  The :class:`PatternRewriteWalker` (greedy driver)
repeatedly walks a module applying patterns until a fixpoint is reached.
This is the mechanism every lowering pass in :mod:`repro.transforms` uses.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .core import Block, IRError, Operation, SSAValue


class RewriteError(IRError):
    """Raised when a rewrite would produce invalid IR."""


class PatternRewriter:
    """Mutation interface handed to rewrite patterns.

    Records whether any modification happened so the driver knows when the
    fixpoint is reached.
    """

    def __init__(self, current_op: Operation):
        self.current_op = current_op
        self.has_done_action = False
        #: Operations inserted by the pattern; the driver will revisit them.
        self.added_operations: list[Operation] = []

    # -- insertion -------------------------------------------------------------
    def insert_op_before_matched_op(self, ops: Operation | Sequence[Operation]) -> None:
        self.insert_op_before(ops, self.current_op)

    def insert_op_after_matched_op(self, ops: Operation | Sequence[Operation]) -> None:
        self.insert_op_after(ops, self.current_op)

    def insert_op_before(
        self, ops: Operation | Sequence[Operation], anchor: Operation
    ) -> None:
        block = anchor.parent_block
        if block is None:
            raise RewriteError("anchor operation is not attached to a block")
        for op in _as_ops(ops):
            block.insert_op_before(op, anchor)
            self.added_operations.append(op)
        self.has_done_action = True

    def insert_op_after(
        self, ops: Operation | Sequence[Operation], anchor: Operation
    ) -> None:
        block = anchor.parent_block
        if block is None:
            raise RewriteError("anchor operation is not attached to a block")
        for op in reversed(_as_ops(ops)):
            block.insert_op_after(op, anchor)
            self.added_operations.append(op)
        self.has_done_action = True

    def insert_op_at_end(self, ops: Operation | Sequence[Operation], block: Block) -> None:
        for op in _as_ops(ops):
            block.add_op(op)
            self.added_operations.append(op)
        self.has_done_action = True

    def insert_op_at_start(self, ops: Operation | Sequence[Operation], block: Block) -> None:
        ops_list = _as_ops(ops)
        if block.ops:
            anchor = block.ops[0]
            for op in ops_list:
                block.insert_op_before(op, anchor)
                self.added_operations.append(op)
        else:
            for op in ops_list:
                block.add_op(op)
                self.added_operations.append(op)
        self.has_done_action = True

    # -- replacement -----------------------------------------------------------
    def replace_matched_op(
        self,
        new_ops: Operation | Sequence[Operation],
        new_results: Optional[Sequence[Optional[SSAValue]]] = None,
    ) -> None:
        self.replace_op(self.current_op, new_ops, new_results)

    def replace_op(
        self,
        op: Operation,
        new_ops: Operation | Sequence[Operation],
        new_results: Optional[Sequence[Optional[SSAValue]]] = None,
    ) -> None:
        """Replace ``op`` by ``new_ops``.

        Results of ``op`` are replaced by ``new_results`` (defaults to the
        results of the last new operation).  ``None`` entries mean the
        corresponding result must be unused.
        """
        ops_list = _as_ops(new_ops)
        block = op.parent_block
        if block is None:
            raise RewriteError(f"cannot replace detached operation {op.name}")
        if new_results is None:
            new_results = ops_list[-1].results if ops_list else []
        if len(new_results) != len(op.results):
            raise RewriteError(
                f"replacing {op.name}: expected {len(op.results)} replacement "
                f"results, got {len(new_results)}"
            )
        for new_op in ops_list:
            block.insert_op_before(new_op, op)
            self.added_operations.append(new_op)
        for old_result, new_result in zip(op.results, new_results):
            if new_result is None:
                if old_result.uses:
                    raise RewriteError(
                        f"result of {op.name} still has uses but no replacement given"
                    )
                continue
            old_result.replace_by(new_result)
        op.erase()
        self.has_done_action = True

    def erase_matched_op(self) -> None:
        self.erase_op(self.current_op)

    def erase_op(self, op: Operation) -> None:
        op.erase()
        self.has_done_action = True

    def replace_all_uses_with(self, old: SSAValue, new: SSAValue) -> None:
        old.replace_by(new)
        self.has_done_action = True

    # -- region surgery ----------------------------------------------------------
    def inline_block_before(
        self,
        block: Block,
        anchor: Operation,
        arg_values: Sequence[SSAValue] = (),
    ) -> None:
        """Move all ops of ``block`` before ``anchor``, substituting block args."""
        if len(arg_values) != len(block.args):
            raise RewriteError(
                f"inlining block with {len(block.args)} arguments but "
                f"{len(arg_values)} values were provided"
            )
        for arg, value in zip(block.args, arg_values):
            arg.replace_by(value)
        target_block = anchor.parent_block
        if target_block is None:
            raise RewriteError("anchor operation is not attached to a block")
        for op in list(block.ops):
            block.detach_op(op)
            target_block.insert_op_before(op, anchor)
        self.has_done_action = True

    def notify_changed(self) -> None:
        self.has_done_action = True


class RewritePattern:
    """Base class for rewrite patterns; subclasses override ``match_and_rewrite``."""

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        raise NotImplementedError


class TypedPattern(RewritePattern):
    """A pattern that only fires on a specific operation class."""

    op_type: type[Operation] = Operation

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        if isinstance(op, self.op_type):
            self.match_and_rewrite_typed(op, rewriter)

    def match_and_rewrite_typed(self, op, rewriter: PatternRewriter) -> None:
        raise NotImplementedError


class GreedyRewritePatternApplier(RewritePattern):
    """Tries a list of patterns in order; first modification wins."""

    def __init__(self, patterns: Iterable[RewritePattern]):
        self.patterns = list(patterns)

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> None:
        for pattern in self.patterns:
            pattern.match_and_rewrite(op, rewriter)
            if rewriter.has_done_action:
                return


class PatternRewriteWalker:
    """Greedy driver: walk the IR applying a pattern until nothing changes."""

    def __init__(
        self,
        pattern: RewritePattern,
        *,
        apply_recursively: bool = True,
        walk_reverse: bool = False,
        max_iterations: int = 200,
    ):
        self.pattern = pattern
        self.apply_recursively = apply_recursively
        self.walk_reverse = walk_reverse
        self.max_iterations = max_iterations

    def rewrite_module(self, module: Operation) -> bool:
        """Apply the pattern to every op under ``module``; return whether it changed."""
        changed_anything = False
        for _ in range(self.max_iterations):
            changed = self._single_sweep(module)
            changed_anything |= changed
            if not changed or not self.apply_recursively:
                break
        return changed_anything

    def _single_sweep(self, module: Operation) -> bool:
        changed = False
        worklist = [op for op in module.walk(reverse=self.walk_reverse) if op is not module]
        for op in worklist:
            if op.parent is None:
                continue  # erased by a previous rewrite in this sweep
            rewriter = PatternRewriter(op)
            self.pattern.match_and_rewrite(op, rewriter)
            if rewriter.has_done_action:
                changed = True
        return changed


def _as_ops(ops: Operation | Sequence[Operation]) -> list[Operation]:
    if isinstance(ops, Operation):
        return [ops]
    return list(ops)
