"""Experiment harness regenerating every table and figure of the paper."""

from .experiments import (
    ALL_EXPERIMENTS,
    figure7_devito_cpu,
    figure8_strong_scaling,
    figure9_devito_gpu,
    figure10a_psyclone_cpu,
    figure10b_psyclone_gpu,
    figure11_psyclone_scaling,
    format_rows,
    run_all,
    table1_fpga,
)

__all__ = [
    "figure7_devito_cpu", "figure8_strong_scaling", "figure9_devito_gpu",
    "figure10a_psyclone_cpu", "figure10b_psyclone_gpu", "figure11_psyclone_scaling",
    "table1_fpga", "run_all", "format_rows", "ALL_EXPERIMENTS",
]
