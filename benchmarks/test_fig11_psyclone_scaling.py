"""Figure 11: strong scaling of xDSL-PSyclone (PW and tracer advection, 2D decomposition)."""

import numpy as np
import pytest

from bench_helpers import attach_rows
from repro.core import compile_stencil_program, default_session, dmp_target
from repro.evaluation import figure11_psyclone_scaling
from repro.workloads import masked_tracer_advection


@pytest.mark.benchmark(group="figure11")
def test_figure11_rows(benchmark):
    rows = benchmark(figure11_psyclone_scaling, (1, 2, 4, 8, 16, 32, 64, 128))
    attach_rows(benchmark, "figure11", rows)
    for name in ("pw", "traadv"):
        series = [r for r in rows if r["benchmark"] == name]
        throughputs = [r["gpts"] for r in series]
        # Monotone growth but far from ideal at 128 nodes (small global problem).
        assert all(b >= a for a, b in zip(throughputs, throughputs[1:]))
        assert throughputs[-1] / throughputs[0] < 128 * 0.5


@pytest.mark.parametrize(
    "rank_grid,threads_per_rank",
    [((2, 1, 1), 1), ((2, 1, 1), 2), ((2, 2, 1), 1), ((2, 2, 1), 2)],
    ids=["2ranksx1t", "2ranksx2t", "4ranksx1t", "4ranksx2t"],
)
def test_fig11_hybrid_tracer_execution(rank_grid, threads_per_rank):
    """Hybrid (ranks x threads) execution of the fig. 11 tracer kernel.

    The real distributed run of the masked NEMO tracer-advection workload
    across the paper's hybrid sweep shapes: every configuration must produce
    bit-identical fields and matching communication statistics.
    """
    workload = masked_tracer_advection((10, 10, 6), iterations=2, computations=4)
    module = workload.build_module(dtype=np.float64)
    reference_program = compile_stencil_program(
        workload.build_module(dtype=np.float64), dmp_target((2, 1, 1))
    )
    names = workload.schedule.array_names()
    source = workload.arrays(halo=1, dtype=np.float64, seed=11)

    reference = [source[name].copy() for name in names]
    default_session().run(
        reference_program, reference, [workload.iterations],
        function=workload.schedule.name, runtime="threads",
    )

    program = compile_stencil_program(module, dmp_target(rank_grid))
    fields = [source[name].copy() for name in names]
    result = default_session().run(
        program, fields, [workload.iterations],
        function=workload.schedule.name,
        runtime="threads", threads_per_rank=threads_per_rank,
    )
    assert result.threads_per_rank == threads_per_rank
    assert result.messages_sent > 0
    for a, b in zip(reference, fields):
        assert np.array_equal(a, b)
