"""Operation traits.

Traits attach generic, reusable properties to operations (e.g. "this op is a
terminator", "this op has no side effects").  Passes query traits instead of
hard-coding per-op knowledge.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .core import Operation


class OpTrait:
    """Base class for operation traits."""

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))

    def verify(self, op: "Operation") -> None:
        """Trait-specific structural verification."""


class IsTerminator(OpTrait):
    """The operation terminates its block (e.g. return, yield)."""

    def verify(self, op: "Operation") -> None:
        block = op.parent_block
        if block is not None and block.last_op is not op:
            raise ValueError(
                f"terminator {op.name} must be the last operation of its block"
            )


class Pure(OpTrait):
    """The operation has no side effects and can be CSE'd or dead-code eliminated."""


class HasParent(OpTrait):
    """The operation must be nested directly inside one of the given op types."""

    def __init__(self, *parent_names: str):
        self.parent_names = tuple(parent_names)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.parent_names))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, HasParent) and self.parent_names == other.parent_names

    def verify(self, op: "Operation") -> None:
        parent = op.parent_op
        if parent is None:
            raise ValueError(f"{op.name} must be nested inside {self.parent_names}")
        if parent.name not in self.parent_names:
            raise ValueError(
                f"{op.name} must be nested inside one of {self.parent_names}, "
                f"found {parent.name}"
            )


class IsolatedFromAbove(OpTrait):
    """Regions of the op may not reference SSA values defined outside it."""


class SymbolOp(OpTrait):
    """The operation defines a symbol (looked up by name, e.g. func.func)."""


class ConstantLike(OpTrait):
    """The operation materialises a compile-time constant."""


class MemoryReadEffect(OpTrait):
    """The operation reads from memory."""


class MemoryWriteEffect(OpTrait):
    """The operation writes to memory."""


class CommunicationEffect(OpTrait):
    """The operation performs communication (message passing)."""


def is_pure(op: "Operation") -> bool:
    """Whether an op is side-effect free (pure trait and pure nested regions)."""
    if not op.has_trait(Pure):
        return False
    for region in op.regions:
        for block in region.blocks:
            for nested in block.ops:
                if not is_pure(nested) and not nested.has_trait(IsTerminator):
                    return False
    return True


def has_side_effects(op: "Operation") -> bool:
    """Whether an op (or anything nested in it) may touch memory or communicate."""
    for nested in op.walk():
        if nested.has_trait(MemoryWriteEffect) or nested.has_trait(CommunicationEffect):
            return True
        if nested.name.startswith("func.call"):
            return True
    return False
