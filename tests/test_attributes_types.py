"""Tests of attributes, builtin types and stencil/dmp attribute helpers."""

import pytest

from repro.dialects import dmp, stencil
from repro.ir import (
    ArrayAttr,
    BoolAttr,
    DenseArrayAttr,
    DictionaryAttr,
    FloatAttr,
    FunctionType,
    IntAttr,
    IntegerAttr,
    IntegerType,
    MemRefType,
    StringAttr,
    SymbolRefAttr,
    UnitAttr,
    bytewidth_of,
    f32,
    f64,
    i1,
    i32,
    i64,
    index,
    is_float_type,
    is_integer_like,
)


class TestAttributes:
    def test_structural_equality_and_hash(self):
        assert IntegerAttr(3, i32) == IntegerAttr(3, i32)
        assert IntegerAttr(3, i32) != IntegerAttr(3, i64)
        assert hash(StringAttr("x")) == hash(StringAttr("x"))
        assert FloatAttr(1.5, f64) != FloatAttr(1.5, f32)

    def test_negative_offsets_not_conflated(self):
        # Regression guard for the CPython hash(-1) == hash(-2) pitfall.
        a = DenseArrayAttr([-1, 0], i64)
        b = DenseArrayAttr([-2, 0], i64)
        assert a != b

    def test_array_attr_behaves_like_sequence(self):
        attr = ArrayAttr([IntAttr(1), IntAttr(2)])
        assert len(attr) == 2
        assert list(attr) == [IntAttr(1), IntAttr(2)]
        assert attr[1] == IntAttr(2)

    def test_dictionary_attr(self):
        attr = DictionaryAttr({"a": IntAttr(1), "b": BoolAttr(True)})
        assert "a" in attr and attr["b"] == BoolAttr(True)
        assert attr == DictionaryAttr({"b": BoolAttr(True), "a": IntAttr(1)})

    def test_symbol_ref(self):
        assert SymbolRefAttr("foo").string_value == "foo"
        assert SymbolRefAttr(StringAttr("foo")) == SymbolRefAttr("foo")

    def test_unit_attr_equality(self):
        assert UnitAttr() == UnitAttr()


class TestTypes:
    def test_scalar_type_properties(self):
        assert str(IntegerType(32)) == "i32"
        assert bytewidth_of(f32) == 4 and bytewidth_of(f64) == 8
        assert bytewidth_of(i1) == 1
        assert is_float_type(f64) and not is_float_type(i32)
        assert is_integer_like(index)

    def test_memref_type(self):
        memref = MemRefType([4, 8], f32)
        assert memref.rank == 2
        assert memref.element_count() == 32
        assert memref.has_static_shape()
        assert str(memref) == "memref<4x8xf32>"

    def test_function_type(self):
        ftype = FunctionType([i32, f64], [i32])
        assert ftype.inputs == (i32, f64)
        assert ftype.outputs == (i32,)
        assert FunctionType([i32, f64], [i32]) == ftype


class TestStencilBounds:
    def test_shape_and_size(self):
        bounds = stencil.StencilBoundsAttr([-2, 0], [10, 8])
        assert bounds.shape == (12, 8)
        assert bounds.size() == 96
        assert bounds.rank == 2

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            stencil.StencilBoundsAttr([0], [0, 1])
        with pytest.raises(ValueError):
            stencil.StencilBoundsAttr([5], [4])

    def test_grow_intersect_contains(self):
        bounds = stencil.StencilBoundsAttr([0, 0], [8, 8])
        grown = bounds.grown_by([1, 2], [1, 2])
        assert grown == stencil.StencilBoundsAttr([-1, -2], [9, 10])
        assert grown.contains(bounds)
        assert not bounds.contains(grown)
        assert grown.intersect(bounds) == bounds

    def test_text_round_trip(self):
        bounds = stencil.StencilBoundsAttr([-1, 3], [7, 9])
        text = bounds.print_parameters(None)
        assert stencil.StencilBoundsAttr.parse_parameters(text) == bounds

    def test_field_and_temp_types(self):
        field = stencil.FieldType(([-1, -1], [9, 9]), f64)
        assert field.rank == 2
        assert field.shape == (10, 10)
        unbounded = stencil.TempType(None, f32, rank=3)
        assert not unbounded.has_bounds()
        assert unbounded.rank == 3
        with pytest.raises(ValueError):
            _ = unbounded.shape


class TestDmpAttributes:
    def test_grid_coordinates_round_trip(self):
        grid = dmp.GridAttr([2, 3])
        assert grid.rank_count == 6
        for rank in range(6):
            assert grid.rank_of(grid.coords_of(rank)) == rank

    def test_grid_neighbors(self):
        grid = dmp.GridAttr([2, 2])
        assert grid.neighbor_of(0, (0, 1)) == 1
        assert grid.neighbor_of(0, (1, 0)) == 2
        assert grid.neighbor_of(0, (0, -1)) is None
        assert grid.neighbor_of(3, (1, 0)) is None

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            dmp.GridAttr([])
        with pytest.raises(ValueError):
            dmp.GridAttr([0, 2])

    def test_exchange_regions(self):
        exchange = dmp.ExchangeAttr([4, 0], [100, 4], [0, 4], [0, -1])
        assert exchange.element_count() == 400
        recv_offset, recv_size = exchange.recv_region
        send_offset, send_size = exchange.send_region
        assert recv_offset == (4, 0) and recv_size == (100, 4)
        assert send_offset == (4, 4) and send_size == (100, 4)
        assert not exchange.is_empty()

    def test_exchange_text_round_trip(self):
        exchange = dmp.ExchangeAttr([4, 0], [100, 4], [0, 4], [0, -1])
        text = exchange.print_parameters(None)
        assert dmp.ExchangeAttr.parse_parameters(text) == exchange

    def test_exchange_validation(self):
        with pytest.raises(ValueError):
            dmp.ExchangeAttr([0], [1, 1], [0], [0])
        with pytest.raises(ValueError):
            dmp.ExchangeAttr([0], [-1], [0], [1])
