"""Figure 11: strong scaling of xDSL-PSyclone (PW and tracer advection, 2D decomposition)."""

import pytest

from bench_helpers import attach_rows
from repro.evaluation import figure11_psyclone_scaling


@pytest.mark.benchmark(group="figure11")
def test_figure11_rows(benchmark):
    rows = benchmark(figure11_psyclone_scaling, (1, 2, 4, 8, 16, 32, 64, 128))
    attach_rows(benchmark, "figure11", rows)
    for name in ("pw", "traadv"):
        series = [r for r in rows if r["benchmark"] == name]
        throughputs = [r["gpts"] for r in series]
        # Monotone growth but far from ideal at 128 nodes (small global problem).
        assert all(b >= a for a, b in zip(throughputs, throughputs[1:]))
        assert throughputs[-1] / throughputs[0] < 128 * 0.5
