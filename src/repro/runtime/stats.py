"""Picklable per-rank statistics and their deterministic parent-side merge.

Workers of the process runtime report one :class:`RankStats` each over the
result queue; both payload types (:class:`~repro.interp.ExecStatistics` and
:class:`~repro.interp.CommStatistics`) are plain int dataclasses, so they
cross the process boundary untouched.  The parent merges them *in rank order*
so repeated runs — and the thread runtime, whose world keeps one shared
counter set — always produce identical aggregate numbers.

The merges are implemented on :class:`repro.obs.MetricsRegistry`: every rank
is ingested into the flat counter namespace and the dataclass is
materialised back out.  Both directions are plain integer sums over
``dataclasses.fields`` in rank order, so the results are bit-identical to
the hand-written field-by-field merges they replaced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from ..interp.interpreter import ExecStatistics
from ..interp.mpi_runtime import CommStatistics
from ..obs.registry import MetricsRegistry


@dataclass
class RankStats:
    """Everything one worker reports about one rank of one run."""

    rank: int
    exec_stats: ExecStatistics
    comm_stats: CommStatistics
    #: The rank's :class:`repro.obs.TraceRecord` when the run was traced
    #: (spans recorded against the worker's local monotonic clock; the
    #: parent's timeline merge re-aligns them), else None.
    trace: Optional[Any] = None


def merge_comm_statistics(per_rank: Sequence[CommStatistics]) -> CommStatistics:
    """Sum per-rank communication counters (rank order, hence deterministic).

    The thread world counts every ``post_message`` into one shared
    :class:`CommStatistics`; summing each process rank's local counters yields
    the same totals because both runtimes run the identical collective
    algorithms of :class:`~repro.interp.mpi_runtime.CommunicatorBase`.
    """
    registry = MetricsRegistry()
    registry.ingest_all(per_rank, "comm.")
    return registry.as_comm_statistics()


def combine_exec_statistics(per_rank: Sequence[ExecStatistics]) -> ExecStatistics:
    """Sum per-rank execution counters into one world-wide summary."""
    registry = MetricsRegistry()
    registry.ingest_all(per_rank, "exec.")
    return registry.as_exec_statistics()


def sort_rank_stats(reports: Sequence[RankStats]) -> list[RankStats]:
    """Order worker reports by rank (workers finish in arbitrary order)."""
    ordered = sorted(reports, key=lambda report: report.rank)
    ranks = [report.rank for report in ordered]
    if ranks != list(range(len(ordered))):
        raise ValueError(f"incomplete or duplicated rank reports: {ranks}")
    return ordered
