"""Tests of the mini-Devito frontend: symbolics, FD coefficients, Operator back-ends."""

import numpy as np
import pytest

from repro.core import dmp_target, smp_target
from repro.dialects import scf, stencil
from repro.frontends.devito import (
    Access,
    Eq,
    Grid,
    Operator,
    OperatorError,
    SolveError,
    TimeFunction,
    central_difference_coefficients,
    solve,
)


class TestSymbolics:
    def test_grid_properties(self):
        grid = Grid(shape=(10, 20), extent=(1.0, 2.0))
        assert grid.ndim == 2
        assert grid.spacing == (1.0 / 9, 2.0 / 19)
        assert [d.name for d in grid.dimensions] == ["x", "y"]

    def test_time_function_buffers_and_halo(self):
        grid = Grid(shape=(8, 8))
        u = TimeFunction(name="u", grid=grid, space_order=4, time_order=2)
        assert u.halo == 2
        assert u.buffers == 3
        assert u.data_with_halo.shape == (3, 12, 12)
        assert u.data.shape == (3, 8, 8)

    def test_invalid_orders_rejected(self):
        grid = Grid(shape=(8,))
        with pytest.raises(ValueError):
            TimeFunction(name="u", grid=grid, space_order=3)
        with pytest.raises(ValueError):
            TimeFunction(name="u", grid=grid, time_order=4)

    def test_expression_building(self):
        grid = Grid(shape=(8,))
        u = TimeFunction(name="u", grid=grid, space_order=2)
        expr = 2.0 * u.laplace + u.forward - 1.0
        accesses = expr.accesses()
        assert any(a.time_offset == 1 for a in accesses)
        assert {a.space_offsets for a in accesses} >= {(-1,), (0,), (1,)}

    def test_laplace_offsets_match_space_order(self):
        grid = Grid(shape=(8, 8))
        u = TimeFunction(name="u", grid=grid, space_order=4)
        offsets = {a.space_offsets for a in u.laplace.accesses()}
        assert (2, 0) in offsets and (0, -2) in offsets


class TestFiniteDifferences:
    def test_second_order_second_derivative(self):
        coefficients = dict(central_difference_coefficients(2, 2))
        assert coefficients == pytest.approx({-1: 1.0, 0: -2.0, 1: 1.0})

    def test_fourth_order_second_derivative(self):
        coefficients = dict(central_difference_coefficients(2, 4))
        assert coefficients[0] == pytest.approx(-2.5)
        assert coefficients[1] == pytest.approx(4.0 / 3.0)
        assert coefficients[2] == pytest.approx(-1.0 / 12.0)

    def test_coefficients_sum_to_zero(self):
        for space_order in (2, 4, 8):
            coefficients = central_difference_coefficients(2, space_order)
            assert sum(c for _, c in coefficients) == pytest.approx(0.0, abs=1e-9)

    def test_first_derivative_antisymmetric(self):
        coefficients = dict(central_difference_coefficients(1, 2))
        assert coefficients[1] == pytest.approx(-coefficients[-1])

    def test_derivative_exact_on_polynomials(self):
        # The order-4 second derivative must be exact for x^4 at x = 0 ... well,
        # exact for cubics; check against an analytic quadratic.
        coefficients = central_difference_coefficients(2, 4)
        h = 0.1
        values = {offset: (offset * h) ** 2 for offset, _ in coefficients}
        approx = sum(c * values[o] for o, c in coefficients) / h ** 2
        assert approx == pytest.approx(2.0, rel=1e-8)


class TestSolve:
    def test_first_order_update(self):
        grid = Grid(shape=(8,))
        u = TimeFunction(name="u", grid=grid, space_order=2)
        update = solve(Eq(u.dt, u.laplace), u.forward)
        accesses = update.accesses()
        assert all(a.time_offset in (0,) for a in accesses)

    def test_second_order_update_uses_backward(self):
        grid = Grid(shape=(8,))
        u = TimeFunction(name="u", grid=grid, space_order=2, time_order=2)
        update = solve(Eq(u.dt2, u.laplace), u.forward)
        assert any(a.time_offset == -1 for a in update.accesses())

    def test_unsupported_equation_rejected(self):
        grid = Grid(shape=(8,))
        u = TimeFunction(name="u", grid=grid, space_order=2)
        with pytest.raises(SolveError):
            solve(Eq(u.laplace, u.forward), u.forward)
        with pytest.raises(SolveError):
            solve(Eq(u.dt, u.laplace), Access(u, 0, (0,)))


def heat_problem(shape, space_order=2, dtype=np.float64):
    grid = Grid(shape=shape, extent=tuple(1.0 for _ in shape))
    u = TimeFunction(name="u", grid=grid, space_order=space_order, dtype=dtype)
    centre = tuple(s // 2 for s in shape)
    u.data[0][centre] = 1.0
    u.data[1][:] = u.data[0]
    update = Eq(u.forward, solve(Eq(u.dt, 0.4 * u.laplace), u.forward))
    return u, [update]


class TestOperator:
    def test_stencil_module_structure(self):
        u, equations = heat_problem((12, 12))
        module = Operator(equations).stencil_module(dt=1e-4)
        module.verify()
        applies = stencil.apply_ops_of(module)
        assert len(applies) == 1
        assert any(isinstance(op, scf.ForOp) for op in module.walk())

    def test_native_and_xdsl_agree_heat(self):
        results = {}
        for backend in ("native", "xdsl"):
            u, equations = heat_problem((12, 12))
            Operator(equations, backend=backend).apply(time=4, dt=1e-4)
            results[backend] = u.data.copy()
        assert np.allclose(results["native"], results["xdsl"], atol=1e-12)

    def test_native_and_xdsl_agree_wave_1d(self):
        results = {}
        for backend in ("native", "xdsl"):
            grid = Grid(shape=(24,), extent=(1.0,))
            u = TimeFunction(name="u", grid=grid, space_order=4, time_order=2,
                             dtype=np.float64)
            u.data[0][12] = 1.0
            u.data[1][:] = u.data[0]
            update = Eq(u.forward, solve(Eq(u.dt2, 2.0 * u.laplace), u.forward))
            Operator([update], backend=backend).apply(time=5, dt=1e-3)
            results[backend] = u.data.copy()
        assert np.allclose(results["native"], results["xdsl"], atol=1e-12)

    def test_distributed_matches_single_rank(self):
        results = {}
        for target in (None, dmp_target((2, 2))):
            u, equations = heat_problem((16, 16))
            kwargs = {"backend": "xdsl"}
            if target is not None:
                kwargs["target"] = target
            Operator(equations, **kwargs).apply(time=3, dt=1e-4)
            results["dist" if target else "single"] = u.data.copy()
        assert np.allclose(results["single"], results["dist"], atol=1e-12)

    def test_smp_target_matches_reference(self):
        results = {}
        for backend, target in (("native", None), ("xdsl", smp_target(threads=4, tile_sizes=(4, 4)))):
            u, equations = heat_problem((12, 12))
            kwargs = {"backend": backend}
            if target is not None:
                kwargs["target"] = target
            Operator(equations, **kwargs).apply(time=2, dt=1e-4)
            results[backend] = u.data.copy()
        assert np.allclose(results["native"], results["xdsl"], atol=1e-12)

    def test_buffer_rotation_mapping(self):
        grid = Grid(shape=(8,))
        u2 = TimeFunction(name="u", grid=grid, space_order=2, time_order=1)
        u3 = TimeFunction(name="w", grid=grid, space_order=2, time_order=2)
        assert Operator.buffer_holding_time(u2, 4) == 0
        assert Operator.buffer_holding_time(u2, 5) == 1
        assert Operator.buffer_holding_time(u3, 1) == 2
        assert Operator.buffer_holding_time(u3, 3) == 0

    def test_characteristics_reflect_space_order(self):
        u, equations = heat_problem((12, 12), space_order=2)
        low = Operator(equations).characteristics()
        u, equations = heat_problem((12, 12), space_order=8)
        high = Operator(equations).characteristics()
        assert high.applies[0].accesses > low.applies[0].accesses
        assert high.applies[0].flops_per_cell > low.applies[0].flops_per_cell

    def test_invalid_operator_usage(self):
        grid = Grid(shape=(8,))
        u = TimeFunction(name="u", grid=grid, space_order=2)
        with pytest.raises(OperatorError):
            Operator([])
        with pytest.raises(OperatorError):
            Operator([Eq(u.forward, u.laplace)], backend="fortran")
        with pytest.raises(OperatorError):
            # assignment must target u.forward
            Operator([Eq(Access(u, 0, (0,)), u.laplace)]).apply(time=1)
