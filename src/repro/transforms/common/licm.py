"""Loop-invariant code motion.

Pure operations inside ``scf.for`` / ``scf.parallel`` bodies whose operands are
all defined outside the loop are hoisted in front of the loop.  The paper
relies on the equivalent MLIR pass (``loop-invariant-code-motion``) and on
hoisting loop-invariant MPI setup code out of time loops.
"""

from __future__ import annotations

from ...dialects import scf
from ...ir.context import MLContext
from ...ir.core import Operation, Region, SSAValue
from ...ir.pass_manager import ModulePass, PassRegistry
from ...ir.traits import IsTerminator, is_pure


def _defined_inside(value: SSAValue, region: Region) -> bool:
    """Whether ``value`` is defined inside ``region`` (including nested regions)."""
    owner = value.owner
    current = owner if isinstance(owner, Operation) else owner.parent_op
    # For block arguments, ``owner`` is the block; its parent op may be the loop
    # itself (induction variable) which counts as "inside".
    if not isinstance(owner, Operation):
        block = owner
        parent_region = block.parent
        while parent_region is not None:
            if parent_region is region:
                return True
            parent_op = parent_region.parent
            if parent_op is None or parent_op.parent is None:
                return False
            parent_region = parent_op.parent.parent
        return False
    while current is not None:
        if current.parent_region is region:
            return True
        current = current.parent_op
    return False


def _hoistable(op: Operation, loop_region: Region) -> bool:
    if op.has_trait(IsTerminator):
        return False
    if not is_pure(op):
        return False
    if op.regions:
        return False
    return all(not _defined_inside(operand, loop_region) for operand in op.operands)


def hoist_loop_invariant_code(module: Operation) -> int:
    """Hoist invariant pure ops out of scf loops; return the number hoisted."""
    hoisted = 0
    changed = True
    while changed:
        changed = False
        for loop in list(module.walk()):
            if not isinstance(loop, (scf.ForOp, scf.ParallelOp)):
                continue
            if loop.parent is None:
                continue
            body_region = loop.regions[0]
            parent_block = loop.parent_block
            if parent_block is None:
                continue
            for op in list(body_region.block.ops):
                if _hoistable(op, body_region):
                    body_region.block.detach_op(op)
                    parent_block.insert_op_before(op, loop)
                    hoisted += 1
                    changed = True
    return hoisted


class LoopInvariantCodeMotionPass(ModulePass):
    """Hoist pure loop-invariant operations out of scf loops."""

    name = "loop-invariant-code-motion"

    def apply(self, ctx: MLContext, module: Operation) -> None:
        hoist_loop_invariant_code(module)


PassRegistry.register("loop-invariant-code-motion", LoopInvariantCodeMotionPass)
