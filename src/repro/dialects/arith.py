"""The arith dialect: integer and floating-point arithmetic on scalar values."""

from __future__ import annotations

from typing import Optional, Union

from ..ir.attributes import Attribute, FloatAttr, IntegerAttr, StringAttr, TypeAttribute
from ..ir.context import Dialect
from ..ir.core import Operation, SSAValue
from ..ir.traits import ConstantLike, Pure
from ..ir.types import i1, index, is_float_type, is_integer_like


class ConstantOp(Operation):
    """Materialise a compile-time integer or float constant."""

    name = "arith.constant"
    traits = frozenset([Pure(), ConstantLike()])

    def __init__(self, value: Attribute, result_type: Optional[TypeAttribute] = None):
        if result_type is None:
            if isinstance(value, (IntegerAttr, FloatAttr)):
                result_type = value.type
            else:
                raise ValueError("arith.constant needs an explicit result type")
        super().__init__(attributes={"value": value}, result_types=[result_type])

    @staticmethod
    def from_int(value: int, type: TypeAttribute = index) -> "ConstantOp":
        return ConstantOp(IntegerAttr(value, type), type)

    @staticmethod
    def from_float(value: float, type: TypeAttribute) -> "ConstantOp":
        return ConstantOp(FloatAttr(value, type), type)

    @property
    def value(self) -> Attribute:
        return self.attributes["value"]

    @property
    def result(self) -> SSAValue:
        return self.results[0]

    def literal(self) -> Union[int, float]:
        value = self.value
        if isinstance(value, IntegerAttr):
            return value.value
        if isinstance(value, FloatAttr):
            return value.value
        raise TypeError(f"unsupported constant payload {value!r}")

    def verify_(self) -> None:
        value = self.attributes.get("value")
        if not isinstance(value, (IntegerAttr, FloatAttr)):
            raise ValueError("arith.constant requires an integer or float value attribute")


class _BinaryOp(Operation):
    """Shared implementation for binary ops where result type == operand type."""

    traits = frozenset([Pure()])

    def __init__(self, lhs: SSAValue, rhs: SSAValue, result_type: Optional[TypeAttribute] = None):
        super().__init__(
            operands=[lhs, rhs],
            result_types=[result_type if result_type is not None else lhs.type],
        )

    @property
    def lhs(self) -> SSAValue:
        return self.operands[0]

    @property
    def rhs(self) -> SSAValue:
        return self.operands[1]

    @property
    def result(self) -> SSAValue:
        return self.results[0]

    def verify_(self) -> None:
        if self.operands[0].type != self.operands[1].type:
            raise ValueError(f"{self.name}: operand types must match")


class _IntBinaryOp(_BinaryOp):
    def verify_(self) -> None:
        super().verify_()
        if not is_integer_like(self.operands[0].type):
            raise ValueError(f"{self.name}: expects integer or index operands")


class _FloatBinaryOp(_BinaryOp):
    def verify_(self) -> None:
        super().verify_()
        if not is_float_type(self.operands[0].type):
            raise ValueError(f"{self.name}: expects floating point operands")


class AddiOp(_IntBinaryOp):
    name = "arith.addi"


class SubiOp(_IntBinaryOp):
    name = "arith.subi"


class MuliOp(_IntBinaryOp):
    name = "arith.muli"


class DivSIOp(_IntBinaryOp):
    name = "arith.divsi"


class RemSIOp(_IntBinaryOp):
    name = "arith.remsi"


class FloorDivSIOp(_IntBinaryOp):
    name = "arith.floordivsi"


class MinSIOp(_IntBinaryOp):
    name = "arith.minsi"


class MaxSIOp(_IntBinaryOp):
    name = "arith.maxsi"


class AndIOp(_IntBinaryOp):
    name = "arith.andi"


class OrIOp(_IntBinaryOp):
    name = "arith.ori"


class XOrIOp(_IntBinaryOp):
    name = "arith.xori"


class ShLIOp(_IntBinaryOp):
    name = "arith.shli"


class AddfOp(_FloatBinaryOp):
    name = "arith.addf"


class SubfOp(_FloatBinaryOp):
    name = "arith.subf"


class MulfOp(_FloatBinaryOp):
    name = "arith.mulf"


class DivfOp(_FloatBinaryOp):
    name = "arith.divf"


class MaximumfOp(_FloatBinaryOp):
    name = "arith.maximumf"


class MinimumfOp(_FloatBinaryOp):
    name = "arith.minimumf"


class PowfOp(_FloatBinaryOp):
    name = "arith.powf"


class NegfOp(Operation):
    """Floating point negation."""

    name = "arith.negf"
    traits = frozenset([Pure()])

    def __init__(self, operand: SSAValue):
        super().__init__(operands=[operand], result_types=[operand.type])

    @property
    def result(self) -> SSAValue:
        return self.results[0]


#: Integer comparison predicates in MLIR order.
CMPI_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge")
#: Float comparison predicates (ordered comparisons only).
CMPF_PREDICATES = ("false", "oeq", "ogt", "oge", "olt", "ole", "one", "ord")


class CmpiOp(Operation):
    """Integer comparison producing an i1."""

    name = "arith.cmpi"
    traits = frozenset([Pure()])

    def __init__(self, predicate: str, lhs: SSAValue, rhs: SSAValue):
        if predicate not in CMPI_PREDICATES:
            raise ValueError(f"unknown cmpi predicate {predicate!r}")
        super().__init__(
            operands=[lhs, rhs],
            attributes={"predicate": StringAttr(predicate)},
            result_types=[i1],
        )

    @property
    def predicate(self) -> str:
        attr = self.attributes["predicate"]
        assert isinstance(attr, StringAttr)
        return attr.data

    @property
    def result(self) -> SSAValue:
        return self.results[0]

    def verify_(self) -> None:
        attr = self.attributes.get("predicate")
        if not isinstance(attr, StringAttr) or attr.data not in CMPI_PREDICATES:
            raise ValueError("arith.cmpi requires a valid predicate attribute")


class CmpfOp(Operation):
    """Floating point comparison producing an i1."""

    name = "arith.cmpf"
    traits = frozenset([Pure()])

    def __init__(self, predicate: str, lhs: SSAValue, rhs: SSAValue):
        if predicate not in CMPF_PREDICATES:
            raise ValueError(f"unknown cmpf predicate {predicate!r}")
        super().__init__(
            operands=[lhs, rhs],
            attributes={"predicate": StringAttr(predicate)},
            result_types=[i1],
        )

    @property
    def predicate(self) -> str:
        attr = self.attributes["predicate"]
        assert isinstance(attr, StringAttr)
        return attr.data

    @property
    def result(self) -> SSAValue:
        return self.results[0]


class SelectOp(Operation):
    """Ternary select: ``condition ? true_value : false_value``."""

    name = "arith.select"
    traits = frozenset([Pure()])

    def __init__(self, condition: SSAValue, true_value: SSAValue, false_value: SSAValue):
        super().__init__(
            operands=[condition, true_value, false_value],
            result_types=[true_value.type],
        )

    @property
    def result(self) -> SSAValue:
        return self.results[0]

    def verify_(self) -> None:
        if self.operands[1].type != self.operands[2].type:
            raise ValueError("arith.select branch types must match")


class _CastOp(Operation):
    traits = frozenset([Pure()])

    def __init__(self, operand: SSAValue, result_type: TypeAttribute):
        super().__init__(operands=[operand], result_types=[result_type])

    @property
    def result(self) -> SSAValue:
        return self.results[0]


class IndexCastOp(_CastOp):
    """Cast between index and integer types."""

    name = "arith.index_cast"


class SIToFPOp(_CastOp):
    """Signed integer to floating point conversion."""

    name = "arith.sitofp"


class FPToSIOp(_CastOp):
    """Floating point to signed integer conversion."""

    name = "arith.fptosi"


class ExtFOp(_CastOp):
    """Floating point widening (f32 -> f64)."""

    name = "arith.extf"


class TruncFOp(_CastOp):
    """Floating point narrowing (f64 -> f32)."""

    name = "arith.truncf"


class ExtSIOp(_CastOp):
    """Signed integer widening."""

    name = "arith.extsi"


class TruncIOp(_CastOp):
    """Integer narrowing."""

    name = "arith.trunci"


#: Binary ops usable as ``scf.reduce`` combiners, with the metadata execution
#: backends need: the NumPy ufunc implementing the combine, and whether the
#: combine order is observable in the result (floating-point ``+``/``*`` are
#: not associative bit-wise, so a vectorized reduction must replay the tree
#: walker's sequential left-fold; selection ops and integer ops are exact in
#: any order).  Keyed by operation name so lowered modules can be inspected
#: without isinstance checks.
REDUCTION_OP_METADATA: dict[str, tuple[str, bool]] = {
    AddfOp.name: ("add", True),
    MulfOp.name: ("multiply", True),
    AddiOp.name: ("add", False),
    MuliOp.name: ("multiply", False),
    MinimumfOp.name: ("minimum", False),
    MaximumfOp.name: ("maximum", False),
    MinSIOp.name: ("minimum", False),
    MaxSIOp.name: ("maximum", False),
}


Arith = Dialect(
    "arith",
    [
        ConstantOp,
        AddiOp, SubiOp, MuliOp, DivSIOp, RemSIOp, FloorDivSIOp, MinSIOp, MaxSIOp,
        AndIOp, OrIOp, XOrIOp, ShLIOp,
        AddfOp, SubfOp, MulfOp, DivfOp, MaximumfOp, MinimumfOp, PowfOp, NegfOp,
        CmpiOp, CmpfOp, SelectOp,
        IndexCastOp, SIToFPOp, FPToSIOp, ExtFOp, TruncFOp, ExtSIOp, TruncIOp,
    ],
    [],
)
