"""Figure 10b: PSyclone benchmarks on a V100 (managed-memory PSyclone vs xDSL CUDA)."""

import pytest

from bench_helpers import attach_rows
from repro.evaluation import figure10b_psyclone_gpu


@pytest.mark.benchmark(group="figure10b")
def test_figure10b_rows(benchmark):
    rows = benchmark(figure10b_psyclone_gpu)
    attach_rows(benchmark, "figure10b", rows)
    pw = [r for r in rows if r["benchmark"].startswith("pw")]
    # Managed-memory page faults make PSyclone far slower on PW advection.
    assert all(r["speedup_xdsl_over_psyclone"] > 5 for r in pw)
    # Synchronous kernel launches penalise xDSL on small tracer advection.
    traadv_small = next(r for r in rows if r["benchmark"] == "traadv-4m")
    assert traadv_small["speedup_xdsl_over_psyclone"] < 1.0
