"""Hardware descriptions of the paper's evaluation platforms.

The parameters are taken from the paper's §6 description and public
specifications of the machines:

* ARCHER2 compute node: dual AMD EPYC 7742 (128 cores, 2.25 GHz, AVX2),
  8 NUMA regions, HPE Slingshot interconnect (200 Gb/s per node, dragonfly).
* Cirrus GPU node: NVIDIA Tesla V100-SXM2-16GB.
* Alveo U280 FPGA (HBM + DDR, ~300 MHz typical kernel clock for HLS designs).

Only aggregate quantities that drive a roofline/alpha-beta model are kept:
peak floating point rate, sustainable memory bandwidth, network latency and
bandwidth, and launch/synchronisation overheads.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CPUNodeSpec:
    """A shared-memory compute node."""

    name: str
    cores: int
    clock_ghz: float
    #: Double-precision vector lanes per core (AVX2: 4 doubles).
    simd_lanes_f64: int
    #: Fused multiply-add units per core per cycle.
    fma_per_cycle: int
    #: Sustainable (STREAM-like) memory bandwidth of the whole node, GB/s.
    memory_bandwidth_gbs: float
    numa_regions: int = 1
    #: Last-level cache capacity usefully available to one stencil sweep
    #: (ARCHER2: 16 MB of L3 shared by each 4-core complex).
    llc_slice_bytes: int = 16 * 1024 * 1024

    def peak_flops(self, single_precision: bool = True) -> float:
        """Peak floating point operations per second for the whole node."""
        lanes = self.simd_lanes_f64 * (2 if single_precision else 1)
        # 2 flops per FMA.
        return self.cores * self.clock_ghz * 1e9 * lanes * self.fma_per_cycle * 2

    def peak_bandwidth(self) -> float:
        return self.memory_bandwidth_gbs * 1e9


@dataclass(frozen=True)
class GPUSpec:
    """A GPU accelerator."""

    name: str
    memory_bandwidth_gbs: float
    peak_tflops_fp32: float
    peak_tflops_fp64: float
    #: Host-side overhead of one synchronous kernel launch, seconds.
    kernel_launch_overhead_s: float
    #: Extra cost per page-fault-driven (managed) memory migration, seconds per MB.
    managed_memory_penalty_s_per_mb: float
    pcie_bandwidth_gbs: float = 16.0

    def peak_flops(self, single_precision: bool = True) -> float:
        tflops = self.peak_tflops_fp32 if single_precision else self.peak_tflops_fp64
        return tflops * 1e12

    def peak_bandwidth(self) -> float:
        return self.memory_bandwidth_gbs * 1e9


@dataclass(frozen=True)
class NetworkSpec:
    """An interconnect between compute nodes (alpha-beta model)."""

    name: str
    #: Per-message latency, seconds (software + switch traversal).
    latency_s: float
    #: Injection bandwidth per node, GB/s.
    bandwidth_gbs: float
    #: Multiplicative penalty applied beyond one dragonfly group (128 nodes).
    inter_group_penalty: float = 1.15

    def peak_bandwidth(self) -> float:
        return self.bandwidth_gbs * 1e9


@dataclass(frozen=True)
class FPGASpec:
    """An FPGA card running HLS-synthesised stencil kernels."""

    name: str
    kernel_clock_mhz: float
    ddr_bandwidth_gbs: float
    #: Average DDR access latency in kernel cycles for non-streamed accesses.
    ddr_latency_cycles: float
    #: Fraction of the clock actually sustained by the synthesised pipeline.
    pipeline_efficiency: float

    def cycles_per_second(self) -> float:
        return self.kernel_clock_mhz * 1e6


#: ARCHER2 HPE Cray EX node: dual AMD EPYC 7742 (Rome), 128 cores, AVX2.
ARCHER2_NODE = CPUNodeSpec(
    name="ARCHER2 (2x AMD EPYC 7742)",
    cores=128,
    clock_ghz=2.25,
    simd_lanes_f64=4,
    fma_per_cycle=2,
    memory_bandwidth_gbs=380.0,
    numa_regions=8,
    llc_slice_bytes=16 * 1024 * 1024,
)

#: HPE Slingshot, 200 Gb/s per node, dragonfly topology.
SLINGSHOT = NetworkSpec(
    name="HPE Slingshot (200 Gb/s, dragonfly)",
    latency_s=1.8e-6,
    bandwidth_gbs=25.0,
)

#: Cirrus GPU node accelerator: NVIDIA Tesla V100-SXM2-16GB.
V100 = GPUSpec(
    name="NVIDIA Tesla V100-SXM2-16GB",
    memory_bandwidth_gbs=900.0,
    peak_tflops_fp32=15.7,
    peak_tflops_fp64=7.8,
    kernel_launch_overhead_s=12e-6,
    managed_memory_penalty_s_per_mb=2e-3,
)

#: AMD Xilinx Alveo U280.
ALVEO_U280 = FPGASpec(
    name="AMD Xilinx Alveo U280",
    kernel_clock_mhz=300.0,
    ddr_bandwidth_gbs=38.0,
    ddr_latency_cycles=16.0,
    pipeline_efficiency=0.55,
)
