"""IR construction helpers.

:class:`Builder` tracks an insertion point inside a block and appends (or
inserts) operations there, returning the operation so callers can chain on its
results.  This is the primary way dialect lowerings create IR.
"""

from __future__ import annotations

from typing import Optional, Sequence, TypeVar

from .core import Block, Operation, Region, SSAValue

OpT = TypeVar("OpT", bound=Operation)


class InsertPoint:
    """An insertion point: either the end of a block or before an anchor op."""

    __slots__ = ("block", "anchor")

    def __init__(self, block: Block, anchor: Optional[Operation] = None):
        self.block = block
        self.anchor = anchor

    @staticmethod
    def at_end(block: Block) -> "InsertPoint":
        return InsertPoint(block, None)

    @staticmethod
    def before(op: Operation) -> "InsertPoint":
        if op.parent is None:
            raise ValueError("cannot build an insertion point before a detached op")
        return InsertPoint(op.parent, op)

    @staticmethod
    def after(op: Operation) -> "InsertPoint":
        if op.parent is None:
            raise ValueError("cannot build an insertion point after a detached op")
        block = op.parent
        idx = block.ops.index(op)
        if idx + 1 < len(block.ops):
            return InsertPoint(block, block.ops[idx + 1])
        return InsertPoint(block, None)


class Builder:
    """Appends operations at an insertion point."""

    def __init__(self, insertion_point: InsertPoint | Block):
        if isinstance(insertion_point, Block):
            insertion_point = InsertPoint.at_end(insertion_point)
        self.insertion_point = insertion_point

    @staticmethod
    def at_end(block: Block) -> "Builder":
        return Builder(InsertPoint.at_end(block))

    @staticmethod
    def before(op: Operation) -> "Builder":
        return Builder(InsertPoint.before(op))

    @staticmethod
    def after(op: Operation) -> "Builder":
        return Builder(InsertPoint.after(op))

    def insert(self, op: OpT) -> OpT:
        """Insert a single operation at the current insertion point."""
        block = self.insertion_point.block
        anchor = self.insertion_point.anchor
        if anchor is None:
            block.add_op(op)
        else:
            block.insert_op_before(op, anchor)
        return op

    def insert_all(self, ops: Sequence[Operation]) -> None:
        for op in ops:
            self.insert(op)

    def position_at_end(self, block: Block) -> None:
        self.insertion_point = InsertPoint.at_end(block)

    def position_before(self, op: Operation) -> None:
        self.insertion_point = InsertPoint.before(op)

    def position_after(self, op: Operation) -> None:
        self.insertion_point = InsertPoint.after(op)


def build_single_block_region(
    arg_types: Sequence = (), ops: Sequence[Operation] = ()
) -> Region:
    """Create a region with a single block holding ``ops``."""
    return Region(Block(arg_types=arg_types, ops=ops))


def first_result(op: Operation) -> SSAValue:
    """The first result of ``op`` (convenience for one-result ops)."""
    if not op.results:
        raise ValueError(f"operation {op.name} has no results")
    return op.results[0]
