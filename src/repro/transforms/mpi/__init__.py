"""MPI dialect lowerings (mpi -> MPI_* function calls)."""

from .mpi_to_func import (
    ConvertMPIToFuncPass,
    MPICH_COMM_WORLD,
    MPICH_DATATYPE_CONSTANTS,
    datatype_constant_for,
    lower_mpi_to_func,
)

__all__ = [
    "ConvertMPIToFuncPass", "lower_mpi_to_func", "datatype_constant_for",
    "MPICH_COMM_WORLD", "MPICH_DATATYPE_CONSTANTS",
]
