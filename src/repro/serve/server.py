"""The multi-tenant server: one warm Session shared by many clients.

A :class:`Server` owns (or wraps) a single
:class:`~repro.core.session.Session` and serves concurrent clients through
three mechanisms:

* **Cross-tenant plan cache** — plans are keyed by
  ``(program fingerprint, function, ExecutionConfig.plan_key())``, so two
  tenants submitting the same workload share one compiled
  :class:`~repro.core.session.Plan` (and, through the session, its
  megakernels and worker pool).

* **Admission control** — a bounded run queue.  :meth:`Server.submit`
  returns a :class:`~repro.serve.job.JobHandle` future immediately; when the
  queue is at ``max_pending`` it raises
  :class:`~repro.serve.errors.QueueFullError` *synchronously* instead of
  blocking, so overload turns into fast typed backpressure.

* **Batched dispatch** — a single dispatcher thread drains up to
  ``max_batch`` queued jobs at a time and runs them as ONE SPMD round:
  thread-world and local jobs through
  :meth:`~repro.core.session.Session.execute_batch` (the persistent rank
  executor partitioned across jobs), process-world jobs through
  ``PoolManager.run_program_batch`` (the worker pool partitioned across
  jobs).  N small jobs pay the dispatch latency once instead of N times —
  the fine-grained-asynchronous-BSP idea applied to the serving path.

Every job runs through the exact same ``Plan`` helpers a standalone
``plan.run()`` uses (see :class:`~repro.core.session.PreparedRun`), so
results and per-tenant statistics are bit-identical to unbatched runs.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, Optional, Sequence

from ..core.config import ExecutionConfig
from ..core.session import (
    Plan,
    PreparedRun,
    Session,
    _default_function,
    _release_run_buffers,
)
from ..obs import MetricsRegistry
from ..runtime.worker_pool import PoolBatchJob, WorkerError
from .errors import QueueFullError, ServerClosedError
from .job import JobHandle
from .stats import TenantStats


class Server:
    """A shared execution service over one warm session.

    ``config`` (or ``session.config``) is the default execution
    configuration; per-submit overrides are allowed and only affect plan
    identity, never server structure.  ``max_pending`` bounds the run queue
    (admission control), ``max_batch`` bounds how many jobs one dispatch
    round may pack.  ``start=False`` leaves the dispatcher unstarted — jobs
    queue up (and the queue-full path is testable deterministically) until
    :meth:`start` is called.
    """

    def __init__(
        self,
        config: Optional[ExecutionConfig] = None,
        *,
        session: Optional[Session] = None,
        max_pending: int = 64,
        max_batch: int = 8,
        start: bool = True,
        **overrides,
    ):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if session is not None:
            self._session = session
            self._owns_session = False
            if config is not None or overrides:
                raise ValueError(
                    "pass either an existing session or a config, not both"
                )
        else:
            self._session = Session(config, **overrides)
            self._owns_session = True
        self.max_pending = max_pending
        self.max_batch = max_batch
        #: The server's own counter namespace (``serve.*``): job lifecycle
        #: counts, queue-wait totals, queue-depth/batch-occupancy peaks,
        #: plan-cache hit/miss.
        self.metrics = MetricsRegistry()

        self._condition = threading.Condition()
        self._queue: deque[JobHandle] = deque()
        self._inflight = 0
        self._closed = False
        #: (fingerprint, function, config.plan_key()) -> shared Plan.
        self._plans: Dict[tuple, Plan] = {}
        #: id(plan) -> recycled _RunBuffers free list (dispatcher-only).
        self._buffer_pool: Dict[int, list] = {}
        self._tenant_lock = threading.Lock()
        self._tenants: Dict[str, TenantStats] = {}
        self._thread: Optional[threading.Thread] = None
        if start:
            self.start()

    # -- lifecycle ------------------------------------------------------------
    @property
    def session(self) -> Session:
        """The underlying session (shared plan/megakernel/pool state)."""
        return self._session

    @property
    def closed(self) -> bool:
        return self._closed

    def start(self) -> None:
        """Start the dispatcher thread (idempotent)."""
        if self._thread is not None or self._closed:
            return
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
        )
        self._thread.start()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    def close(self, drain: bool = True) -> None:
        """Stop accepting jobs; then shut the dispatcher down.

        ``drain=True`` (default) runs every already-queued job to completion
        first; ``drain=False`` cancels queued jobs (their handles raise
        :class:`~repro.serve.errors.JobCancelledError`).  In-flight batches
        always run to completion — an SPMD round cannot be abandoned halfway.
        Owned sessions are closed; wrapped sessions are left to their owner.
        """
        with self._condition:
            if self._closed:
                return
            self._closed = True
            dropped = [] if drain and self._thread is not None else list(self._queue)
            if dropped:
                self._queue.clear()
            self._condition.notify_all()
        for job in dropped:
            job.cancel()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        for stack in self._buffer_pool.values():
            for buffers in stack:
                _release_run_buffers(buffers)
        self._buffer_pool.clear()
        if self._owns_session:
            self._session.close()

    # -- client surface -------------------------------------------------------
    def submit(
        self,
        program: Any,
        fields: Sequence[Any],
        scalars: Sequence[Any] = (),
        *,
        tenant: str = "default",
        function: Optional[str] = None,
        config: Optional[ExecutionConfig] = None,
        **overrides,
    ) -> JobHandle:
        """Enqueue one run; returns its :class:`JobHandle` future immediately.

        Like ``plan.run()``, the gather writes results back into the caller's
        ``fields`` arrays — do not reuse them until the handle resolves.
        Raises :class:`~repro.serve.errors.QueueFullError` when the queue is
        at capacity and :class:`~repro.serve.errors.ServerClosedError` after
        :meth:`close`; neither enqueues anything.
        """
        resolved = ExecutionConfig.coerce(
            config or self._session.config, **overrides
        )
        job = JobHandle(
            program, fields, scalars, function, resolved, tenant,
            on_cancel=self._job_cancelled,
        )
        with self._condition:
            if self._closed:
                self.metrics.inc("serve.jobs_rejected")
                raise ServerClosedError("the server is closed")
            if len(self._queue) >= self.max_pending:
                self.metrics.inc("serve.jobs_rejected")
                raise QueueFullError(
                    f"run queue is full ({self.max_pending} jobs pending); "
                    "retry later or shed load"
                )
            self._queue.append(job)
            self.metrics.inc("serve.jobs_submitted")
            self.metrics.record_peak("serve.queue_depth_peak", len(self._queue))
            self._condition.notify()
        return job

    def queue_depth(self) -> int:
        """Jobs currently queued (excludes the in-flight batch)."""
        with self._condition:
            return len(self._queue)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until the queue and all in-flight batches are empty."""
        with self._condition:
            return self._condition.wait_for(
                lambda: not self._queue and self._inflight == 0, timeout
            )

    def tenant(self, name: str = "default") -> TenantStats:
        """The (auto-created) statistics accumulator of one tenant."""
        with self._tenant_lock:
            stats = self._tenants.get(name)
            if stats is None:
                stats = TenantStats(name)
                self._tenants[name] = stats
            return stats

    @property
    def tenants(self) -> Dict[str, TenantStats]:
        with self._tenant_lock:
            return dict(self._tenants)

    def _job_cancelled(self, job: JobHandle) -> None:
        self.metrics.inc("serve.jobs_cancelled")

    # -- the dispatcher -------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            with self._condition:
                while not self._queue and not self._closed:
                    self._condition.wait()
                if not self._queue:
                    return  # closed and drained
                batch = []
                while self._queue and len(batch) < self.max_batch:
                    batch.append(self._queue.popleft())
                self._inflight += len(batch)
                self._condition.notify_all()
            try:
                self._run_batch(batch)
            finally:
                with self._condition:
                    self._inflight -= len(batch)
                    self._condition.notify_all()

    def _run_batch(self, batch: Sequence[JobHandle]) -> None:
        now = time.monotonic()
        claimed = []
        for job in batch:
            if not job._begin():
                continue  # cancelled while queued
            self.metrics.inc(
                "serve.queue_wait_us", int((now - job.enqueued_at) * 1e6)
            )
            claimed.append(job)
        if not claimed:
            return
        self.metrics.inc("serve.batches")
        self.metrics.inc("serve.batched_jobs", len(claimed))
        self.metrics.record_peak("serve.batch_occupancy_peak", len(claimed))

        # Stage every job (validation, buffers, scatter, megakernel lookup);
        # a job that cannot even stage fails alone, siblings continue.
        staged: list[tuple[JobHandle, PreparedRun]] = []
        for job in claimed:
            try:
                plan = self._plan_for(job)
                prepared = plan.prepare(
                    job.fields, job.scalars, buffers=self._buffers_out(plan)
                )
            except BaseException as error:  # noqa: BLE001 - job-scoped failure
                self._fail(job, error)
                continue
            staged.append((job, prepared))
        if not staged:
            return

        # One SPMD round per runtime family, ranks partitioned across jobs.
        processes = [(j, p) for j, p in staged if p.runtime == "processes"]
        threaded = [(j, p) for j, p in staged if p.runtime != "processes"]
        if processes:
            self._run_process_group(processes)
        if threaded:
            try:
                self._session.execute_batch([p for _, p in threaded])
            except BaseException as error:  # noqa: BLE001 - round-level failure
                for _, prepared in threaded:
                    if prepared.error is None:
                        prepared.error = error

        for job, prepared in staged:
            try:
                result = prepared.finish()
            except BaseException as error:  # noqa: BLE001 - job-scoped failure
                prepared.release()
                self._fail(job, error)
                continue
            self._recycle(prepared)
            self.tenant(job.tenant).ingest(result)
            self.metrics.inc("serve.jobs_completed")
            job._complete(result)

    def _run_process_group(
        self, pairs: Sequence[tuple[JobHandle, PreparedRun]]
    ) -> None:
        """One worker-pool round over every process-world job of the batch."""
        jobs = []
        for _, prepared in pairs:
            plan = prepared.plan
            config = plan.config
            jobs.append(PoolBatchJob(
                program=plan.program,
                function_name=plan.function,
                backend=config.backend,
                field_specs=prepared.buffers.specs,
                scalars=prepared.scalars,
                threads_per_rank=config.threads_per_rank,
                codegen=config.codegen if plan._codegen_active else "planned",
                trace=config.trace,
            ))
        timeout = max(prepared.plan.config.timeout for _, prepared in pairs)
        try:
            outcomes = self._session._pool_manager.run_program_batch(
                jobs, timeout
            )
        except WorkerError as error:
            self._session.metrics.inc("worker.errors")
            for _, prepared in pairs:
                prepared.error = error
            return
        for (_, prepared), outcome in zip(pairs, outcomes):
            if isinstance(outcome, WorkerError):
                self._session.metrics.inc("worker.errors")
                prepared.error = outcome
            else:
                prepared.reports = outcome

    def _fail(self, job: JobHandle, error: BaseException) -> None:
        self.metrics.inc("serve.jobs_failed")
        self.tenant(job.tenant).jobs_failed += 1
        job._fail(error)

    # -- the cross-tenant plan cache ------------------------------------------
    def _plan_for(self, job: JobHandle) -> Plan:
        function = job.function or _default_function(job.program)
        key = (job.program.fingerprint, function, job.config.plan_key())
        plan = self._plans.get(key)
        if plan is None or plan.closed:
            self.metrics.inc("serve.plan_cache_miss")
            plan = self._session.plan(job.program, function, job.config)
            self._plans[key] = plan
        else:
            self.metrics.inc("serve.plan_cache_hit")
        return plan

    # -- the per-plan buffer free list (dispatcher thread only) ---------------
    def _buffers_out(self, plan: Plan):
        stack = self._buffer_pool.get(id(plan))
        return stack.pop() if stack else None

    def _recycle(self, prepared: PreparedRun) -> None:
        buffers = prepared.buffers
        prepared.buffers = None
        if buffers is None:
            return
        stack = self._buffer_pool.setdefault(id(prepared.plan), [])
        if len(stack) < self.max_batch:
            stack.append(buffers)
        else:
            _release_run_buffers(buffers)
