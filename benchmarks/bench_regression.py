#!/usr/bin/env python
"""The bench-regression CI gate.

Two suites, selected with ``--suite``:

* ``core`` (default) — the execution-backend speedup benchmarks
  (``benchmarks/test_backend_speedup.py``) and the fig. 8 strong-scaling
  smokes — the flat 4-process one and the hybrid 2-ranks-x-2-threads one.
* ``serve`` — the serving-layer load generator
  (``benchmarks/test_serve_load.py``): p50/p99 latency, throughput, and the
  batched-vs-serialized dispatch speedup at 8 concurrent clients, plus one
  loaded-run timeline trace written to ``--trace-output``.

Either way every measured row lands in the ``--output`` JSON artifact
(kernel, shape/load shape, wall time, speedup/value) and the gate **fails**
(exit code 1) when any measurement drops below its suite's floors — or, for
latency rows, rises above its ceilings — committed in
``benchmarks/baseline.json`` (floors/ceilings whose key starts with
``serve-`` belong to the serve suite, everything else to core).

Usage (CI runs exactly this, offline — every dependency is installed by the
job's install step, nothing is fetched here)::

    PYTHONPATH=src python benchmarks/bench_regression.py --output BENCH_pr.json
    PYTHONPATH=src python benchmarks/bench_regression.py --suite serve \\
        --output BENCH_serve.json --trace-output BENCH_serve_trace.json

``--floor-scale`` multiplies every baseline floor; it exists to *verify the
gate itself*: ``--floor-scale 1e6`` must make the run fail, proving a
synthetic regression is caught.  The strong-scaling smokes and the serve
batched-dispatch smoke need >= 4 usable cores and an available process
runtime; where they skip, their rows are recorded as skipped and their
(optional) floors are not enforced.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCHMARKS = os.path.join(REPO_ROOT, "benchmarks")
SMOKE_TEST = (
    "benchmarks/test_fig08_strong_scaling.py::"
    "test_process_runtime_strong_scaling_smoke"
)
HYBRID_SMOKE_TEST = (
    "benchmarks/test_fig08_strong_scaling.py::"
    "test_hybrid_strong_scaling_smoke"
)
SERVE_LOAD_TEST = "benchmarks/test_serve_load.py"


def _environment() -> dict:
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def run_speedup_benchmarks() -> tuple[list[dict], int]:
    """Run the backend-speedup file; return its rows and the pytest exit code."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        report_path = handle.name
    try:
        proc = subprocess.run(
            [
                sys.executable, "-m", "pytest",
                "benchmarks/test_backend_speedup.py", "-q",
                f"--benchmark-json={report_path}",
            ],
            cwd=REPO_ROOT,
            env=_environment(),
            capture_output=True,
            text=True,
        )
        sys.stdout.write(proc.stdout[-4000:])
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr[-4000:])
        rows: list[dict] = []
        if os.path.exists(report_path) and os.path.getsize(report_path):
            with open(report_path) as report:
                data = json.load(report)
            for benchmark in data.get("benchmarks", []):
                extra = benchmark.get("extra_info", {})
                rows.extend(json.loads(extra.get("rows", "[]")))
        return rows, proc.returncode
    finally:
        if os.path.exists(report_path):
            os.unlink(report_path)


def run_smoke(test_id: str, row_env: str) -> tuple[dict | None, int]:
    """Run one fig. 8 smoke test; return its row (None if skipped) and exit code.

    ``row_env`` names the environment variable through which the test writes
    its measured row (the rank/thread shape travels inside the row itself).
    """
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        smoke_path = handle.name
    os.unlink(smoke_path)  # only exists if the smoke actually measured
    env = _environment()
    env[row_env] = smoke_path
    try:
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", test_id, "-q", "-s"],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        sys.stdout.write(proc.stdout[-4000:])
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr[-4000:])
        row = None
        if os.path.exists(smoke_path):
            with open(smoke_path) as handle:
                row = json.load(handle)
        return row, proc.returncode
    finally:
        if os.path.exists(smoke_path):
            os.unlink(smoke_path)


def run_serve_suite(trace_output: str | None) -> tuple[list[dict], int]:
    """Run the serve load generator; return its rows and the pytest exit code.

    The tests append their rows (a JSON list) to the file named by
    ``BENCH_SERVE_JSON``; ``BENCH_SERVE_TRACE`` additionally requests one
    loaded-run timeline trace at that path (uploaded as a CI artifact).
    """
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        rows_path = handle.name
    os.unlink(rows_path)  # only exists once a test measured something
    env = _environment()
    env["BENCH_SERVE_JSON"] = rows_path
    if trace_output:
        env["BENCH_SERVE_TRACE"] = os.path.abspath(trace_output)
    try:
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", SERVE_LOAD_TEST, "-q", "-s"],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        sys.stdout.write(proc.stdout[-4000:])
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr[-4000:])
        rows: list[dict] = []
        if os.path.exists(rows_path):
            with open(rows_path) as handle:
                rows = json.load(handle)
        return rows, proc.returncode
    finally:
        if os.path.exists(rows_path):
            os.unlink(rows_path)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", choices=("core", "serve"), default="core",
                        help="core: backend speedups + fig. 8 smokes; "
                             "serve: the serving-layer load generator")
    parser.add_argument("--output", default="BENCH_pr.json",
                        help="where to write the benchmark artifact")
    parser.add_argument("--baseline",
                        default=os.path.join(BENCHMARKS, "baseline.json"),
                        help="committed speedup floors")
    parser.add_argument("--floor-scale", type=float, default=1.0,
                        help="multiply every floor (gate self-test: a large "
                             "value must make this script fail)")
    parser.add_argument("--trace-output", default=None,
                        help="serve suite only: where to write one loaded-run "
                             "timeline trace (Chrome trace JSON)")
    args = parser.parse_args()

    with open(args.baseline) as handle:
        baseline = json.load(handle)
    serve_suite = args.suite == "serve"

    def in_suite(kernel: str) -> bool:
        return kernel.startswith("serve-") == serve_suite

    floors = {k: v * args.floor_scale
              for k, v in baseline["floors"].items() if in_suite(k)}
    ceilings = {k: v for k, v in baseline.get("ceilings", {}).items()
                if in_suite(k)}
    optional = set(baseline.get("optional", []))

    failures: list[str] = []
    if serve_suite:
        rows, serve_rc = run_serve_suite(args.trace_output)
        if serve_rc != 0:
            failures.append("serve load benchmarks failed (see output above)")
    else:
        rows, speedup_rc = run_speedup_benchmarks()
        if speedup_rc != 0:
            failures.append(
                "backend-speedup benchmarks failed (see output above)"
            )
        for kernel, test_id, row_env, ranks, threads in (
            ("process-strong-scaling", SMOKE_TEST,
             "BENCH_SMOKE_JSON", [2, 2], 1),
            ("hybrid-strong-scaling", HYBRID_SMOKE_TEST,
             "BENCH_HYBRID_SMOKE_JSON", [2, 1], 2),
        ):
            smoke_row, smoke_rc = run_smoke(test_id, row_env)
            smoke_skipped = smoke_row is None and smoke_rc == 0
            if smoke_row is not None:
                # Every smoke row records its rank/thread shape so the
                # artifact identifies which configuration produced the number.
                smoke_row.setdefault("ranks", ranks)
                smoke_row.setdefault("threads_per_rank", threads)
                rows.append(smoke_row)
            elif smoke_skipped:
                rows.append({"kernel": kernel, "skipped": True,
                             "ranks": ranks, "threads_per_rank": threads})
            if smoke_rc != 0 and not smoke_skipped:
                failures.append(f"{kernel} smoke failed (see output above)")

    artifact = {
        "suite": args.suite,
        "baseline": args.baseline,
        "floor_scale": args.floor_scale,
        "rows": rows,
    }
    with open(args.output, "w") as handle:
        json.dump(artifact, handle, indent=2)
    print(f"\nwrote {len(rows)} rows to {args.output}")

    measured = {
        row["kernel"]: row
        for row in rows if "speedup" in row or "value" in row
    }

    def measurement(row: dict) -> float:
        return row["speedup"] if "speedup" in row else row["value"]

    for kernel, floor in sorted(floors.items()):
        row = measured.get(kernel)
        if row is None:
            if kernel in optional:
                print(f"  {kernel:<24} skipped (optional)")
                continue
            failures.append(f"{kernel}: no measurement produced")
            continue
        value = measurement(row)
        verdict = "ok" if value >= floor else "REGRESSION"
        print(f"  {kernel:<24} {value:10.1f}  (floor {floor:g})  {verdict}")
        if value < floor:
            failures.append(
                f"{kernel}: measured {value:.1f} below the baseline "
                f"floor {floor:g}"
            )

    for kernel, ceiling in sorted(ceilings.items()):
        row = measured.get(kernel)
        if row is None:
            if kernel in optional:
                print(f"  {kernel:<24} skipped (optional)")
                continue
            failures.append(f"{kernel}: no measurement produced")
            continue
        value = measurement(row)
        verdict = "ok" if value <= ceiling else "REGRESSION"
        print(f"  {kernel:<24} {value:10.1f}  (ceiling {ceiling:g})  {verdict}")
        if value > ceiling:
            failures.append(
                f"{kernel}: measured {value:.1f} above the baseline "
                f"ceiling {ceiling:g}"
            )

    if failures:
        print("\nbench-regression gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nbench-regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
