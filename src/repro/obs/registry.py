"""Unified integer-counter registry.

Every counter the runtime produces — the interpreter's ``ExecStatistics``,
the communicators' ``CommStatistics``, session-lifecycle counts like
megakernel cache hits — lands in one flat namespace here
(``"exec.cells_updated"``, ``"comm.bytes_sent"``, ``"megakernel.cache_hit"``).

The legacy dataclasses remain the *compatibility view*: merging per-rank
statistics now means ingesting each rank into a registry and materialising
the dataclass back out (:meth:`as_exec_statistics` /
:meth:`as_comm_statistics`).  Both directions are plain integer sums over
``dataclasses.fields`` in rank order, so results are bit-identical to the
hand-written merges they replace.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable


class MetricsRegistry:
    """Flat ``name -> int`` counter store with dataclass in/out views."""

    __slots__ = ("_counters",)

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def inc(self, name: str, value: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + value

    def get(self, name: str, default: int = 0) -> int:
        return self._counters.get(name, default)

    def record_peak(self, name: str, value: int) -> None:
        """Keep the high-water mark of ``value`` under ``name``.

        Unlike :meth:`inc` the stored number is a *gauge peak*, not a running
        sum — the serving layer uses it for queue-depth and batch-occupancy
        maxima (``serve.queue_depth_peak``, ``serve.batch_occupancy_peak``).
        """
        current = self._counters.get(name)
        if current is None or value > current:
            self._counters[name] = value

    def merge_counts(self, counts: Dict[str, int]) -> None:
        for name, value in counts.items():
            self.inc(name, value)

    def snapshot(self) -> Dict[str, int]:
        """A copy of every counter, sorted by name."""
        return dict(sorted(self._counters.items()))

    def __len__(self) -> int:
        return len(self._counters)

    # ------------------------------------------------------------------
    # Dataclass views.
    # ------------------------------------------------------------------

    def ingest(self, stats, prefix: str) -> None:
        """Add every integer field of a statistics dataclass under *prefix*."""
        for field in dataclasses.fields(type(stats)):
            self.inc(prefix + field.name, getattr(stats, field.name))

    def ingest_all(self, stats_list: Iterable, prefix: str) -> None:
        for stats in stats_list:
            self.ingest(stats, prefix)

    def _as_dataclass(self, cls, prefix: str):
        values = {field.name: self._counters.get(prefix + field.name, 0)
                  for field in dataclasses.fields(cls)}
        return cls(**values)

    def as_exec_statistics(self, prefix: str = "exec."):
        """Materialise the ``exec.*`` counters as an ``ExecStatistics``."""
        from ..interp.interpreter import ExecStatistics

        return self._as_dataclass(ExecStatistics, prefix)

    def as_comm_statistics(self, prefix: str = "comm."):
        """Materialise the ``comm.*`` counters as a ``CommStatistics``."""
        from ..interp.mpi_runtime import CommStatistics

        return self._as_dataclass(CommStatistics, prefix)
