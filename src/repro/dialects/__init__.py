"""All dialects of the shared compilation stack.

``register_all_dialects`` installs every dialect into an
:class:`~repro.ir.context.MLContext`; :func:`~repro.ir.context.default_context`
does this for you.
"""

from ..ir.context import MLContext
from . import arith, builtin, dmp, func, gpu, hls, llvm, memref, mpi, omp, scf, stencil

ALL_DIALECTS = (
    builtin.Builtin,
    arith.Arith,
    func.Func,
    scf.Scf,
    memref.MemRef,
    llvm.LLVM,
    omp.OMP,
    gpu.GPU,
    hls.HLS,
    stencil.Stencil,
    dmp.DMP,
    mpi.MPI,
)


def register_all_dialects(ctx: MLContext) -> MLContext:
    """Register every dialect shipped with this project into ``ctx``."""
    for dialect in ALL_DIALECTS:
        ctx.register_dialect(dialect)
    return ctx


__all__ = [
    "arith", "builtin", "dmp", "func", "gpu", "hls", "llvm", "memref", "mpi",
    "omp", "scf", "stencil", "ALL_DIALECTS", "register_all_dialects",
]
