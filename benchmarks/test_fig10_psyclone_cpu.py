"""Figure 10a: PSyclone benchmarks on one ARCHER2 node (Cray vs xDSL vs GNU)."""

import numpy as np
import pytest

from bench_helpers import attach_rows
from repro.core import compile_stencil_program, cpu_target, default_session
from repro.evaluation import figure10a_psyclone_cpu
from repro.workloads import pw_advection, tracer_advection


@pytest.mark.benchmark(group="figure10a")
def test_figure10a_rows(benchmark):
    rows = benchmark(figure10a_psyclone_cpu)
    attach_rows(benchmark, "figure10a", rows)
    pw = [r for r in rows if r["benchmark"].startswith("pw")]
    assert all(r["xdsl_gpts"] > r["cray_gpts"] > r["gnu_gpts"] for r in pw)
    traadv_small = next(r for r in rows if r["benchmark"] == "traadv-4m")
    assert traadv_small["xdsl_gpts"] < traadv_small["cray_gpts"]


@pytest.mark.benchmark(group="figure10a-execution")
@pytest.mark.parametrize(
    "workload_factory",
    [lambda: pw_advection((12, 12, 6), iterations=2),
     lambda: tracer_advection((8, 8, 4), iterations=2, computations=8)],
    ids=["pw", "traadv"],
)
def test_psyclone_kernel_execution(benchmark, workload_factory):
    """Compile a PSyclone benchmark through the shared stack and execute it."""
    workload = workload_factory()
    schedule = workload.schedule
    module = workload.build_module(dtype=np.float64)
    program = compile_stencil_program(module, cpu_target())

    def run():
        arrays = workload.arrays(dtype=np.float64)
        ordered = [arrays[name] for name in schedule.array_names()]
        default_session().run(
            program, [*ordered, workload.iterations], function=schedule.name
        )
        return arrays

    arrays = benchmark(run)
    assert all(np.isfinite(a).all() for a in arrays.values())
