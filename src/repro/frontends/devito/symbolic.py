"""The symbolic layer of the mini-Devito frontend.

Devito embeds a SymPy-based DSL; this reproduction implements the subset the
paper's benchmarks exercise: grids, (time-dependent) functions with
configurable space order, central finite-difference derivatives, Laplacians,
equations and the explicit-update ``solve`` used in listing 5::

    grid = Grid(shape=(126,))
    u = TimeFunction(name='u', grid=grid, space_order=2)
    eqn = Eq(u.dt, 0.5 * u.laplace)
    op = Operator([Eq(u.forward, solve(eqn, u.forward))])
    op(time=timesteps)

Expressions are trees of :class:`Expr` nodes (constants, data accesses and
arithmetic); finite differences are expanded eagerly into linear combinations
of shifted accesses using coefficients computed from a Vandermonde system, so
any even space order (2, 4, 8, ...) is supported.
"""

from __future__ import annotations

import math as _math
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Sequence, Union

import numpy as np

Number = Union[int, float]


# ---------------------------------------------------------------------------
# Grid and dimensions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Dimension:
    """A spatial dimension of a grid."""

    name: str
    index: int


class Grid:
    """A structured, equispaced grid."""

    def __init__(
        self,
        shape: Sequence[int],
        extent: Optional[Sequence[float]] = None,
        origin: Optional[Sequence[float]] = None,
    ):
        self.shape = tuple(int(s) for s in shape)
        if any(s < 1 for s in self.shape):
            raise ValueError("grid shape entries must be positive")
        self.extent = tuple(
            float(e) for e in (extent if extent is not None else [1.0] * len(self.shape))
        )
        self.origin = tuple(
            float(o) for o in (origin if origin is not None else [0.0] * len(self.shape))
        )
        names = ["x", "y", "z", "w"]
        self.dimensions = tuple(
            Dimension(names[i] if i < len(names) else f"d{i}", i)
            for i in range(len(self.shape))
        )

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def spacing(self) -> tuple[float, ...]:
        return tuple(
            extent / max(points - 1, 1) for extent, points in zip(self.extent, self.shape)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Grid(shape={self.shape})"


# ---------------------------------------------------------------------------
# Expression tree
# ---------------------------------------------------------------------------

class Expr:
    """Base class of symbolic expressions."""

    def __add__(self, other) -> "Expr":
        return BinOp("+", self, as_expr(other))

    def __radd__(self, other) -> "Expr":
        return BinOp("+", as_expr(other), self)

    def __sub__(self, other) -> "Expr":
        return BinOp("-", self, as_expr(other))

    def __rsub__(self, other) -> "Expr":
        return BinOp("-", as_expr(other), self)

    def __mul__(self, other) -> "Expr":
        return BinOp("*", self, as_expr(other))

    def __rmul__(self, other) -> "Expr":
        return BinOp("*", as_expr(other), self)

    def __truediv__(self, other) -> "Expr":
        return BinOp("/", self, as_expr(other))

    def __rtruediv__(self, other) -> "Expr":
        return BinOp("/", as_expr(other), self)

    def __neg__(self) -> "Expr":
        return BinOp("*", Scalar(-1.0), self)

    def accesses(self) -> list["Access"]:
        """Every data access in the expression, in evaluation order."""
        found: list[Access] = []
        _collect_accesses(self, found)
        return found


@dataclass(frozen=True)
class Scalar(Expr):
    """A numeric literal."""

    value: float

    def __post_init__(self):
        object.__setattr__(self, "value", float(self.value))


@dataclass(frozen=True)
class Symbol(Expr):
    """A named scalar runtime parameter (e.g. the time step ``dt``)."""

    name: str
    default: float = 0.0


@dataclass(frozen=True)
class Access(Expr):
    """A read of a function at a relative (time, space...) offset."""

    function: "Function"
    time_offset: int
    space_offsets: tuple[int, ...]

    def shifted(self, dim: int, by: int) -> "Access":
        offsets = list(self.space_offsets)
        offsets[dim] += by
        return Access(self.function, self.time_offset, tuple(offsets))


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary arithmetic operation."""

    op: str
    lhs: Expr
    rhs: Expr


def as_expr(value) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float, np.floating, np.integer)):
        return Scalar(float(value))
    raise TypeError(f"cannot convert {value!r} to a symbolic expression")


def _collect_accesses(expr: Expr, out: list) -> None:
    if isinstance(expr, Access):
        out.append(expr)
    elif isinstance(expr, BinOp):
        _collect_accesses(expr.lhs, out)
        _collect_accesses(expr.rhs, out)


# ---------------------------------------------------------------------------
# Finite-difference coefficients
# ---------------------------------------------------------------------------

@lru_cache(maxsize=None)
def central_difference_coefficients(derivative: int, space_order: int) -> tuple[tuple[int, float], ...]:
    """Coefficients of the central FD approximation of ``d^derivative/dx^derivative``.

    Returns ``((offset, coefficient), ...)`` for offsets ``-r..r`` with
    ``r = space_order // 2`` (or ``(space_order+1)//2`` when needed for odd
    derivative orders), computed from the Taylor / Vandermonde system.  The
    coefficients assume unit grid spacing; the spacing factor is applied by
    the caller.
    """
    if space_order < derivative:
        raise ValueError("space order must be at least the derivative order")
    radius = max((space_order + (derivative % 2)) // 2, (derivative + 1) // 2)
    offsets = list(range(-radius, radius + 1))
    system = np.array(
        [[float(offset) ** power for offset in offsets] for power in range(len(offsets))]
    )
    rhs = np.zeros(len(offsets))
    rhs[derivative] = float(_math.factorial(derivative))
    coefficients = np.linalg.solve(system, rhs)
    cleaned = []
    for offset, coefficient in zip(offsets, coefficients):
        if abs(coefficient) > 1e-12:
            cleaned.append((int(offset), float(coefficient)))
    return tuple(cleaned)


# ---------------------------------------------------------------------------
# Functions (grid data symbols)
# ---------------------------------------------------------------------------

class Function(Expr):
    """A time-independent grid function."""

    is_time_function = False

    def __init__(self, name: str, grid: Grid, space_order: int = 2, dtype=np.float32):
        self.name = name
        self.grid = grid
        self.space_order = int(space_order)
        if self.space_order % 2 != 0 or self.space_order < 2:
            raise ValueError("space_order must be an even integer >= 2")
        self.dtype = np.dtype(dtype)
        self._data = np.zeros(self.shape_with_halo, dtype=self.dtype)

    # -- data -----------------------------------------------------------------
    @property
    def halo(self) -> int:
        return self.space_order // 2

    @property
    def shape_with_halo(self) -> tuple[int, ...]:
        return tuple(s + 2 * self.halo for s in self.grid.shape)

    @property
    def data(self) -> np.ndarray:
        """The interior (halo-excluded) view of the buffer."""
        inner = tuple(slice(self.halo, self.halo + s) for s in self.grid.shape)
        return self._data[inner]

    @property
    def data_with_halo(self) -> np.ndarray:
        return self._data

    # -- symbolic accessors ------------------------------------------------------
    def at(self, *space_offsets: int) -> Access:
        offsets = tuple(space_offsets) if space_offsets else (0,) * self.grid.ndim
        return Access(self, 0, offsets)

    def _as_access(self) -> Access:
        return Access(self, 0, (0,) * self.grid.ndim)

    def second_derivative(self, dim: int) -> Expr:
        return _fd_expansion(self._as_access(), dim, 2, self.space_order, self.grid.spacing[dim])

    def first_derivative(self, dim: int) -> Expr:
        return _fd_expansion(self._as_access(), dim, 1, self.space_order, self.grid.spacing[dim])

    @property
    def laplace(self) -> Expr:
        terms = [self.second_derivative(d) for d in range(self.grid.ndim)]
        result = terms[0]
        for term in terms[1:]:
            result = result + term
        return result

    # Expression protocol: a bare function used in an expression means "value
    # at the current point and current time".
    def accesses(self) -> list[Access]:
        return [self._as_access()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name}, so={self.space_order})"


class TimeFunction(Function):
    """A time-dependent grid function with ``time_order + 1`` buffers."""

    is_time_function = True

    def __init__(
        self,
        name: str,
        grid: Grid,
        space_order: int = 2,
        time_order: int = 1,
        dtype=np.float32,
    ):
        self.time_order = int(time_order)
        if self.time_order not in (1, 2):
            raise ValueError("only time_order 1 and 2 are supported")
        super().__init__(name, grid, space_order, dtype)
        self._data = np.zeros((self.buffers,) + self.shape_with_halo, dtype=self.dtype)

    @property
    def buffers(self) -> int:
        return self.time_order + 1

    @property
    def data(self) -> np.ndarray:
        inner = (slice(None),) + tuple(
            slice(self.halo, self.halo + s) for s in self.grid.shape
        )
        return self._data[inner]

    # -- symbolic time accessors ----------------------------------------------------
    def _as_access(self) -> Access:
        return Access(self, 0, (0,) * self.grid.ndim)

    @property
    def forward(self) -> Access:
        return Access(self, +1, (0,) * self.grid.ndim)

    @property
    def backward(self) -> Access:
        return Access(self, -1, (0,) * self.grid.ndim)

    @property
    def dt(self) -> Expr:
        """Forward first time derivative ``(u(t+1) - u(t)) / dt``."""
        return BinOp("/", BinOp("-", self.forward, self._as_access()), Symbol("dt"))

    @property
    def dt2(self) -> Expr:
        """Central second time derivative ``(u(t+1) - 2 u(t) + u(t-1)) / dt^2``."""
        numerator = BinOp(
            "-",
            BinOp("+", self.forward, self.backward),
            BinOp("*", Scalar(2.0), self._as_access()),
        )
        return BinOp("/", numerator, BinOp("*", Symbol("dt"), Symbol("dt")))


class Constant(Symbol):
    """A named scalar constant with a value."""

    def __init__(self, name: str, value: float = 0.0):
        super().__init__(name=name, default=float(value))


def _fd_expansion(access: Access, dim: int, derivative: int, space_order: int, spacing: float) -> Expr:
    coefficients = central_difference_coefficients(derivative, space_order)
    scale = 1.0 / (spacing ** derivative)
    terms: list[Expr] = []
    for offset, coefficient in coefficients:
        terms.append(BinOp("*", Scalar(coefficient * scale), access.shifted(dim, offset)))
    result: Expr = terms[0]
    for term in terms[1:]:
        result = BinOp("+", result, term)
    return result


# ---------------------------------------------------------------------------
# Equations and solve
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Eq:
    """An equation ``lhs = rhs``."""

    lhs: Expr
    rhs: Expr

    def __init__(self, lhs, rhs):
        object.__setattr__(self, "lhs", as_expr(lhs) if not isinstance(lhs, Expr) else lhs)
        object.__setattr__(self, "rhs", as_expr(rhs))


class SolveError(Exception):
    """Raised when an equation cannot be solved for the requested unknown."""


def solve(equation: Eq, target: Access) -> Expr:
    """Solve an explicit time-update equation for ``target`` (e.g. ``u.forward``).

    Supports the two patterns the paper's benchmarks use:

    * ``Eq(u.dt, rhs)``   ->  ``u + dt * rhs``
    * ``Eq(u.dt2, rhs)``  ->  ``2 u - u.backward + dt^2 * rhs``
    """
    if not isinstance(target, Access) or target.time_offset != +1:
        raise SolveError("solve() currently targets forward time accesses (u.forward)")
    function = target.function
    if not isinstance(function, TimeFunction):
        raise SolveError("solve() requires a TimeFunction unknown")
    lhs = equation.lhs
    rhs = equation.rhs
    dt = Symbol("dt")
    current = Access(function, 0, target.space_offsets)
    if _is_first_time_derivative(lhs, function):
        return current + dt * rhs
    if _is_second_time_derivative(lhs, function):
        backward = Access(function, -1, target.space_offsets)
        return Scalar(2.0) * current - backward + dt * dt * rhs
    raise SolveError(
        "solve() only understands equations whose left-hand side is u.dt or u.dt2"
    )


def _is_first_time_derivative(expr: Expr, function: TimeFunction) -> bool:
    return (
        isinstance(expr, BinOp)
        and expr.op == "/"
        and isinstance(expr.rhs, Symbol)
        and expr.rhs.name == "dt"
        and isinstance(expr.lhs, BinOp)
        and expr.lhs.op == "-"
        and isinstance(expr.lhs.lhs, Access)
        and expr.lhs.lhs.time_offset == 1
        and expr.lhs.lhs.function is function
    )


def _is_second_time_derivative(expr: Expr, function: TimeFunction) -> bool:
    if not (isinstance(expr, BinOp) and expr.op == "/"):
        return False
    denominator = expr.rhs
    if not (
        isinstance(denominator, BinOp)
        and denominator.op == "*"
        and isinstance(denominator.lhs, Symbol)
        and denominator.lhs.name == "dt"
    ):
        return False
    numerator = expr.lhs
    accesses = []
    _collect_accesses(numerator, accesses)
    time_offsets = sorted(a.time_offset for a in accesses if a.function is function)
    return time_offsets[:1] == [-1] and 1 in time_offsets
