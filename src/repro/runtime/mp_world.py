"""OS-process SPMD world: shared-memory fields and queue-backed messaging.

This is the process-runtime counterpart of
:class:`~repro.interp.mpi_runtime.SimulatedMPI`.  Each rank runs in its own
OS process (see :mod:`repro.runtime.worker_pool`), so NumPy kernels execute
truly in parallel instead of time-slicing one GIL:

* **fields** live in ``multiprocessing.shared_memory`` blocks: the parent
  scatters each rank's local buffer (core slab + halo) into a block, workers
  attach and compute in place, and the parent gathers straight out of the
  block — field contents never travel through a pickle;
* **messages** travel through one ``multiprocessing.Queue`` inbox per rank.
  :class:`ProcessRankCommunicator` keeps the exact mailbox discipline of the
  thread world — matching by ``(source, tag)``, buffered sends, blocking
  receives with a timeout — and implements the same
  :class:`~repro.interp.mpi_runtime.CommunicatorBase` interface, so the
  collective algorithms (and their tag space) are literally shared code;
* **statistics** are counted locally per rank (no cross-process locks) and
  merged deterministically by the parent (:mod:`repro.runtime.stats`).
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import sys
import time
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..interp.mpi_runtime import (
    CommStatistics,
    CommunicatorBase,
    MPIRuntimeError,
    _copy_into,
)


def default_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context the runtime uses (fork on Linux only).

    Fork keeps worker startup cheap and inherits the imported compiler stack.
    It is restricted to Linux: macOS frameworks abort in forked children
    (which is why CPython's own default there is spawn).  Everything is
    passed explicitly so spawn platforms work identically, just with a
    slower first run.
    """
    methods = multiprocessing.get_all_start_methods()
    if sys.platform == "linux" and "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


_AVAILABLE: Optional[bool] = None


def processes_available() -> bool:
    """True when shared memory and process creation work on this platform.

    ``run_distributed(runtime="processes")`` falls back to the thread world
    when this is False, so callers never have to guard themselves.
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            from multiprocessing import shared_memory

            block = shared_memory.SharedMemory(create=True, size=16)
            block.close()
            block.unlink()
            _AVAILABLE = True
        except Exception:
            _AVAILABLE = False
    return _AVAILABLE


# ---------------------------------------------------------------------------
# shared-memory fields
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SharedFieldSpec:
    """Everything a worker needs to attach one shared field buffer."""

    name: str
    shape: tuple[int, ...]
    dtype: str


class SharedField:
    """A NumPy array backed by a ``multiprocessing.shared_memory`` block."""

    def __init__(self, block, array: np.ndarray, owner: bool):
        self._block = block
        self.array = array
        self._owner = owner

    @classmethod
    def create(cls, source: np.ndarray) -> "SharedField":
        """Allocate a block in the parent and copy ``source`` into it."""
        from multiprocessing import shared_memory

        block = shared_memory.SharedMemory(create=True, size=max(source.nbytes, 1))
        array = np.ndarray(source.shape, dtype=source.dtype, buffer=block.buf)
        array[...] = source
        return cls(block, array, owner=True)

    @classmethod
    def attach(cls, spec: SharedFieldSpec) -> "SharedField":
        """Attach to a parent-owned block from a worker process."""
        from multiprocessing import resource_tracker, shared_memory

        # The attaching worker must not (re-)register the block with the
        # resource tracker: the parent owns the lifetime and unlinks it, and
        # a second registration either double-unregisters (fork, shared
        # tracker) or produces bogus "leaked shared_memory" warnings at
        # worker exit (spawn).  Python < 3.13 has no track=False, so the
        # registration hook is silenced for the duration of the attach (the
        # worker command loop is single-threaded).
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            block = shared_memory.SharedMemory(name=spec.name)
        finally:
            resource_tracker.register = original_register
        array = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=block.buf)
        return cls(block, array, owner=False)

    @property
    def spec(self) -> SharedFieldSpec:
        return SharedFieldSpec(
            name=self._block.name,
            shape=tuple(self.array.shape),
            dtype=self.array.dtype.str,
        )

    def release(self) -> None:
        """Close this handle (and unlink the block when this is the owner)."""
        self.array = None
        self._block.close()
        if self._owner:
            try:
                self._block.unlink()
            except FileNotFoundError:  # pragma: no cover - double release
                pass


# ---------------------------------------------------------------------------
# point-to-point transport
# ---------------------------------------------------------------------------

class MPRequest:
    """Request handle of the process world (same surface as ``SimRequest``)."""

    __slots__ = ("kind", "comm", "source", "tag", "buffer", "completed")

    def __init__(self, kind: str, comm: "ProcessRankCommunicator", source: int,
                 tag: int, buffer: Optional[np.ndarray]):
        self.kind = kind
        self.comm = comm
        self.source = source
        self.tag = tag
        self.buffer = buffer
        self.completed = kind == "send"  # buffered sends complete immediately

    def test(self) -> bool:
        if self.completed:
            return True
        message = self.comm._match(self.source, self.tag, block=False)
        if message is None:
            return False
        _copy_into(self.buffer, message)
        self.completed = True
        return True

    def wait(self, timeout: Optional[float] = None) -> None:
        if self.completed:
            return
        message = self.comm._match(self.source, self.tag, block=True, timeout=timeout)
        _copy_into(self.buffer, message)
        self.completed = True


class ProcessRankCommunicator(CommunicatorBase):
    """One rank's communicator, living inside a worker process.

    ``inboxes[r]`` is rank ``r``'s mailbox queue; any rank may put into any
    other rank's inbox, only the owner gets from its own.  Every envelope
    carries the run id so a message stranded by a failed earlier run can never
    be matched by a later one.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        inboxes: Sequence,
        run_id: int,
        timeout: float = 30.0,
    ):
        if not 0 <= rank < size:
            raise MPIRuntimeError(f"rank {rank} outside world of size {size}")
        self.rank = rank
        self._size = size
        self._inboxes = inboxes
        self._run_id = run_id
        self.timeout = timeout
        self.statistics = CommStatistics()
        # (source, tag) -> deque of arrays already pulled out of the inbox.
        self._stash: dict[tuple[int, int], deque] = defaultdict(deque)

    @property
    def size(self) -> int:
        return self._size

    # -- transport ------------------------------------------------------------
    def send(self, data: np.ndarray, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self._size:
            raise MPIRuntimeError(f"send to invalid rank {dest}")
        payload = np.array(data, copy=True)
        self._inboxes[dest].put((self._run_id, self.rank, tag, payload))
        self.statistics.messages_sent += 1
        self.statistics.bytes_sent += payload.nbytes

    def isend(self, data: np.ndarray, dest: int, tag: int = 0) -> MPRequest:
        self.send(data, dest, tag)
        return MPRequest("send", self, dest, tag, None)

    def recv(self, buffer: np.ndarray, source: int, tag: int = 0) -> np.ndarray:
        message = self._match(source, tag, block=True)
        _copy_into(np.asarray(buffer), message)
        return buffer

    def irecv(self, buffer: np.ndarray, source: int, tag: int = 0) -> MPRequest:
        return MPRequest("recv", self, source, tag, np.asarray(buffer))

    def wait(self, request: MPRequest) -> None:
        request.wait(self.timeout)

    # -- statistics hooks ------------------------------------------------------
    def _record_collective(self) -> None:
        self.statistics.collectives += 1

    def _record_barrier(self) -> None:
        self.statistics.barriers += 1

    # -- mailbox ---------------------------------------------------------------
    def _match(
        self,
        source: int,
        tag: int,
        *,
        block: bool,
        timeout: Optional[float] = None,
    ) -> Optional[np.ndarray]:
        """Pop the next message from ``(source, tag)``, draining the inbox.

        Non-matching envelopes are stashed for later receives; envelopes from
        another run are dropped.  Blocking waits honour the world timeout.
        """
        wanted = (source, tag)
        deadline = time.monotonic() + (timeout if timeout is not None else self.timeout)
        inbox = self._inboxes[self.rank]
        while True:
            stashed = self._stash.get(wanted)
            if stashed:
                return stashed.popleft()
            if block:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise MPIRuntimeError(
                        f"rank {self.rank} timed out waiting for a message "
                        f"from rank {source} with tag {tag}"
                    )
                try:
                    envelope = inbox.get(timeout=min(remaining, 0.2))
                except queue_module.Empty:
                    continue
            else:
                try:
                    envelope = inbox.get_nowait()
                except queue_module.Empty:
                    return None
            run_id, sender, sent_tag, payload = envelope
            if run_id != self._run_id:
                continue  # stranded by a failed earlier run: drop
            self._stash[(sender, sent_tag)].append(payload)
