"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper: the
pytest-benchmark timings measure the cost of producing the data (compilation
through the shared stack + performance-model evaluation, and for the small
correctness kernels actual execution), while the figure/table rows themselves
are attached to the benchmark's ``extra_info`` so `pytest benchmarks/
--benchmark-only` reproduces the evaluation's numbers in one run.
"""

from __future__ import annotations

import json


def attach_rows(benchmark, name: str, rows) -> None:
    """Store experiment rows on the benchmark result and echo a short summary."""
    benchmark.extra_info["experiment"] = name
    benchmark.extra_info["rows"] = json.dumps(rows, default=float)
