"""Distributed-memory transformations: decomposition, dmp insertion, MPI lowering."""

from .decomposition import (
    DecompositionError,
    DecompositionStrategy,
    GridSlicingStrategy,
    LocalDomain,
    communicated_elements_per_step,
    strategy_for_grid,
)
from .dmp_to_mpi import ConvertDMPToMPIPass, lower_dmp_to_mpi
from .redundant_swap_elim import RedundantSwapEliminationPass, eliminate_redundant_swaps
from .stencil_to_dmp import DistributeStencilPass, DistributionSummary, distribute_stencil

__all__ = [
    "DecompositionStrategy", "GridSlicingStrategy", "LocalDomain",
    "DecompositionError", "strategy_for_grid", "communicated_elements_per_step",
    "DistributeStencilPass", "DistributionSummary", "distribute_stencil",
    "RedundantSwapEliminationPass", "eliminate_redundant_swaps",
    "ConvertDMPToMPIPass", "lower_dmp_to_mpi",
]
