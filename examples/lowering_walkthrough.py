"""Walk through the lowering chain of fig. 4: stencil -> dmp -> mpi -> func.

Builds the paper's 1D Jacobi example, distributes it over two ranks, and
prints the IR after each lowering stage so the progressive introduction of
halo-exchange and message-passing detail is visible.

Run with:  python examples/lowering_walkthrough.py
"""

from repro.dialects.dmp import SwapOp
from repro.dialects.mpi import IsendOp, IrecvOp, WaitallOp
from repro.frontends.oec import StencilProgramBuilder
from repro.ir import print_module
from repro.transforms.distribute import (
    GridSlicingStrategy,
    distribute_stencil,
    lower_dmp_to_mpi,
)
from repro.transforms.mpi import lower_mpi_to_func
from repro.transforms.stencil import infer_shapes


def build_program():
    builder = StencilProgramBuilder("kernel", shape=(64,), halo=1, dtype="f64")
    u = builder.add_field("u")
    v = builder.add_field("v")

    def jacobi(s):
        left, centre, right = s.access(0, (-1,)), s.access(0, (0,)), s.access(0, (1,))
        two = s.constant(2.0)
        return s.sub(s.add(left, right), s.mul(two, centre))

    builder.add_stencil(inputs=[u], output=v, body=jacobi)
    builder.swap(u, v)
    return builder.build()


def show(title: str, module, keep=18) -> None:
    print(f"\n{'=' * 12} {title} {'=' * 12}")
    lines = print_module(module).splitlines()
    print("\n".join(lines[:keep]))
    if len(lines) > keep:
        print(f"  ... ({len(lines) - keep} more lines)")


def main() -> None:
    module = build_program()
    infer_shapes(module)
    show("stencil level (global domain)", module)

    strategy = GridSlicingStrategy([2])
    summary = distribute_stencil(module, strategy)
    print(f"\nglobal domain {summary.global_shape} -> local core "
          f"{summary.local_domain.core_shape} + halo {summary.local_domain.halo_lower}; "
          f"{summary.swaps_inserted} dmp.swap inserted, "
          f"{summary.halo_elements_per_swap} halo elements per swap")
    show("dmp level (local domain + declarative halo exchange)", module)
    swaps = [op for op in module.walk() if isinstance(op, SwapOp)]
    for exchange in swaps[0].swaps:
        print("  ", exchange)

    lower_dmp_to_mpi(module)
    point_to_point = sum(1 for op in module.walk() if isinstance(op, (IsendOp, IrecvOp)))
    waits = sum(1 for op in module.walk() if isinstance(op, WaitallOp))
    print(f"\nafter dmp->mpi: {point_to_point} isend/irecv pairs, {waits} waitall")

    lower_mpi_to_func(module)
    calls = sorted(
        {op.callee for op in module.walk() if op.name == "func.call" and op.callee.startswith("MPI_")}
    )
    print(f"after mpi->func: external MPI symbols referenced: {calls}")
    show("MPI level (library calls with mpich magic constants)", module, keep=30)


if __name__ == "__main__":
    main()
