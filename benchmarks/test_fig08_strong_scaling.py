"""Figure 8: strong scaling of 3D so4 heat/wave kernels to 128 ARCHER2 nodes.

The scaling curves come from the alpha-beta + roofline model; a small real
distributed execution on the simulated MPI runtime is benchmarked alongside so
the halo-exchange machinery itself is exercised.  The process-runtime smoke at
the bottom measures *real* wall-clock strong scaling (the fig. 8 shape) on a
GIL-bound kernel: thread ranks serialize on the interpreter, process ranks do
not.
"""

import os
import time

import numpy as np
import pytest

from bench_helpers import attach_rows
from repro.core import Session, compile_stencil_program, default_session, dmp_target
from repro.evaluation import figure8_strong_scaling
from repro.workloads import heat_diffusion


@pytest.mark.benchmark(group="figure8")
def test_figure8_scaling_rows(benchmark):
    rows = benchmark(figure8_strong_scaling, (1, 2, 4, 8, 16, 32, 64, 128))
    attach_rows(benchmark, "figure8", rows)
    for stack in ("devito", "xdsl"):
        series = [r for r in rows if r["stack"] == stack and r["figure"] == "8a"]
        throughputs = [r["gpts"] for r in series]
        assert all(b > a for a, b in zip(throughputs, throughputs[1:]))
    devito_128 = next(r for r in rows if r["stack"] == "devito" and r["nodes"] == 128 and r["figure"] == "8a")
    xdsl_128 = next(r for r in rows if r["stack"] == "xdsl" and r["nodes"] == 128 and r["figure"] == "8a")
    assert devito_128["parallel_efficiency"] >= xdsl_128["parallel_efficiency"]


@pytest.mark.benchmark(group="figure8-execution")
@pytest.mark.parametrize(
    "ranks,threads_per_rank",
    [((2, 2), 1), ((4, 2), 1), ((2, 2), 2), ((2, 1), 4)],
    ids=["4ranksx1t", "8ranksx1t", "4ranksx2t", "2ranksx4t"],
)
def test_distributed_heat_execution(benchmark, ranks, threads_per_rank):
    """Real distributed execution of a small 2D heat problem.

    The (ranks x threads_per_rank) grid mirrors the paper's hybrid MPI+OpenMP
    sweep: the same total parallelism is reached with different splits
    between process ranks and intra-rank thread teams.
    """
    workload = heat_diffusion((16, 16), space_order=2, dtype=np.float64)
    module = workload.operator(backend="xdsl").stencil_module(dt=workload.dt)
    program = compile_stencil_program(module, dmp_target(ranks))

    def run():
        u0 = np.zeros((18, 18))
        u0[8:10, 8:10] = 1.0
        u1 = u0.copy()
        result = default_session().run(
            program, [u0, u1], [2], threads_per_rank=threads_per_rank
        )
        return result

    result = benchmark(run)
    assert result.messages_sent > 0
    assert result.threads_per_rank == threads_per_rank


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_process_runtime_strong_scaling_smoke():
    """4 process ranks must beat 4 thread ranks >= 1.5x on a GIL-bound kernel.

    ``backend="interpreter"`` forces the pure-python tree walker, so the
    thread world serializes all ranks on the GIL while the process world
    spreads them over cores — this is the wall-clock analogue of the paper's
    fig. 8 strong-scaling measurement.  Skipped gracefully where it cannot
    mean anything (fewer than 4 usable cores, or no process runtime).
    """
    from repro.runtime import processes_available, shutdown_worker_pool

    if _usable_cpus() < 4:
        pytest.skip("needs >= 4 usable CPU cores for a meaningful comparison")
    if not processes_available():
        pytest.skip("process runtime unavailable on this platform")

    workload = heat_diffusion((128, 128), space_order=2, dtype=np.float64)
    module = workload.operator(backend="xdsl").stencil_module(dt=workload.dt)
    program = compile_stencil_program(module, dmp_target((2, 2)))

    def run(runtime: str) -> float:
        u0 = np.zeros((130, 130))
        u0[64:66, 64:66] = 1.0
        u1 = u0.copy()
        start = time.perf_counter()
        result = default_session().run(
            program, [u0, u1], [4],
            backend="interpreter", runtime=runtime, timeout=600.0,
        )
        elapsed = time.perf_counter() - start
        assert result.runtime == runtime
        return elapsed

    try:
        run("processes")  # warm-up: spawn the pool, ship the program
        t_processes = min(run("processes") for _ in range(2))
        t_threads = min(run("threads") for _ in range(2))
        speedup = t_threads / t_processes
        print(f"\nstrong-scaling smoke: threads {t_threads:.2f}s, "
              f"processes {t_processes:.2f}s, speedup {speedup:.2f}x")
        smoke_json = os.environ.get("BENCH_SMOKE_JSON")
        if smoke_json:
            # bench_regression.py consumes this row for BENCH_pr.json.
            import json

            with open(smoke_json, "w") as handle:
                json.dump(
                    {
                        "kernel": "process-strong-scaling",
                        "shape": [128, 128],
                        "backend": "processes",
                        "threads_s": t_threads,
                        "processes_s": t_processes,
                        "speedup": speedup,
                    },
                    handle,
                )
        assert speedup >= 1.5, (
            f"expected >= 1.5x wall-clock speedup at 4 process ranks, "
            f"got {speedup:.2f}x"
        )
    finally:
        shutdown_worker_pool()


def test_session_warmup_smoke():
    """Session.warmup() absorbs the spawn latency of the first hybrid run.

    The ROADMAP warm-up item: a warmed session has its worker processes and
    worker-side thread teams already spawned (and the program already
    shipped), so the first ``plan.run()`` pays none of it.  Asserted two
    ways: deterministic counters (the warmed run creates no pool and ships
    nothing) and a wall-clock smoke (the warmed first run must not be
    materially slower than the cold first run, which pays the spawns — in
    practice it is several times faster).
    """
    from repro.runtime import processes_available

    if not processes_available():
        pytest.skip("process runtime unavailable on this platform")

    workload = heat_diffusion((64, 64), space_order=2, dtype=np.float64)
    module = workload.operator(backend="xdsl").stencil_module(dt=workload.dt)
    program = compile_stencil_program(module, dmp_target((2, 1)))
    program.compiled_kernel("kernel")  # parent-side compile outside timings

    def fields():
        u0 = np.zeros((66, 66))
        u0[32:34, 32:34] = 1.0
        return [u0, u0.copy()]

    def first_run_seconds(warm: bool) -> float:
        with Session(runtime="processes", threads_per_rank=2) as session:
            plan = session.plan(program)
            if warm:
                plan.warmup()
                pools_before = session.worker_pools_created
                shipped_before = session._pool_manager.pool.programs_shipped
            start = time.perf_counter()
            plan.run(fields(), [2])
            elapsed = time.perf_counter() - start
            if warm:
                assert session.worker_pools_created == pools_before, (
                    "the warmed first run spawned a worker pool"
                )
                assert (
                    session._pool_manager.pool.programs_shipped == shipped_before
                ), "the warmed first run re-shipped the program"
            return elapsed

    cold = first_run_seconds(warm=False)
    warm = first_run_seconds(warm=True)
    print(f"\nwarm-up smoke: cold first run {cold*1e3:.1f} ms, "
          f"warmed first run {warm*1e3:.1f} ms")
    # The warmed run skips pool spawn + program shipping; allow generous
    # noise headroom but catch the regression where warm-up stops working
    # (warm would then pay the same spawn latency as cold).
    assert warm <= cold * 1.2, (
        f"first run after warmup ({warm:.3f}s) should not be slower than the "
        f"cold first run ({cold:.3f}s) that pays the spawn latency"
    )


def test_hybrid_strong_scaling_smoke():
    """2 ranks x 2 threads must not lose to 2 ranks x 1 thread (fig. 8 hybrid).

    This is the wall-clock analogue of the paper's hybrid MPI+OpenMP points:
    the same 2-rank decomposition, with the vectorized backend spreading each
    rank's nests over an intra-rank thread team.  The kernel is sized so the
    NumPy work (which releases the GIL) dominates the queue traffic.  Skipped
    where it cannot mean anything (fewer than 4 usable cores, no process
    runtime).
    """
    from repro.runtime import processes_available, shutdown_worker_pool

    if _usable_cpus() < 4:
        pytest.skip("needs >= 4 usable CPU cores for a meaningful comparison")
    if not processes_available():
        pytest.skip("process runtime unavailable on this platform")

    shape = (512, 512)
    steps = 30
    workload = heat_diffusion(shape, space_order=2, dtype=np.float64)
    module = workload.operator(backend="xdsl").stencil_module(dt=workload.dt)
    program = compile_stencil_program(module, dmp_target((2, 1)))

    def run(threads_per_rank: int) -> float:
        u0 = np.zeros(tuple(s + 2 for s in shape))
        u0[shape[0] // 2, shape[1] // 2] = 1.0
        u1 = u0.copy()
        start = time.perf_counter()
        result = default_session().run(
            program, [u0, u1], [steps],
            backend="vectorized", runtime="processes",
            threads_per_rank=threads_per_rank, timeout=600.0,
        )
        elapsed = time.perf_counter() - start
        assert result.runtime == "processes"
        assert result.threads_per_rank == threads_per_rank
        return elapsed

    try:
        run(2)  # warm-up: spawn the pool and both teams, ship the program
        run(1)
        t_hybrid = min(run(2) for _ in range(3))
        t_flat = min(run(1) for _ in range(3))
        speedup = t_flat / t_hybrid
        print(f"\nhybrid smoke (2 ranks): 1 thread/rank {t_flat:.2f}s, "
              f"2 threads/rank {t_hybrid:.2f}s, speedup {speedup:.2f}x")
        smoke_json = os.environ.get("BENCH_HYBRID_SMOKE_JSON")
        if smoke_json:
            # bench_regression.py consumes this row for BENCH_pr.json.
            import json

            with open(smoke_json, "w") as handle:
                json.dump(
                    {
                        "kernel": "hybrid-strong-scaling",
                        "shape": list(shape),
                        "backend": "processes",
                        "ranks": [2, 1],
                        "threads_per_rank": 2,
                        "flat_s": t_flat,
                        "hybrid_s": t_hybrid,
                        "speedup": speedup,
                    },
                    handle,
                )
        # The committed expectation lives in benchmarks/baseline.json (floor
        # 0.9, optional): measured wins are typically > 1.2x, but a 4-vCPU CI
        # runner hosting 2 ranks x 2 threads plus the parent is noisy, so the
        # in-test assertion only catches gross regressions (team deadlocks,
        # nests silently dropping out of the team path).
        assert speedup >= 0.9, (
            f"expected the 2x2 hybrid run to roughly match or beat "
            f"2 ranks x 1 thread, got {speedup:.2f}x"
        )
    finally:
        shutdown_worker_pool()
