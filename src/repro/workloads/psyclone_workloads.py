"""PSyclone-side benchmark kernels (paper §6.2).

* **PW advection** (Piacsek & Williams 1970) — the advection scheme used by the
  MONC atmospheric model: three independent stencil computations over three
  prognostic fields (u, v, w) producing three source terms.  Because the three
  stencils are independent they can be fused into a single stencil region.
* **Tracer advection** (traadv) — the NEMO ocean-model tracer advection kernel
  from the PSyclone benchmark suite: a long sequence of stencil computations
  over six fields with producer/consumer dependencies between them (the paper
  reports 24 computations forming 18 separate stencil regions), wrapped in an
  outer loop of 100 iterations.

The Fortran below is a faithful *shape* reproduction (field counts, stencil
counts, dependency structure, arithmetic volume), not the production source,
which is what the evaluation's performance behaviour depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..frontends.psyclone import PsycloneXDSLBackend, Schedule, parse_fortran

def _pw_advection_source() -> str:
    """Three independent advection stencils (one per velocity component)."""
    template = """
  do k = 1, nz
    do j = 1, ny
      do i = 1, nx
        {out}(i, j, k) = 0.25 * ({f}({ip}, {jp}, {kp}) - {f}({im}, {jm}, {km})) * {f}(i, j, k) + 0.5 * ({f}({ip}, {jp}, {kp}) + {f}({im}, {jm}, {km})) - {f}(i, j, k)
      end do
    end do
  end do"""
    body = ""
    for out, field, axis in (("su", "u", 0), ("sv", "v", 1), ("sw", "w", 2)):
        plus = ["i", "j", "k"]
        minus = ["i", "j", "k"]
        plus[axis] = plus[axis] + "+1"
        minus[axis] = minus[axis] + "-1"
        body += template.format(
            out=out, f=field,
            ip=plus[0], jp=plus[1], kp=plus[2],
            im=minus[0], jm=minus[1], km=minus[2],
        )
    return f"subroutine pw_advection(su, sv, sw, u, v, w)\n{body}\nend subroutine\n"


def _tracer_advection_source(computations: int = 24, masked: bool = False) -> str:
    """A chain of dependent stencil computations over six fields (NEMO traadv).

    The kernel alternates between six fields; each computation reads the
    previous intermediate result (creating the dependencies that prevent
    fusion) plus one other field with a shifted access.  With ``masked`` the
    upwind flux of every computation is guarded by a ``merge`` on the sign of
    the previous field — the land/sea + upwind masking pattern of the
    production NEMO kernel, lowered to ``arith.cmpf``/``arith.select`` chains.
    """
    fields = ["tra", "pun", "pvn", "pwn", "zwx", "zwy"]
    name = "masked_tracer_advection" if masked else "tracer_advection"
    lines = [f"subroutine {name}({', '.join(fields)})"]
    axis_names = ["i", "j", "k"]
    for step in range(computations):
        out = fields[(step + 1) % len(fields)]
        previous = fields[step % len(fields)]
        other = fields[(step + 3) % len(fields)]
        axis = step % 3
        plus = list(axis_names)
        minus = list(axis_names)
        plus[axis] += "+1"
        minus[axis] += "-1"
        flux = (
            f"0.5 * ({previous}({', '.join(plus)}) - {previous}({', '.join(minus)}))"
            f" + 0.25 * {other}(i, j, k) + 0.125 * {previous}(i, j, k)"
        )
        if masked:
            expression = (
                f"merge({flux}, 0.125 * {previous}(i, j, k), "
                f"{previous}(i, j, k) > 0.5)"
            )
        else:
            expression = flux
        lines.append("  do k = 1, nz")
        lines.append("    do j = 1, ny")
        lines.append("      do i = 1, nx")
        lines.append(f"        {out}(i, j, k) = {expression}")
        lines.append("      end do")
        lines.append("    end do")
        lines.append("  end do")
    lines.append("end subroutine")
    return "\n".join(lines) + "\n"


@dataclass
class PsycloneWorkload:
    """A ready-to-compile PSyclone benchmark problem."""

    name: str
    source: str
    shape: tuple[int, ...]
    iterations: int

    @property
    def schedule(self) -> Schedule:
        return parse_fortran(self.source)

    def build_module(self, dtype=np.float32):
        return PsycloneXDSLBackend(dtype=dtype).build_module(
            self.schedule, self.shape, iterations=self.iterations
        )

    @property
    def grid_points(self) -> int:
        total = 1
        for extent in self.shape:
            total *= extent
        return total

    def arrays(self, halo: int = 1, dtype=np.float32, seed: int = 0) -> dict[str, np.ndarray]:
        """Deterministic input arrays (one per Fortran array argument)."""
        rng = np.random.default_rng(seed)
        schedule = self.schedule
        shape = tuple(s + 2 * halo for s in self.shape)
        return {
            name: rng.random(shape).astype(dtype)
            for name in schedule.array_names()
        }


def pw_advection(shape: Sequence[int] = (64, 64, 32), iterations: int = 1) -> PsycloneWorkload:
    """The Piacsek-Williams advection benchmark."""
    return PsycloneWorkload(
        name="pw",
        source=_pw_advection_source(),
        shape=tuple(int(s) for s in shape),
        iterations=iterations,
    )


def tracer_advection(
    shape: Sequence[int] = (64, 64, 32), iterations: int = 100, computations: int = 24
) -> PsycloneWorkload:
    """The NEMO tracer-advection benchmark (100 outer iterations by default)."""
    return PsycloneWorkload(
        name="traadv",
        source=_tracer_advection_source(computations),
        shape=tuple(int(s) for s in shape),
        iterations=iterations,
    )


def masked_tracer_advection(
    shape: Sequence[int] = (64, 64, 32), iterations: int = 100, computations: int = 24
) -> PsycloneWorkload:
    """Tracer advection with merge()-masked upwind fluxes (select chains)."""
    return PsycloneWorkload(
        name="traadv-masked",
        source=_tracer_advection_source(computations, masked=True),
        shape=tuple(int(s) for s in shape),
        iterations=iterations,
    )


#: Problem sizes (in millions of grid points) used in the paper's figures.
PAPER_PW_SIZES_CPU = {"pw-134m": (1024, 512, 256), "pw-1072m": (2048, 1024, 512), "pw-4288m": (4096, 2048, 512)}
PAPER_TRAADV_SIZES_CPU = {"traadv-4m": (256, 128, 128), "traadv-16m": (512, 256, 128), "traadv-128m": (1024, 1024, 128)}
PAPER_PW_SIZES_GPU = {"pw-8m": (256, 256, 128), "pw-33m": (512, 512, 128), "pw-134m": (1024, 1024, 128)}
PAPER_TRAADV_SIZES_GPU = {"traadv-4m": (256, 128, 128), "traadv-32m": (512, 512, 128), "traadv-128m": (1024, 1024, 128)}
#: Strong-scaling global sizes of fig. 11.
PAPER_PW_SCALING_SHAPE = (256, 256, 128)
PAPER_TRAADV_SCALING_SHAPE = (512, 512, 128)
