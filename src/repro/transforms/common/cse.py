"""Common sub-expression elimination for pure operations.

Two pure operations in the same block with identical names, operands and
attributes (and no regions) compute the same values; the later one is replaced
by the earlier one.  This mirrors the ``cse`` pass the paper reuses from the
shared MLIR infrastructure.
"""

from __future__ import annotations

from ...ir.context import MLContext
from ...ir.core import Block, Operation
from ...ir.pass_manager import ModulePass, PassRegistry
from ...ir.traits import is_pure


def _signature(op: Operation) -> tuple:
    # Attribute *objects* (not their hashes) are part of the key so that two
    # operations only merge when their attributes compare equal; relying on
    # hashes alone is unsound (e.g. hash(-1) == hash(-2) in CPython, which
    # would conflate stencil accesses at offsets (-1, 0) and (-2, 0)).
    return (
        op.name,
        tuple(id(operand) for operand in op.operands),
        tuple(sorted(op.attributes.items(), key=lambda item: item[0])),
        tuple(r.type for r in op.results),
    )


def _cse_block(block: Block) -> int:
    eliminated = 0
    seen: dict[tuple, Operation] = {}
    for op in list(block.ops):
        if op.parent is None:
            continue
        # Recurse into nested regions first (each with a fresh scope).
        for region in op.regions:
            for nested_block in region.blocks:
                eliminated += _cse_block(nested_block)
        if not is_pure(op) or op.regions or not op.results:
            continue
        signature = _signature(op)
        existing = seen.get(signature)
        if existing is None:
            seen[signature] = op
            continue
        for old_result, new_result in zip(op.results, existing.results):
            old_result.replace_by(new_result)
        op.erase()
        eliminated += 1
    return eliminated


def eliminate_common_subexpressions(module: Operation) -> int:
    """Run CSE over every block under ``module``; return the number of removals."""
    total = 0
    for region in module.regions:
        for block in region.blocks:
            total += _cse_block(block)
    return total


class CommonSubexpressionEliminationPass(ModulePass):
    """Deduplicate identical pure operations within each block."""

    name = "cse"

    def apply(self, ctx: MLContext, module: Operation) -> None:
        eliminate_common_subexpressions(module)


PassRegistry.register("cse", CommonSubexpressionEliminationPass)
