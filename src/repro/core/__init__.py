"""The shared compilation stack: targets, pipeline and executors.

This is the paper's primary contribution packaged behind a small API::

    from repro.core import compile_stencil_program, dmp_target, run_distributed

    program = compile_stencil_program(stencil_module, dmp_target((2, 2)))
    run_distributed(program, [u0, u1], [timesteps])
"""

from .executor import (
    EXECUTION_BACKENDS,
    EXECUTION_RUNTIMES,
    ExecutionError,
    ExecutionResult,
    gather_field,
    local_field_slices,
    run_distributed,
    run_local,
    scatter_field,
)
from .pipeline import CompilationError, CompiledProgram, compile_stencil_program
from .targets import (
    Target,
    TargetKind,
    cpu_target,
    dmp_target,
    fpga_target,
    gpu_target,
    smp_target,
)

__all__ = [
    "Target", "TargetKind",
    "cpu_target", "smp_target", "dmp_target", "gpu_target", "fpga_target",
    "CompiledProgram", "compile_stencil_program", "CompilationError",
    "run_local", "run_distributed", "scatter_field", "gather_field",
    "local_field_slices",
    "ExecutionResult", "ExecutionError", "EXECUTION_BACKENDS",
    "EXECUTION_RUNTIMES",
]
