"""Typed errors of the serving layer.

Every rejection the :class:`~repro.serve.Server` can produce is a distinct
exception type, so clients can branch on *why* a submission failed without
string-matching — the admission-control contract is that a full queue
rejects **fast** with :class:`QueueFullError` instead of blocking the
caller until capacity frees up.
"""

from __future__ import annotations


class ServeError(Exception):
    """Base class of every serving-layer error."""


class QueueFullError(ServeError):
    """The server's bounded run queue is at capacity.

    Raised synchronously by :meth:`~repro.serve.Server.submit` — the caller
    gets backpressure immediately and can retry, shed load, or route the job
    elsewhere.  Nothing was enqueued.
    """


class ServerClosedError(ServeError):
    """The server is closed (or closing) and accepts no new jobs."""


class JobCancelledError(ServeError):
    """The job was cancelled before it started running.

    Raised by :meth:`~repro.serve.JobHandle.result` on a handle whose
    :meth:`~repro.serve.JobHandle.cancel` succeeded (or that the server
    dropped during a non-draining close).
    """
