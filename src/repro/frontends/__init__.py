"""DSL frontends sharing the compilation stack (Devito, PSyclone, OEC-style)."""

from . import devito, oec, psyclone

__all__ = ["devito", "psyclone", "oec"]
