"""The func dialect: function definition, call and return."""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.attributes import StringAttr, SymbolRefAttr, TypeAttribute
from ..ir.context import Dialect
from ..ir.core import Block, Operation, Region, SSAValue
from ..ir.traits import HasParent, IsolatedFromAbove, IsTerminator, SymbolOp
from ..ir.types import FunctionType


class FuncOp(Operation):
    """A function definition (or declaration, when the body region is empty)."""

    name = "func.func"
    traits = frozenset([IsolatedFromAbove(), SymbolOp()])

    def __init__(
        self,
        sym_name: str,
        function_type: FunctionType,
        region: Optional[Region] = None,
        visibility: Optional[str] = None,
    ):
        attributes = {
            "sym_name": StringAttr(sym_name),
            "function_type": function_type,
        }
        if visibility is not None:
            attributes["sym_visibility"] = StringAttr(visibility)
        if region is None:
            region = Region(Block(arg_types=function_type.inputs))
        super().__init__(attributes=attributes, regions=[region])

    @staticmethod
    def external(sym_name: str, inputs: Sequence[TypeAttribute], outputs: Sequence[TypeAttribute]) -> "FuncOp":
        """Create an external function declaration (no body)."""
        func = FuncOp.create(
            attributes={
                "sym_name": StringAttr(sym_name),
                "function_type": FunctionType(inputs, outputs),
                "sym_visibility": StringAttr("private"),
            },
            regions=[Region()],
        )
        return func

    @property
    def sym_name(self) -> str:
        attr = self.attributes["sym_name"]
        assert isinstance(attr, StringAttr)
        return attr.data

    @property
    def function_type(self) -> FunctionType:
        attr = self.attributes["function_type"]
        assert isinstance(attr, FunctionType)
        return attr

    @property
    def body(self) -> Region:
        return self.regions[0]

    @property
    def is_declaration(self) -> bool:
        return not self.regions[0].blocks

    @property
    def args(self) -> list[SSAValue]:
        return list(self.body.block.args)

    def verify_(self) -> None:
        if "sym_name" not in self.attributes:
            raise ValueError("func.func requires a sym_name attribute")
        if not isinstance(self.attributes.get("function_type"), FunctionType):
            raise ValueError("func.func requires a function_type attribute")
        if self.is_declaration:
            return
        block = self.body.block
        if len(block.args) != len(self.function_type.inputs):
            raise ValueError(
                "func.func entry block arguments do not match the function type"
            )
        for arg, expected in zip(block.args, self.function_type.inputs):
            if arg.type != expected:
                raise ValueError(
                    f"func.func entry block argument type {arg.type} does not match "
                    f"function type input {expected}"
                )


class ReturnOp(Operation):
    """Return from the enclosing function."""

    name = "func.return"
    traits = frozenset([IsTerminator(), HasParent("func.func")])

    def __init__(self, values: Sequence[SSAValue] = ()):
        super().__init__(operands=list(values))

    def verify_(self) -> None:
        parent = self.parent_op
        if parent is None or not isinstance(parent, FuncOp):
            return
        expected = parent.function_type.outputs
        if len(expected) != len(self.operands):
            raise ValueError(
                f"func.return has {len(self.operands)} operands but the function "
                f"returns {len(expected)} values"
            )
        for operand, expected_type in zip(self.operands, expected):
            if operand.type != expected_type:
                raise ValueError(
                    f"func.return operand type {operand.type} does not match "
                    f"function result type {expected_type}"
                )


class CallOp(Operation):
    """Direct call to a named function."""

    name = "func.call"

    def __init__(
        self,
        callee: str | SymbolRefAttr,
        arguments: Sequence[SSAValue] = (),
        result_types: Sequence[TypeAttribute] = (),
    ):
        if isinstance(callee, str):
            callee = SymbolRefAttr(callee)
        super().__init__(
            operands=list(arguments),
            attributes={"callee": callee},
            result_types=list(result_types),
        )

    @property
    def callee(self) -> str:
        attr = self.attributes["callee"]
        assert isinstance(attr, SymbolRefAttr)
        return attr.string_value

    def verify_(self) -> None:
        if not isinstance(self.attributes.get("callee"), SymbolRefAttr):
            raise ValueError("func.call requires a callee symbol attribute")


def find_function(module: Operation, name: str) -> Optional[FuncOp]:
    """Look up a function by symbol name anywhere under ``module``."""
    for op in module.walk():
        if isinstance(op, FuncOp) and op.sym_name == name:
            return op
    return None


Func = Dialect("func", [FuncOp, ReturnOp, CallOp], [])
