"""Per-tenant statistics: one metrics registry per tenant.

Every completed job's ``ExecStatistics`` (per rank) and ``CommStatistics``
are ingested into the submitting tenant's own
:class:`~repro.obs.MetricsRegistry`, exactly the way the session-wide
registry ingests them — plain integer sums over ``dataclasses.fields`` in
rank order.  Materialising the dataclasses back out
(:meth:`TenantStats.exec_statistics` / :meth:`TenantStats.comm_statistics`)
is therefore **bit-identical** to merging the same runs on a standalone
:class:`~repro.core.session.Session`, which the serve tests assert.
"""

from __future__ import annotations

from ..obs import MetricsRegistry


class TenantStats:
    """Accumulated execution/communication counters of one tenant."""

    __slots__ = ("tenant", "registry", "jobs_completed", "jobs_failed")

    def __init__(self, tenant: str):
        self.tenant = tenant
        #: The tenant's private counter namespace (``exec.*``, ``comm.*``,
        #: ``runs``); snapshot with ``registry.snapshot()``.
        self.registry = MetricsRegistry()
        self.jobs_completed = 0
        self.jobs_failed = 0

    def ingest(self, result) -> None:
        """Fold one completed job's ``ExecutionResult`` into the registry."""
        self.registry.inc("runs")
        self.registry.ingest_all(result.statistics, "exec.")
        if result.comm_statistics is not None:
            self.registry.ingest(result.comm_statistics, "comm.")
        self.jobs_completed += 1

    def exec_statistics(self):
        """The tenant's summed ``ExecStatistics`` across all completed jobs."""
        return self.registry.as_exec_statistics()

    def comm_statistics(self):
        """The tenant's summed ``CommStatistics`` across all completed jobs."""
        return self.registry.as_comm_statistics()

    @property
    def runs(self) -> int:
        return self.registry.get("runs")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TenantStats({self.tenant!r}, runs={self.runs}, "
            f"failed={self.jobs_failed})"
        )
