"""Execution helpers: run compiled programs locally or on the simulated cluster.

The executor plays the role of the job launcher + MPI runtime of the paper's
testbed: for distributed targets it scatters the global fields into per-rank
local buffers (core slab plus halo), runs every rank of the SPMD program —
in its own thread against a :class:`~repro.interp.mpi_runtime.SimulatedMPI`
world (``runtime="threads"``), or in its own OS process with shared-memory
field buffers (``runtime="processes"``, see :mod:`repro.runtime`) — and
gathers the cores back into the global arrays.  Both runtimes produce
bit-identical fields and matching communication statistics; the process
runtime additionally delivers real multi-core speedup because ranks no longer
share one GIL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from ..interp import CommStatistics, ExecStatistics, Interpreter, SimulatedMPI
from ..interp.vectorize import CompiledKernel
from ..transforms.distribute import DecompositionStrategy, GridSlicingStrategy
from .. import runtime as _process_runtime
from .pipeline import CompiledProgram


class ExecutionError(Exception):
    """Raised when a compiled program cannot be executed."""


#: Valid values of the ``backend`` parameter of :func:`run_local` /
#: :func:`run_distributed`:
#:
#: * ``"auto"`` (default) — vectorize every loop nest that can be proven
#:   vectorizable (including the min-clamped *tiled* stencil_to_scf output,
#:   ``scf.reduce`` reductions and ``arith.select`` mask chains), tree-walk
#:   the rest (always safe, usually fastest);
#: * ``"vectorized"`` — like auto, but raise when *nothing* in the function
#:   could be vectorized (benchmarks use this to avoid silently measuring the
#:   tree walker);
#: * ``"interpreter"`` — force the per-cell tree walker everywhere (the
#:   reference semantics).
EXECUTION_BACKENDS = ("auto", "interpreter", "vectorized")

#: Valid values of the ``runtime`` parameter of :func:`run_distributed`:
#:
#: * ``"threads"`` (default) — every rank runs in a Python thread of this
#:   process against one shared :class:`~repro.interp.SimulatedMPI` world
#:   (cheap, always available, serialized by the GIL outside NumPy);
#: * ``"processes"`` — every rank runs in its own OS process from the
#:   persistent worker pool, with shared-memory field buffers and
#:   queue-backed messaging (real multi-core scaling).  Falls back to
#:   ``"threads"`` automatically when shared memory is unavailable.
EXECUTION_RUNTIMES = ("threads", "processes")


def _kernel_for_backend(
    program: CompiledProgram, function_name: str, backend: str
) -> Optional[CompiledKernel]:
    if backend not in EXECUTION_BACKENDS:
        raise ExecutionError(
            f"unknown execution backend {backend!r}; expected one of "
            f"{', '.join(EXECUTION_BACKENDS)}"
        )
    if backend == "interpreter":
        return None
    kernel = program.compiled_kernel(function_name)
    if backend == "vectorized" and kernel.nest_count == 0:
        reasons = kernel.fallback_reasons
        detail = "; ".join(reasons) if reasons else "the function has no loop nests"
        raise ExecutionError(
            f"backend='vectorized' requested but no loop nest of "
            f"{function_name!r} could be vectorized ({detail})"
        )
    return kernel


@dataclass
class ExecutionResult:
    """Outcome of one execution."""

    statistics: list[ExecStatistics]
    messages_sent: int = 0
    bytes_sent: int = 0
    #: Full world-wide communication counters (distributed runs only).
    comm_statistics: Optional[CommStatistics] = None
    #: The runtime that actually executed: "local", "threads" or "processes"
    #: (reflects the automatic fallback, not just the request).
    runtime: str = "local"
    #: Intra-rank thread-team size of the run (the OpenMP level of the
    #: paper's hybrid MPI+OpenMP configurations; 1 = flat runs).
    threads_per_rank: int = 1

    @property
    def total_cells_updated(self) -> int:
        return sum(stat.cells_updated for stat in self.statistics)

    @property
    def total_halo_swaps(self) -> int:
        return sum(stat.halo_swaps for stat in self.statistics)


def local_field_slices(
    global_array: np.ndarray,
    strategy: DecompositionStrategy,
    rank: int,
    halo_lower: Sequence[int],
    halo_upper: Sequence[int],
    margin: Sequence[int],
) -> tuple[slice, ...]:
    """The global-array region holding one rank's local buffer (core + halo).

    ``margin`` is the number of ghost/boundary cells the global array carries
    in front of compute index 0 along each dimension (at least the halo width,
    so slicing never leaves the array).
    """
    core_shape = tuple(
        int(extent) - 2 * int(m) for extent, m in zip(global_array.shape, margin)
    )
    start, end = strategy.global_slab(core_shape, rank)
    slices = []
    for dim in range(global_array.ndim):
        lower = start[dim] + margin[dim] - halo_lower[dim]
        upper = end[dim] + margin[dim] + halo_upper[dim]
        if lower < 0 or upper > global_array.shape[dim]:
            raise ExecutionError(
                f"halo of width {halo_lower[dim]}/{halo_upper[dim]} exceeds the "
                f"global array margin {margin[dim]} along dimension {dim}"
            )
        slices.append(slice(lower, upper))
    return tuple(slices)


def scatter_field(
    global_array: np.ndarray,
    strategy: DecompositionStrategy,
    rank: int,
    halo_lower: Sequence[int],
    halo_upper: Sequence[int],
    margin: Sequence[int],
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Extract one rank's local buffer (core slab + halo) from a global array.

    With ``out`` the slab is written straight into the given buffer — the
    process runtime passes a shared-memory view here, so the field reaches
    the workers with a single copy (the copy-elision path).
    """
    region = global_array[
        local_field_slices(global_array, strategy, rank, halo_lower, halo_upper, margin)
    ]
    if out is None:
        return np.array(region, copy=True)
    out[...] = region
    return out


def gather_field(
    global_array: np.ndarray,
    local_array: np.ndarray,
    strategy: DecompositionStrategy,
    rank: int,
    halo_lower: Sequence[int],
    halo_upper: Sequence[int],
    margin: Sequence[int],
) -> None:
    """Write one rank's core slab back into the global array."""
    core_shape = tuple(
        int(extent) - 2 * int(m) for extent, m in zip(global_array.shape, margin)
    )
    start, end = strategy.global_slab(core_shape, rank)
    global_slices = []
    local_slices = []
    for dim in range(global_array.ndim):
        global_slices.append(slice(start[dim] + margin[dim], end[dim] + margin[dim]))
        local_slices.append(
            slice(halo_lower[dim], halo_lower[dim] + (end[dim] - start[dim]))
        )
    global_array[tuple(global_slices)] = local_array[tuple(local_slices)]


def run_local(
    program: CompiledProgram,
    arguments: Sequence[Any],
    *,
    function: Optional[str] = None,
    backend: str = "auto",
) -> ExecutionResult:
    """Run a non-distributed compiled program in-process.

    ``backend`` selects the execution engine (see :data:`EXECUTION_BACKENDS`);
    compiled vectorized kernels are cached on ``program`` keyed by function
    name, so repeated calls skip recompilation.
    """
    function_name = function or _default_function(program)
    kernel = _kernel_for_backend(program, function_name, backend)
    interpreter = Interpreter(program.module, kernel=kernel)
    interpreter.call(function_name, *arguments)
    return ExecutionResult(statistics=[interpreter.stats])


def run_distributed(
    program: CompiledProgram,
    global_fields: Sequence[np.ndarray],
    scalar_arguments: Sequence[Any] = (),
    *,
    function: Optional[str] = None,
    margin: Optional[Sequence[int]] = None,
    timeout: float = 60.0,
    backend: str = "auto",
    runtime: str = "threads",
    threads_per_rank: int = 1,
) -> ExecutionResult:
    """Run a distributed compiled program on the simulated MPI world.

    ``global_fields`` are updated in place with the gathered results.  All
    field arguments must come before the scalar arguments in the kernel's
    signature (the convention every frontend in this project follows).
    ``backend`` selects the execution engine (see :data:`EXECUTION_BACKENDS`);
    the vectorized kernel is compiled once per process and shared by all
    ranks.  ``runtime`` selects thread-ranks or OS-process-ranks (see
    :data:`EXECUTION_RUNTIMES`); both produce bit-identical fields and
    matching communication statistics.  ``threads_per_rank`` adds the OpenMP
    level of the paper's hybrid configurations: each rank runs its vectorized
    nests on an intra-rank thread team of that size (bit-identical to
    ``threads_per_rank=1``; only wall-clock time changes).

    Under ``runtime="processes"`` the per-rank buffers live in pooled
    ``multiprocessing.shared_memory`` blocks: fields are scattered straight
    into (and gathered straight out of) the blocks, and the blocks are
    recycled across repeated runs — see ``CommStatistics.bytes_elided`` and
    ``.shared_blocks_reused`` on the result.
    """
    if program.distribution is None or program.target.rank_grid is None:
        raise ExecutionError("program was not compiled for a distributed target")
    if runtime not in EXECUTION_RUNTIMES:
        raise ExecutionError(
            f"unknown execution runtime {runtime!r}; expected one of "
            f"{', '.join(EXECUTION_RUNTIMES)}"
        )
    threads_per_rank = int(threads_per_rank)
    if threads_per_rank < 1:
        raise ExecutionError("threads_per_rank must be at least 1")
    function_name = function or _default_function(program)
    if runtime == "processes" and not _process_runtime.processes_available():
        runtime = "threads"  # automatic fallback: same semantics, one process
    # The thread runtime shares one parent-compiled kernel across all ranks;
    # process workers rebuild their own (the cache is process-local), so the
    # parent only compiles when the kernel is used here — or when the
    # backend="vectorized" nest-count validation requires it.
    kernel: Optional[CompiledKernel] = None
    if runtime == "threads" or backend == "vectorized":
        kernel = _kernel_for_backend(program, function_name, backend)
    elif backend not in EXECUTION_BACKENDS:
        raise ExecutionError(
            f"unknown execution backend {backend!r}; expected one of "
            f"{', '.join(EXECUTION_BACKENDS)}"
        )
    strategy = GridSlicingStrategy(program.target.rank_grid)
    domain = program.distribution.local_domain
    halo_lower, halo_upper = domain.halo_lower, domain.halo_upper
    if margin is None:
        margin = halo_lower

    if runtime == "processes":
        statistics, comm_statistics = _run_spmd_shared_memory(
            program, function_name, backend, global_fields, scalar_arguments,
            strategy, halo_lower, halo_upper, margin, timeout, threads_per_rank,
        )
    else:
        local_fields = [
            [
                scatter_field(field, strategy, rank, halo_lower, halo_upper, margin)
                for field in global_fields
            ]
            for rank in range(strategy.rank_count)
        ]
        statistics, comm_statistics = _run_spmd_threads(
            program, function_name, kernel, local_fields, scalar_arguments,
            timeout, threads_per_rank,
        )
        for rank in range(strategy.rank_count):
            for global_array, local_array in zip(global_fields, local_fields[rank]):
                gather_field(
                    global_array, local_array, strategy, rank,
                    halo_lower, halo_upper, margin,
                )

    return ExecutionResult(
        statistics=list(statistics),
        messages_sent=comm_statistics.messages_sent,
        bytes_sent=comm_statistics.bytes_sent,
        comm_statistics=comm_statistics,
        runtime=runtime,
        threads_per_rank=threads_per_rank,
    )


def _run_spmd_shared_memory(
    program: CompiledProgram,
    function_name: str,
    backend: str,
    global_fields: Sequence[np.ndarray],
    scalar_arguments: Sequence[Any],
    strategy: GridSlicingStrategy,
    halo_lower: Sequence[int],
    halo_upper: Sequence[int],
    margin: Sequence[int],
    timeout: float,
    threads_per_rank: int,
) -> tuple[list[ExecStatistics], CommStatistics]:
    """The process-runtime path with shared-memory copy elision.

    Per-rank buffers are leased from the shared block pool, scattered into
    directly, handed to the workers by name, and gathered from directly — no
    intermediate per-rank arrays, no per-run block churn.
    """
    pool = _process_runtime.shared_field_pool()
    leases: list[list] = []
    try:
        for rank in range(strategy.rank_count):
            rank_leases: list = []
            leases.append(rank_leases)
            for field in global_fields:
                rank_leases.append(
                    _scatter_into_lease(field, pool, strategy, rank,
                                        halo_lower, halo_upper, margin)
                )
        bytes_elided = sum(
            2 * lease.array.nbytes
            for rank_leases in leases for lease in rank_leases
        )
        blocks_reused = sum(
            1 for rank_leases in leases for lease in rank_leases if lease.reused
        )
        statistics, comm_statistics = _process_runtime.run_program_processes(
            program, function_name, backend, leases, scalar_arguments,
            timeout=timeout, threads_per_rank=threads_per_rank,
        )
        for rank in range(strategy.rank_count):
            for global_array, lease in zip(global_fields, leases[rank]):
                gather_field(
                    global_array, lease.array, strategy, rank,
                    halo_lower, halo_upper, margin,
                )
    finally:
        for rank_leases in leases:
            for lease in rank_leases:
                lease.release()
    comm_statistics.bytes_elided = bytes_elided
    comm_statistics.shared_blocks_reused = blocks_reused
    return statistics, comm_statistics


def _scatter_into_lease(
    field: np.ndarray,
    pool,
    strategy: GridSlicingStrategy,
    rank: int,
    halo_lower: Sequence[int],
    halo_upper: Sequence[int],
    margin: Sequence[int],
):
    """Lease a shared block for one rank's slab and scatter straight into it."""
    slices = local_field_slices(field, strategy, rank, halo_lower, halo_upper, margin)
    shape = tuple(s.stop - s.start for s in slices)
    lease = pool.lease(shape, field.dtype)
    scatter_field(field, strategy, rank, halo_lower, halo_upper, margin,
                  out=lease.array)
    return lease


def _run_spmd_threads(
    program: CompiledProgram,
    function_name: str,
    kernel: Optional[CompiledKernel],
    local_fields: Sequence[Sequence[np.ndarray]],
    scalar_arguments: Sequence[Any],
    timeout: float,
    threads_per_rank: int = 1,
) -> tuple[list[ExecStatistics], CommStatistics]:
    """Run every rank in a thread of this process (the GIL-shared world)."""
    size = len(local_fields)
    world = SimulatedMPI(size, timeout=timeout)
    statistics: list[Optional[ExecStatistics]] = [None] * size

    def body(comm):
        interpreter = Interpreter(
            program.module, comm=comm, kernel=kernel, threads=threads_per_rank
        )
        interpreter.call(
            function_name, *local_fields[comm.rank], *scalar_arguments
        )
        statistics[comm.rank] = interpreter.stats
        return None

    # run_spmd fails fast with the originating rank's exception, so a crashed
    # rank can never leave us gathering half-written fields afterwards.
    world.run_spmd(body, timeout=timeout)
    missing = [rank for rank, stats in enumerate(statistics) if stats is None]
    if missing:
        raise ExecutionError(
            f"ranks {missing} finished without reporting statistics; "
            "the SPMD execution did not complete"
        )
    return list(statistics), world.statistics


def _default_function(program: CompiledProgram) -> str:
    names = sorted(program.function_names)
    if not names:
        raise ExecutionError("compiled module contains no function definitions")
    if "kernel" in names:
        return "kernel"
    if len(names) == 1:
        return names[0]
    raise ExecutionError(
        "compiled module defines several functions "
        f"({', '.join(repr(n) for n in names)}) and none is named 'kernel'; "
        "pass function=... to select one"
    )
