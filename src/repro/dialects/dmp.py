"""The dmp dialect: declarative distributed-memory halo exchanges (paper §4.2).

The central operation is ``dmp.swap`` which takes a memref (or stencil field)
and declares, through attributes, which rectangular subsections must be
exchanged with which neighbouring ranks of a Cartesian grid::

    dmp.swap(%data) {
      "grid" = #dmp.grid<2x2>,
      "swaps" = [
        #dmp.exchange<at [4, 0] size [100, 4] source offset [0, 4] to [0, -1]>,
        ...
      ]
    } : (memref<108x108xf32>) -> ()

Nothing in the dialect is MPI specific; the lowering in
:mod:`repro.transforms.distribute.dmp_to_mpi` targets the mpi dialect, but
other communication substrates could be targeted instead.
"""

from __future__ import annotations

import re
from typing import Optional, Sequence

from ..ir.attributes import ArrayAttr, Attribute
from ..ir.context import Dialect
from ..ir.core import Operation, SSAValue
from ..ir.traits import CommunicationEffect, MemoryReadEffect, MemoryWriteEffect


class GridAttr(Attribute):
    """The Cartesian topology of the ranks participating in a swap (e.g. 2x2)."""

    name = "dmp.grid"

    __slots__ = ("shape",)

    def __init__(self, shape: Sequence[int]):
        self.shape: tuple[int, ...] = tuple(int(s) for s in shape)
        if not self.shape:
            raise ValueError("dmp.grid must have at least one dimension")
        if any(s < 1 for s in self.shape):
            raise ValueError("dmp.grid dimensions must be positive")

    def parameters(self) -> tuple:
        return (self.shape,)

    @property
    def rank_count(self) -> int:
        total = 1
        for extent in self.shape:
            total *= extent
        return total

    @property
    def ndims(self) -> int:
        return len(self.shape)

    def coords_of(self, rank: int) -> tuple[int, ...]:
        """Row-major Cartesian coordinates of an MPI rank in this grid."""
        if not 0 <= rank < self.rank_count:
            raise ValueError(f"rank {rank} outside grid of {self.rank_count} ranks")
        coords = []
        remainder = rank
        for extent in reversed(self.shape):
            coords.append(remainder % extent)
            remainder //= extent
        return tuple(reversed(coords))

    def rank_of(self, coords: Sequence[int]) -> Optional[int]:
        """The MPI rank at the given coordinates, or None if outside the grid."""
        if len(coords) != len(self.shape):
            raise ValueError("coordinate rank does not match the grid rank")
        rank = 0
        for coord, extent in zip(coords, self.shape):
            if not 0 <= coord < extent:
                return None
            rank = rank * extent + coord
        return rank

    def neighbor_of(self, rank: int, offset: Sequence[int]) -> Optional[int]:
        """The rank at a relative offset from ``rank``, or None at the boundary."""
        coords = self.coords_of(rank)
        shifted = [c + o for c, o in zip(coords, offset)]
        return self.rank_of(shifted)

    def print_parameters(self, printer) -> str:
        return "x".join(str(s) for s in self.shape)

    @classmethod
    def parse_parameters(cls, text: str) -> "GridAttr":
        return cls([int(part) for part in text.strip().split("x") if part])

    def __str__(self) -> str:
        return f"#dmp.grid<{self.print_parameters(None)}>"


class ExchangeAttr(Attribute):
    """One halo exchange: a receive region, a send region and a neighbour offset.

    ``at``/``size`` describe the rectangular region of the local buffer to be
    *received into*; the region to be *sent* is the same shape offset by
    ``source_offset``; ``neighbor`` is the relative position of the rank the
    data is exchanged with.
    """

    name = "dmp.exchange"

    __slots__ = ("offset", "size", "source_offset", "neighbor")

    def __init__(
        self,
        offset: Sequence[int],
        size: Sequence[int],
        source_offset: Sequence[int],
        neighbor: Sequence[int],
    ):
        self.offset = tuple(int(v) for v in offset)
        self.size = tuple(int(v) for v in size)
        self.source_offset = tuple(int(v) for v in source_offset)
        # The neighbour offset lives in *grid* coordinates and may have fewer
        # dimensions than the data regions (e.g. a 1D rank grid over 2D data).
        self.neighbor = tuple(int(v) for v in neighbor)
        ranks = {len(self.offset), len(self.size), len(self.source_offset)}
        if len(ranks) != 1:
            raise ValueError(
                "dmp.exchange region components must all have the same rank"
            )
        if any(s < 0 for s in self.size):
            raise ValueError("dmp.exchange sizes must be non-negative")

    def parameters(self) -> tuple:
        return (self.offset, self.size, self.source_offset, self.neighbor)

    @property
    def rank(self) -> int:
        return len(self.offset)

    def element_count(self) -> int:
        total = 1
        for extent in self.size:
            total *= extent
        return total

    @property
    def recv_region(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """(offsets, sizes) of the region received into."""
        return self.offset, self.size

    @property
    def send_region(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """(offsets, sizes) of the region sent to the neighbour."""
        send_offset = tuple(o + s for o, s in zip(self.offset, self.source_offset))
        return send_offset, self.size

    def is_empty(self) -> bool:
        return any(s == 0 for s in self.size)

    def print_parameters(self, printer) -> str:
        def vec(values: Sequence[int]) -> str:
            return "[" + ", ".join(str(v) for v in values) + "]"

        return (
            f"at {vec(self.offset)} size {vec(self.size)} "
            f"source offset {vec(self.source_offset)} to {vec(self.neighbor)}"
        )

    @classmethod
    def parse_parameters(cls, text: str) -> "ExchangeAttr":
        vectors = re.findall(r"\[([^\]]*)\]", text)
        if len(vectors) != 4:
            raise ValueError(f"malformed dmp.exchange parameters: {text!r}")
        parsed = [
            [int(v.strip()) for v in vector.split(",") if v.strip()]
            for vector in vectors
        ]
        return cls(*parsed)

    def __str__(self) -> str:
        return f"#dmp.exchange<{self.print_parameters(None)}>"


class SwapOp(Operation):
    """Exchange the declared halo regions of ``data`` with neighbouring ranks."""

    name = "dmp.swap"
    traits = frozenset(
        [CommunicationEffect(), MemoryReadEffect(), MemoryWriteEffect()]
    )

    def __init__(
        self,
        data: SSAValue,
        grid: GridAttr,
        swaps: Sequence[ExchangeAttr],
    ):
        super().__init__(
            operands=[data],
            attributes={"grid": grid, "swaps": ArrayAttr(swaps)},
        )

    @property
    def data(self) -> SSAValue:
        return self.operands[0]

    @property
    def grid(self) -> GridAttr:
        attr = self.attributes["grid"]
        assert isinstance(attr, GridAttr)
        return attr

    @property
    def swaps(self) -> list[ExchangeAttr]:
        attr = self.attributes["swaps"]
        assert isinstance(attr, ArrayAttr)
        return [swap for swap in attr if isinstance(swap, ExchangeAttr)]

    def total_exchanged_elements(self) -> int:
        return sum(swap.element_count() for swap in self.swaps)

    def verify_(self) -> None:
        grid = self.attributes.get("grid")
        if not isinstance(grid, GridAttr):
            raise ValueError("dmp.swap requires a #dmp.grid attribute")
        swaps = self.attributes.get("swaps")
        if not isinstance(swaps, ArrayAttr):
            raise ValueError("dmp.swap requires a 'swaps' array attribute")
        for swap in swaps:
            if not isinstance(swap, ExchangeAttr):
                raise ValueError("dmp.swap swaps must be #dmp.exchange attributes")
            if len(swap.neighbor) != grid.ndims:
                raise ValueError(
                    "dmp.exchange neighbour offsets must match the grid dimensionality"
                )


DMP = Dialect("dmp", [SwapOp], [GridAttr, ExchangeAttr])
