"""Tests for the OS-process SPMD runtime (repro.runtime).

The contract under test: ``runtime="processes"`` is observationally identical
to ``runtime="threads"`` — bit-identical fields, matching per-rank execution
statistics and matching world-wide communication statistics — while actually
running every rank in its own process against shared-memory buffers.
"""

import pickle

import numpy as np
import pytest

from repro.core import (
    ExecutionError,
    RuntimeFallbackWarning,
    compile_stencil_program,
    default_session,
    dmp_target,
)
from repro.interp import SimulatedMPI
from repro.runtime import (
    get_worker_pool,
    merge_comm_statistics,
    processes_available,
    run_spmd_processes,
    shutdown_worker_pool,
)
from repro.workloads import heat_diffusion

needs_processes = pytest.mark.skipif(
    not processes_available(), reason="process runtime unavailable on this platform"
)


@pytest.fixture(scope="module", autouse=True)
def _pool_teardown():
    yield
    shutdown_worker_pool()


def _compile_heat(rank_grid, *, lower_to_library_calls=False, shape=(16, 16)):
    workload = heat_diffusion(shape, space_order=2, dtype=np.float64)
    module = workload.operator(backend="xdsl").stencil_module(dt=workload.dt)
    target = dmp_target(rank_grid, lower_to_library_calls=lower_to_library_calls)
    return compile_stencil_program(module, target)


def _heat_fields(shape=(18, 18)):
    u0 = np.zeros(shape)
    u0[shape[0] // 2 - 1: shape[0] // 2 + 1, shape[1] // 2 - 1: shape[1] // 2 + 1] = 1.0
    return u0, u0.copy()


def _run(program, fields, scalars, **config):
    """Execute through the Session API (the default session shares the
    process-wide worker pool, like the deprecated shims used to)."""
    return default_session().run(program, fields, scalars, **config)


# ---------------------------------------------------------------------------
# collectives parity (satellite: same results and CommStatistics counts)
# ---------------------------------------------------------------------------

def _collective_body(comm, base):
    """Exercises every collective of the paper's subset plus barriers."""
    data = np.full(4, float(comm.rank) + base, dtype=np.float64)
    total = comm.allreduce(data, "sum")
    comm.barrier()
    biggest = comm.reduce(data, "max", root=0)
    seed = np.zeros(3, dtype=np.float64)
    if comm.rank == 0:
        seed[:] = (1.0, 2.0, 3.0)
    shared = comm.bcast(seed, root=0)
    gathered = comm.gather(data, root=0)
    comm.barrier()
    return (
        total,
        None if biggest is None else np.array(biggest),
        np.array(shared),
        None if gathered is None else np.array(gathered),
    )


@needs_processes
@pytest.mark.parametrize("size", [2, 4])
def test_collectives_parity_threads_vs_processes(size):
    world = SimulatedMPI(size)
    thread_results = world.run_spmd(lambda comm: _collective_body(comm, 1.5))
    process_results, process_stats = run_spmd_processes(
        _collective_body, size, (1.5,), timeout=60.0
    )

    for rank, (threaded, processed) in enumerate(zip(thread_results, process_results)):
        for part_threads, part_processes in zip(threaded, processed):
            if part_threads is None:
                assert part_processes is None, f"rank {rank} root-only mismatch"
            else:
                assert np.array_equal(part_threads, part_processes), f"rank {rank}"

    assert process_stats == world.statistics
    # Sanity on absolute counts: 2 barriers + (allreduce=2, reduce, bcast,
    # gather = 5 collectives) per rank.
    assert process_stats.barriers == 2 * size
    assert process_stats.collectives == 5 * size
    assert process_stats.messages_sent == world.statistics.messages_sent > 0


def _ring_body(comm):
    """Non-blocking ring exchange (must be module-level: workers unpickle it)."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    payload = np.arange(5, dtype=np.float64) + comm.rank
    request = comm.isend(payload, right, tag=7)
    buffer = np.empty(5, dtype=np.float64)
    pending = comm.irecv(buffer, left, tag=7)
    comm.wait(pending)
    comm.waitall([request])
    assert comm.test(pending)
    return buffer


@needs_processes
def test_point_to_point_and_requests_parity():
    size = 3
    world = SimulatedMPI(size)
    threaded = world.run_spmd(_ring_body)
    processed, stats = run_spmd_processes(_ring_body, size, timeout=60.0)
    for a, b in zip(threaded, processed):
        assert np.array_equal(a, b)
    assert stats == world.statistics


# ---------------------------------------------------------------------------
# end-to-end parity on the fig. 7/8 heat kernels
# ---------------------------------------------------------------------------

@needs_processes
@pytest.mark.parametrize("lower", [False, True], ids=["dmp-swap", "mpi-calls"])
@pytest.mark.parametrize("rank_grid", [(2, 2), (4, 1)], ids=["2x2", "4x1"])
def test_heat_kernel_runtime_parity(rank_grid, lower):
    program = _compile_heat(rank_grid, lower_to_library_calls=lower)
    a0, a1 = _heat_fields()
    threads_result = _run(program, [a0, a1], [3], runtime="threads")
    b0, b1 = _heat_fields()
    processes_result = _run(program, [b0, b1], [3], runtime="processes")

    assert processes_result.runtime == "processes"
    assert np.array_equal(a0, b0) and np.array_equal(a1, b1)
    assert processes_result.statistics == threads_result.statistics
    assert processes_result.comm_statistics == threads_result.comm_statistics
    assert processes_result.messages_sent == threads_result.messages_sent > 0
    assert processes_result.bytes_sent == threads_result.bytes_sent > 0


@needs_processes
def test_backend_parity_across_runtimes():
    program = _compile_heat((2, 2))
    reference = None
    for backend in ("interpreter", "auto"):
        for runtime in ("threads", "processes"):
            u0, u1 = _heat_fields()
            _run(program, [u0, u1], [2], backend=backend, runtime=runtime)
            if reference is None:
                reference = (u0, u1)
            else:
                assert np.array_equal(reference[0], u0)
                assert np.array_equal(reference[1], u1)


# ---------------------------------------------------------------------------
# worker pool behaviour
# ---------------------------------------------------------------------------

@needs_processes
def test_pool_persists_and_ships_programs_once():
    program = _compile_heat((2, 2))
    u0, u1 = _heat_fields()
    _run(program, [u0, u1], [2], runtime="processes")
    pool = get_worker_pool(4)
    shipped = pool.programs_shipped
    u0, u1 = _heat_fields()
    _run(program, [u0, u1], [2], runtime="processes")
    assert get_worker_pool(4) is pool, "pool must persist across runs"
    assert pool.programs_shipped == shipped, "program must be shipped only once"


@needs_processes
def test_worker_error_propagates_and_pool_recovers():
    program = _compile_heat((2, 2))
    u0, u1 = _heat_fields()
    with pytest.raises(Exception) as excinfo:
        # Wrong scalar arity: every rank's interpreter raises remotely.
        _run(program, [u0, u1], [2, 99], runtime="processes")
    assert "rank" in str(excinfo.value)
    # The pool was poisoned and replaced: the next run works.
    u0, u1 = _heat_fields()
    result = _run(program, [u0, u1], [2], runtime="processes")
    assert result.runtime == "processes"


@needs_processes
def test_concurrent_runs_serialize_on_the_pool():
    """Two caller threads may use the shared pool at once; runs serialize."""
    import threading

    program = _compile_heat((2, 2))
    outcomes = {}

    def run(label):
        u0, u1 = _heat_fields()
        result = _run(program, [u0, u1], [2], runtime="processes")
        outcomes[label] = (u0, u1, result.comm_statistics)

    callers = [threading.Thread(target=run, args=(i,)) for i in range(2)]
    for caller in callers:
        caller.start()
    for caller in callers:
        caller.join(timeout=120)
    assert set(outcomes) == {0, 1}, "both concurrent runs must complete"
    assert np.array_equal(outcomes[0][0], outcomes[1][0])
    assert np.array_equal(outcomes[0][1], outcomes[1][1])
    assert outcomes[0][2] == outcomes[1][2]


def _suicide_body(comm):
    """Module-level (workers unpickle it): rank 1 dies mid-run via SIGKILL."""
    import os as os_module
    import signal as signal_module

    if comm.rank == 1:
        os_module.kill(os_module.getpid(), signal_module.SIGKILL)
    comm.barrier()  # the surviving rank blocks here until the parent reacts
    return comm.rank


@needs_processes
def test_worker_killed_between_runs_is_reaped():
    """A worker killed while idle is reaped; the next run recovers silently."""
    import os
    import signal

    from repro.runtime import WorkerPool

    shutdown_worker_pool()
    pool = get_worker_pool(2)
    victim = pool._processes[1]
    os.kill(victim.pid, signal.SIGKILL)
    victim.join(5)
    assert not victim.is_alive()
    # The dead worker is detected at run entry, the pool is replaced, and the
    # run completes on the fresh pool — no error, no hang.
    values, _ = run_spmd_processes(_ring_body, 2, timeout=60.0)
    assert [v.shape for v in values] == [(5,), (5,)]
    replacement = get_worker_pool(2)
    assert isinstance(replacement, WorkerPool) and replacement is not pool
    assert replacement.alive and not pool.alive


@needs_processes
def test_worker_killed_mid_run_fails_fast_and_recovers():
    """A rank dying mid-run raises promptly (no deadlock) and the pool heals."""
    import pytest as pytest_module

    shutdown_worker_pool()
    with pytest_module.raises(Exception, match="died|failed"):
        run_spmd_processes(_suicide_body, 2, timeout=60.0)
    # Clean recovery: the poisoned pool was shut down and replaced.
    values, _ = run_spmd_processes(_ring_body, 2, timeout=60.0)
    assert len(values) == 2


@needs_processes
def test_shutdown_reaps_dead_workers():
    """shutdown() finishes even when workers already died."""
    import os
    import signal

    shutdown_worker_pool()
    pool = get_worker_pool(2)
    for process in pool._processes:
        os.kill(process.pid, signal.SIGKILL)
    for process in pool._processes:
        process.join(5)
    assert pool.reap_dead_workers() == [0, 1]
    pool.shutdown()  # must not hang or raise
    assert not pool.alive


def _slow_rank_body(comm):
    """Module-level (workers unpickle it): holds the pool busy briefly."""
    import time as time_module

    time_module.sleep(0.3)
    comm.barrier()
    return comm.rank


@needs_processes
def test_pool_growth_waits_for_inflight_run():
    """Growing the pool for more ranks must not kill a run in flight."""
    import threading

    shutdown_worker_pool()
    get_worker_pool(2)
    errors = []

    def small_run():
        try:
            values, _ = run_spmd_processes(_slow_rank_body, 2, timeout=60.0)
            assert values == [0, 1]
        except Exception as err:  # noqa: BLE001 - assert in the main thread
            errors.append(err)

    caller = threading.Thread(target=small_run)
    caller.start()
    values, _ = run_spmd_processes(_slow_rank_body, 4, timeout=60.0)  # forces growth
    caller.join(timeout=120)
    assert not caller.is_alive()
    assert not errors, f"in-flight run was disturbed by pool growth: {errors}"
    assert values == [0, 1, 2, 3]


def test_automatic_fallback_to_threads(monkeypatch):
    import repro.runtime as runtime_module

    monkeypatch.setattr(runtime_module, "processes_available", lambda: False)
    program = _compile_heat((2, 2))
    u0, u1 = _heat_fields()
    with pytest.warns(RuntimeFallbackWarning, match="falling back"):
        result = _run(program, [u0, u1], [2], runtime="processes")
    assert result.runtime == "threads"
    assert result.runtime_requested == "processes"
    assert result.degraded
    assert result.messages_sent > 0


def test_unknown_runtime_rejected():
    program = _compile_heat((2, 2))
    u0, u1 = _heat_fields()
    with pytest.raises(ExecutionError, match="unknown execution runtime"):
        _run(program, [u0, u1], [2], runtime="mpi")


# ---------------------------------------------------------------------------
# serialization invariants
# ---------------------------------------------------------------------------

def test_compiled_program_pickle_drops_kernel_cache():
    program = _compile_heat((2, 2))
    kernel = program.compiled_kernel("kernel")
    assert program._kernel_cache, "cache should be warm"
    clone = pickle.loads(pickle.dumps(program))
    assert clone._kernel_cache == {}
    recompiled = clone.compiled_kernel("kernel")
    assert recompiled.nest_count == kernel.nest_count


def test_merge_comm_statistics_orders_deterministically():
    from repro.interp import CommStatistics

    parts = [
        CommStatistics(messages_sent=1, bytes_sent=10, collectives=2, barriers=1),
        CommStatistics(messages_sent=3, bytes_sent=30, collectives=0, barriers=1),
    ]
    merged = merge_comm_statistics(parts)
    assert merged == CommStatistics(
        messages_sent=4, bytes_sent=40, collectives=2, barriers=2
    )
