"""Vectorized NumPy execution backend for lowered loop nests.

The tree-walking interpreter dispatches every lowered operation once *per grid
cell*, which makes the cost of a stencil sweep proportional to ``cells x ops``
python bytecode dispatches.  This module removes the per-cell dispatch: it
pattern-matches the loop nests produced by ``convert-stencil-to-scf`` (and the
OpenMP conversion) and compiles each nest *once* into whole-array NumPy slice
expressions — the moral equivalent of the C code Devito generates.

The compiler is deliberately conservative.  A nest is vectorizable when

* it is an ``scf.parallel`` / ``omp.wsloop`` nest, or an ``scf.for`` (without
  loop-carried values), possibly perfectly nested;
* every index expression is affine in the induction variables with unit
  coefficients (``iv + c`` per memref axis, or a nest-invariant constant);
* the body consists only of ``memref.load`` / ``memref.store`` and pure
  element-wise ``arith`` ops (no calls, no MPI, no nested control flow).

Anything else — data-dependent control flow, ``scf.while``, MPI operations,
tiled nests with ``min``-clamped inner bounds — is left to the tree walker,
*per nest*, so one non-vectorizable region never forfeits the speedup of its
neighbours.

Equivalence with the tree walker is bit-exact: scalar loads are widened to
float64 exactly as ``ndarray.item()`` does, the element-wise expressions apply
the same operation tree in the same order, and stores down-cast on assignment.
Nests whose execution the slicing model cannot reproduce exactly (aliased
read/write buffers with shifted offsets, out-of-range indices that python's
negative indexing would wrap, non-positive steps) are detected at *run* time
and bounce back to the interpreter for that invocation.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional, Union

import numpy as np

from ..dialects import arith, func, memref, omp, scf
from ..ir.attributes import FloatAttr, IntegerAttr
from ..ir.core import BlockArgument, Operation, SSAValue
from ..ir.types import IndexType, IntegerType


class VectorizationError(Exception):
    """Internal: raised while analysing a nest that cannot be vectorized."""


# ---------------------------------------------------------------------------
# affine index expressions
# ---------------------------------------------------------------------------

class _Affine:
    """``sum(coeffs[d] * iv_d) + sum(free[v] * env[v]) + const``.

    ``free`` terms are SSA values defined outside the nest; they are resolved
    against the interpreter environment when the nest executes.
    """

    __slots__ = ("coeffs", "const", "free")

    def __init__(
        self,
        coeffs: Optional[dict[int, int]] = None,
        const: int = 0,
        free: Optional[dict[SSAValue, int]] = None,
    ):
        self.coeffs: dict[int, int] = dict(coeffs or {})
        self.const = int(const)
        self.free: dict[SSAValue, int] = dict(free or {})

    @property
    def is_invariant(self) -> bool:
        """True when the expression does not involve any induction variable."""
        return not self.coeffs

    @property
    def is_literal(self) -> bool:
        return not self.coeffs and not self.free

    def combine(self, other: "_Affine", sign: int) -> "_Affine":
        result = _Affine(self.coeffs, self.const + sign * other.const, self.free)
        for dim, coeff in other.coeffs.items():
            updated = result.coeffs.get(dim, 0) + sign * coeff
            if updated:
                result.coeffs[dim] = updated
            else:
                result.coeffs.pop(dim, None)
        for value, coeff in other.free.items():
            updated = result.free.get(value, 0) + sign * coeff
            if updated:
                result.free[value] = updated
            else:
                result.free.pop(value, None)
        return result

    def scale(self, factor: int) -> "_Affine":
        if factor == 0:
            return _Affine()
        return _Affine(
            {d: c * factor for d, c in self.coeffs.items()},
            self.const * factor,
            {v: c * factor for v, c in self.free.items()},
        )

    def invariant_value(self, env: dict) -> int:
        """Evaluate a nest-invariant expression against the environment."""
        total = self.const
        for value, coeff in self.free.items():
            total += coeff * int(env[value])
        return total


# ---------------------------------------------------------------------------
# element-wise operation tables (must mirror the scalar interpreter exactly)
# ---------------------------------------------------------------------------

_BINARY_FNS: dict[str, Callable[[Any, Any], Any]] = {
    "arith.addf": lambda a, b: a + b,
    "arith.subf": lambda a, b: a - b,
    "arith.mulf": lambda a, b: a * b,
    "arith.divf": lambda a, b: a / b,
    "arith.powf": lambda a, b: a ** b,
    "arith.maximumf": np.maximum,
    "arith.minimumf": np.minimum,
    "arith.addi": lambda a, b: a + b,
    "arith.subi": lambda a, b: a - b,
    "arith.muli": lambda a, b: a * b,
    "arith.minsi": np.minimum,
    "arith.maxsi": np.maximum,
}

_UNARY_FNS: dict[str, Callable[[Any], Any]] = {
    "arith.negf": lambda a: -a,
    "arith.sitofp": lambda a: np.asarray(a, dtype=np.float64)
    if isinstance(a, np.ndarray) else float(a),
    "arith.extf": lambda a: np.asarray(a, dtype=np.float64)
    if isinstance(a, np.ndarray) else float(a),
    "arith.truncf": lambda a: np.asarray(
        np.asarray(a, dtype=np.float32), dtype=np.float64
    ) if isinstance(a, np.ndarray) else float(np.float32(a)),
    "arith.fptosi": lambda a: np.asarray(a).astype(np.int64)
    if isinstance(a, np.ndarray) else int(a),
    "arith.extsi": lambda a: a,
    "arith.trunci": lambda a: a,
}

_CMPF_FNS = {
    "oeq": np.equal, "ogt": np.greater, "oge": np.greater_equal,
    "olt": np.less, "ole": np.less_equal, "one": np.not_equal,
}

_CMPI_FNS = {
    "eq": np.equal, "ne": np.not_equal, "slt": np.less, "sle": np.less_equal,
    "sgt": np.greater, "sge": np.greater_equal,
}


# Compile-time operand references, resolved per execution:
#   ("arr", value)   — tensor computed by an earlier instruction of the nest
#   ("const", x)     — compile-time literal
#   ("aff", affine)  — affine index expression (materialised as an int grid)
#   ("free", value)  — scalar defined outside the nest, read from the env
_Ref = tuple


class CompiledNest:
    """One vectorizable loop nest, compiled to NumPy slice expressions."""

    __slots__ = ("bounds", "instrs", "count_dims", "rank")

    def __init__(
        self,
        bounds: list[tuple[_Affine, _Affine, _Affine]],
        instrs: list[tuple],
        count_dims: int,
    ):
        self.bounds = bounds
        self.instrs = instrs
        #: Number of *leading* dims that belong to the scf.parallel/omp.wsloop
        #: root: the tree walker counts one cells_updated per point of those
        #: dims only (perfectly nested inner scf.for dims do not count, and a
        #: plain scf.for root counts nothing).
        self.count_dims = count_dims
        self.rank = len(bounds)

    # -- runtime ------------------------------------------------------------
    def execute(self, interp, env: dict) -> bool:
        """Run the nest against ``env``; return False to request a fallback.

        A ``False`` return leaves every buffer untouched, so the caller can
        safely re-run the nest through the tree walker.
        """
        try:
            # Any surprise during preparation (unresolvable free value,
            # unexpected runtime type) means the static analysis was too
            # optimistic; no buffer has been touched yet, so falling back to
            # the tree walker is always safe.
            plan = self._prepare(interp, env)
        except Exception:
            return False
        if plan is None:
            return False
        pending, cells = plan
        # The commit cannot raise: every prepared array was validated to have
        # exactly the target region's shape and dtype.
        for array, slices, prepared in pending:
            array[slices] = prepared
        interp.stats.cells_updated += cells
        return True

    def _prepare(self, interp, env: dict):
        dims: list[tuple[int, int, int]] = []
        for lower, upper, step in self.bounds:
            dims.append(
                (
                    lower.invariant_value(env),
                    upper.invariant_value(env),
                    step.invariant_value(env),
                )
            )
        if any(step <= 0 for _, _, step in dims):
            return None  # the interpreter defines the (error) semantics here
        trips = tuple(len(range(lower, upper, step)) for lower, upper, step in dims)
        if math.prod(trips) == 0:
            return [], 0
        nest_shape = trips
        cells = math.prod(trips[: self.count_dims]) if self.count_dims else 0

        # Resolve every load/store region up front so aliasing and bounds can
        # be validated before anything is evaluated or written.
        loads: list[tuple[int, int, tuple]] = []  # (instr index, array id, slices)
        stores: list[tuple[int, int, tuple]] = []
        regions: dict[int, tuple] = {}  # instr index -> resolved region
        for position, instr in enumerate(self.instrs):
            kind = instr[0]
            if kind not in ("load", "store"):
                continue
            array = interp.as_array(env[instr[2]])
            axes = instr[3]
            resolved = self._resolve_region(array, axes, dims, env, kind == "store")
            if resolved is None:
                return None
            slices, view_shape, region_shape = resolved
            regions[position] = (array, slices, view_shape, region_shape)
            record = (position, id(array), slices)
            (loads if kind == "load" else stores).append(record)

        if not self._aliasing_is_safe(loads, stores, regions):
            return None

        # Evaluate the element-wise program.
        values: dict[SSAValue, Any] = {}

        def resolve(ref: _Ref) -> Any:
            tag = ref[0]
            if tag == "arr":
                return values[ref[1]]
            if tag == "const":
                return ref[1]
            if tag == "free":
                return env[ref[1]]
            return self._materialize(ref[1], dims, env)

        # With several stores in one nest, an earlier commit may mutate memory
        # that a later store's value still *views* (loads and broadcasts avoid
        # copies); materialise every value in that case so the committed data
        # is what was computed, not what the buffer holds mid-commit.
        force_copy = len(stores) > 1
        pending: list[tuple[np.ndarray, tuple, np.ndarray]] = []
        for position, instr in enumerate(self.instrs):
            kind = instr[0]
            if kind == "load":
                array, slices, view_shape, _ = regions[position]
                view = array[slices].reshape(view_shape)
                values[instr[1]] = _widen(view)
            elif kind == "store":
                array, slices, _, region_shape = regions[position]
                value = resolve(instr[1])
                prepared = np.broadcast_to(
                    np.asarray(value), nest_shape
                ).reshape(region_shape).astype(array.dtype, copy=force_copy)
                if prepared.shape != array[slices].shape:
                    return None
                pending.append((array, slices, prepared))
            elif kind == "binary":
                values[instr[1]] = instr[2](resolve(instr[3]), resolve(instr[4]))
            elif kind == "unary":
                values[instr[1]] = instr[2](resolve(instr[3]))
            else:  # select
                values[instr[1]] = np.where(
                    resolve(instr[2]), resolve(instr[3]), resolve(instr[4])
                )

        return pending, cells

    def _resolve_region(
        self,
        array: np.ndarray,
        axes: list[_Affine],
        dims: list[tuple[int, int, int]],
        env: dict,
        is_store: bool,
    ) -> Optional[tuple[tuple, tuple, tuple]]:
        """Turn per-axis affine indices into slices + broadcastable shapes.

        Returns ``(slices, view_shape, region_shape)``: ``view_shape`` has the
        nest's rank with the trip count at every mapped dimension and 1
        elsewhere (for broadcasting loads into the iteration space), while
        ``region_shape`` has the *memref's* rank and matches ``array[slices]``
        exactly (for shaping store values).  None when the region cannot be
        reproduced exactly by slicing.
        """
        if len(axes) != array.ndim:
            return None
        trips = tuple(len(range(*dim)) for dim in dims)
        slices = []
        view_shape = [1] * len(dims)
        region_shape = [1] * array.ndim
        used_dims: list[int] = []
        for axis, affine in enumerate(axes):
            offset = affine.invariant_value(env)
            if not affine.coeffs:
                if not 0 <= offset < array.shape[axis]:
                    return None
                slices.append(slice(offset, offset + 1))
                continue
            mapping = list(affine.coeffs.items())
            if len(mapping) != 1 or mapping[0][1] != 1:
                return None
            dim = mapping[0][0]
            if used_dims and dim <= used_dims[-1]:
                return None  # transposed or duplicated induction variables
            used_dims.append(dim)
            lower, upper, step = dims[dim]
            start = lower + offset
            last = start + (trips[dim] - 1) * step
            if trips[dim] and (start < 0 or last >= array.shape[axis]):
                # Out-of-range accesses would wrap (negative) or raise in the
                # tree walker; preserve those semantics by falling back.
                return None
            slices.append(slice(start, upper + offset, step))
            view_shape[dim] = trips[dim]
            region_shape[axis] = trips[dim]
        if is_store and len(used_dims) != len(dims):
            return None  # some iterations would collapse onto the same cells
        return tuple(slices), tuple(view_shape), tuple(region_shape)

    @staticmethod
    def _aliasing_is_safe(loads, stores, regions) -> bool:
        """Check that all-loads-then-all-stores matches per-cell execution."""
        for store_position, store_array_id, store_slices in stores:
            store_view = None
            for load_position, load_array_id, load_slices in loads:
                same_region = (
                    load_array_id == store_array_id and load_slices == store_slices
                )
                if same_region and load_position < store_position:
                    continue  # reads its own cell before writing it: safe
                if store_view is None:
                    array, slices = regions[store_position][:2]
                    store_view = array[slices]
                load_array, slices = regions[load_position][:2]
                if np.shares_memory(load_array[slices], store_view):
                    return False
            for other_position, other_array_id, other_slices in stores:
                if other_position >= store_position:
                    continue
                if other_array_id == store_array_id and other_slices == store_slices:
                    continue  # re-written identically: program order preserved
                if store_view is None:
                    array, slices = regions[store_position][:2]
                    store_view = array[slices]
                other_array, slices = regions[other_position][:2]
                if np.shares_memory(other_array[slices], store_view):
                    return False
        return True

    @staticmethod
    def _materialize(
        affine: _Affine, dims: list[tuple[int, int, int]], env: dict
    ) -> Any:
        """Evaluate an affine expression over the whole iteration space."""
        total: Any = affine.const + sum(
            coeff * int(env[value]) for value, coeff in affine.free.items()
        )
        rank = len(dims)
        for dim, coeff in affine.coeffs.items():
            lower, upper, step = dims[dim]
            shape = [1] * rank
            shape[dim] = len(range(lower, upper, step))
            axis = np.arange(lower, upper, step, dtype=np.int64).reshape(shape)
            total = total + coeff * axis
        return total


def _widen(view: np.ndarray) -> np.ndarray:
    """Widen loaded elements exactly as ``ndarray.item()`` does per cell."""
    kind = view.dtype.kind
    if kind == "f":
        return view.astype(np.float64, copy=False)
    if kind == "b":
        return view
    return view.astype(np.int64, copy=False)


# ---------------------------------------------------------------------------
# the nest compiler
# ---------------------------------------------------------------------------

_NEST_TERMINATORS = ("scf.yield", "omp.yield")


class _NestCompiler:
    """Analyses one loop nest and emits a :class:`CompiledNest`."""

    def __init__(self, root: Operation):
        self.root = root
        self.bounds: list[tuple[_Affine, _Affine, _Affine]] = []
        self.ivs: dict[SSAValue, int] = {}
        # SSA value -> _Affine | ("const", literal) | "array"
        self.sym: dict[SSAValue, Union[_Affine, tuple, str]] = {}
        self.instrs: list[tuple] = []

    def compile(self) -> CompiledNest:
        root = self.root
        if isinstance(root, (scf.ParallelOp, omp.WsLoopOp)):
            block = root.body.block
            for iv, lower, upper, step in zip(
                block.args, root.lower_bounds, root.upper_bounds, root.steps
            ):
                self._push_dim(iv, lower, upper, step)
            # The tree walker counts cells_updated once per point of the
            # parallel dims only; inner scf.for dims flattened later by
            # _compile_block must not inflate the statistic.
            count_dims = len(self.bounds)
        elif isinstance(root, scf.ForOp):
            if root.iter_args or root.results:
                raise VectorizationError("loop-carried values cannot be vectorized")
            block = root.body.block
            self._push_dim(block.args[0], root.lower_bound, root.upper_bound, root.step)
            count_dims = 0
        else:
            raise VectorizationError(f"{root.name} is not a vectorizable nest")
        self._compile_block(block)
        return CompiledNest(self.bounds, self.instrs, count_dims)

    def _push_dim(self, iv: SSAValue, lower, upper, step) -> None:
        self.ivs[iv] = len(self.bounds)
        self.bounds.append(
            (
                self._invariant_operand(lower),
                self._invariant_operand(upper),
                self._invariant_operand(step),
            )
        )

    def _invariant_operand(self, value: SSAValue) -> _Affine:
        affine = self._index_operand(value)
        if affine is None or affine.coeffs:
            raise VectorizationError("loop bounds must be nest-invariant")
        return affine

    # -- structure ----------------------------------------------------------
    def _compile_block(self, block) -> None:
        ops = list(block.ops)
        for position, op in enumerate(ops):
            name = op.name
            if name in _NEST_TERMINATORS:
                if op.operands or position != len(ops) - 1:
                    raise VectorizationError("nests must not yield values")
                return
            if isinstance(op, scf.ForOp):
                # Perfectly nested inner loop: nothing may follow it.
                if op.iter_args or op.results:
                    raise VectorizationError("inner loop carries values")
                remainder = ops[position + 1 :]
                if len(remainder) != 1 or remainder[0].name not in _NEST_TERMINATORS \
                        or remainder[0].operands:
                    raise VectorizationError("inner loop is not perfectly nested")
                inner = op.body.block
                self._push_dim(inner.args[0], op.lower_bound, op.upper_bound, op.step)
                self._compile_block(inner)
                return
            self._compile_op(op)

    # -- per-op classification ----------------------------------------------
    def _compile_op(self, op: Operation) -> None:
        name = op.name
        if isinstance(op, arith.ConstantOp):
            attr = op.value
            if isinstance(attr, IntegerAttr):
                result_type = op.results[0].type
                if isinstance(result_type, IntegerType) and result_type.width == 1:
                    self.sym[op.results[0]] = ("const", bool(attr.value))
                else:
                    self.sym[op.results[0]] = _Affine(const=int(attr.value))
            elif isinstance(attr, FloatAttr):
                self.sym[op.results[0]] = ("const", float(attr.value))
            else:
                raise VectorizationError("unsupported constant payload")
            return

        if isinstance(op, memref.LoadOp):
            self._compile_access(op.memref, op.indices, result=op.results[0])
            return
        if isinstance(op, memref.StoreOp):
            self._compile_access(op.memref, op.indices, stored=op.value)
            return

        # Integer/index arithmetic stays symbolic whenever possible so it can
        # feed memref indices.
        if name in ("arith.addi", "arith.subi", "arith.muli"):
            lhs = self._index_operand(op.operands[0])
            rhs = self._index_operand(op.operands[1])
            if lhs is not None and rhs is not None:
                if name == "arith.addi":
                    self.sym[op.results[0]] = lhs.combine(rhs, 1)
                elif name == "arith.subi":
                    self.sym[op.results[0]] = lhs.combine(rhs, -1)
                else:
                    if lhs.is_literal:
                        self.sym[op.results[0]] = rhs.scale(lhs.const)
                    elif rhs.is_literal:
                        self.sym[op.results[0]] = lhs.scale(rhs.const)
                    else:
                        raise VectorizationError("non-affine index product")
                return
        if name in ("arith.index_cast", "arith.extsi", "arith.trunci"):
            affine = self._index_operand(op.operands[0])
            if affine is not None:
                self.sym[op.results[0]] = affine
                return

        if name in _BINARY_FNS:
            self._emit(
                "binary", op.results[0], _BINARY_FNS[name],
                self._value_ref(op.operands[0]), self._value_ref(op.operands[1]),
            )
            return
        if name in _UNARY_FNS:
            self._emit(
                "unary", op.results[0], _UNARY_FNS[name],
                self._value_ref(op.operands[0]),
            )
            return
        if name == "arith.cmpf":
            assert isinstance(op, arith.CmpfOp)
            fn = _CMPF_FNS.get(op.predicate)
            if fn is None:
                raise VectorizationError(f"cmpf predicate {op.predicate!r}")
            self._emit(
                "binary", op.results[0], fn,
                self._value_ref(op.operands[0]), self._value_ref(op.operands[1]),
            )
            return
        if name == "arith.cmpi":
            assert isinstance(op, arith.CmpiOp)
            fn = _CMPI_FNS.get(op.predicate)
            if fn is None:
                raise VectorizationError(f"cmpi predicate {op.predicate!r}")
            self._emit(
                "binary", op.results[0], fn,
                self._value_ref(op.operands[0]), self._value_ref(op.operands[1]),
            )
            return
        if name == "arith.select":
            self.instrs.append(
                (
                    "select", op.results[0],
                    self._value_ref(op.operands[0]),
                    self._value_ref(op.operands[1]),
                    self._value_ref(op.operands[2]),
                )
            )
            self.sym[op.results[0]] = "array"
            return
        raise VectorizationError(f"operation {name!r} cannot be vectorized")

    def _emit(self, kind: str, result: SSAValue, fn, *refs: _Ref) -> None:
        self.instrs.append((kind, result, fn, *refs))
        self.sym[result] = "array"

    def _compile_access(self, base: SSAValue, indices, result=None, stored=None) -> None:
        if base in self.sym or base in self.ivs:
            raise VectorizationError("memref allocated inside the nest")
        axes = []
        for index_value in indices:
            affine = self._index_operand(index_value)
            if affine is None:
                raise VectorizationError("non-affine memref index")
            axes.append(affine)
        if result is not None:
            self.instrs.append(("load", result, base, axes))
            self.sym[result] = "array"
        else:
            self.instrs.append(("store", self._value_ref(stored), base, axes))

    # -- operand classification ----------------------------------------------
    def _index_operand(self, value: SSAValue) -> Optional[_Affine]:
        """An affine view of ``value``, or None when it is not index-like."""
        if value in self.ivs:
            return _Affine({self.ivs[value]: 1})
        symbol = self.sym.get(value)
        if symbol is not None:
            if isinstance(symbol, _Affine):
                return symbol
            if isinstance(symbol, tuple) and isinstance(symbol[1], int) \
                    and not isinstance(symbol[1], bool):
                return _Affine(const=symbol[1])
            return None
        value_type = value.type
        if isinstance(value_type, IndexType) or (
            isinstance(value_type, IntegerType) and value_type.width > 1
        ):
            return _Affine(free={value: 1})
        return None

    def _value_ref(self, value: SSAValue) -> _Ref:
        if value in self.ivs:
            return ("aff", _Affine({self.ivs[value]: 1}))
        symbol = self.sym.get(value)
        if symbol is None:
            return ("free", value)  # defined outside the nest: env lookup
        if symbol == "array":
            return ("arr", value)
        if isinstance(symbol, _Affine):
            if symbol.is_literal:
                return ("const", symbol.const)
            return ("aff", symbol)
        return ("const", symbol[1])


def compile_loop_nest(op: Operation) -> Optional[CompiledNest]:
    """Compile one loop nest, or return None when it is not vectorizable."""
    try:
        return _NestCompiler(op).compile()
    except VectorizationError:
        return None


# ---------------------------------------------------------------------------
# whole-function compilation + cache entry point
# ---------------------------------------------------------------------------

class CompiledKernel:
    """Vectorized nests of one function, looked up by nest operation."""

    def __init__(self, function_name: str, nests: dict[int, CompiledNest]):
        self.function_name = function_name
        self.nests = nests

    def nest_for(self, op: Operation) -> Optional[CompiledNest]:
        return self.nests.get(id(op))

    @property
    def nest_count(self) -> int:
        return len(self.nests)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CompiledKernel {self.function_name!r}: {len(self.nests)} nests>"


_CANDIDATES = (scf.ParallelOp, omp.WsLoopOp, scf.ForOp)


def compile_kernel(module: Operation, function_name: str) -> CompiledKernel:
    """Compile every vectorizable loop nest of one function of ``module``.

    Unknown function names yield an empty kernel (the interpreter will raise
    its usual error when the call is attempted), so callers need not special
    case them.
    """
    nests: dict[int, CompiledNest] = {}
    for op in module.walk():
        if not (isinstance(op, func.FuncOp) and op.sym_name == function_name):
            continue
        compiled_region_roots: set[int] = set()
        for candidate in op.walk():
            if not isinstance(candidate, _CANDIDATES):
                continue
            if any(
                id(ancestor) in compiled_region_roots
                for ancestor in _ancestors(candidate)
            ):
                continue  # already covered by a vectorized enclosing nest
            nest = compile_loop_nest(candidate)
            if nest is not None:
                nests[id(candidate)] = nest
                compiled_region_roots.add(id(candidate))
        break
    return CompiledKernel(function_name, nests)


def _ancestors(op: Operation):
    current = op.parent_op
    while current is not None:
        yield current
        current = current.parent_op
