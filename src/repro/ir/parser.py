"""Parser for the generic textual IR format produced by :mod:`repro.ir.printer`.

The parser is intentionally limited to the generic operation syntax; it exists
so programs can be stored as text, diffed, and round-tripped in tests - the
same role the shared textual format plays between MLIR and xDSL in the paper.
"""

from __future__ import annotations

import re

from .attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    DenseArrayAttr,
    DenseIntOrFPElementsAttr,
    FloatAttr,
    FloatData,
    IntAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    UnitAttr,
)
from .context import MLContext
from .core import Block, Operation, Region, SSAValue
from .types import (
    DYNAMIC,
    Float16Type,
    Float32Type,
    Float64Type,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    NoneType,
    TensorType,
    VectorType,
)


class ParseError(Exception):
    """Raised on malformed textual IR."""

    def __init__(self, message: str, position: int = -1, text: str = ""):
        if position >= 0 and text:
            line = text.count("\n", 0, position) + 1
            col = position - (text.rfind("\n", 0, position) + 1) + 1
            message = f"line {line}, column {col}: {message}"
        super().__init__(message)


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<caret>\^[A-Za-z0-9_]*)
  | (?P<percent>%[A-Za-z0-9_.$-]+)
  | (?P<at>@[A-Za-z0-9_.$-]+)
  | (?P<hash>\#[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<bang>![A-Za-z_][A-Za-z0-9_.]*)
  | (?P<arrow>->)
  | (?P<float>-?\d+\.\d*(?:[eE][-+]?\d+)?|-?\d+[eE][-+]?\d+)
  | (?P<int>-?\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<punct>[(){}\[\]<>:,=?x*])
    """,
    re.VERBOSE,
)


class Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int):
        self.kind = kind
        self.text = text
        self.pos = pos

    def __repr__(self) -> str:  # pragma: no cover
        return f"Token({self.kind}, {self.text!r})"


def _tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", pos, text)
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(Token(kind, match.group(), pos))
        pos = match.end()
    tokens.append(Token("eof", "", len(text)))
    return tokens


class Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, ctx: MLContext, text: str):
        self.ctx = ctx
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0
        self.value_map: dict[str, SSAValue] = {}

    # -- token helpers --------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def accept(self, text: str) -> bool:
        if self.peek().text == text:
            self.next()
            return True
        return False

    def expect(self, text: str) -> Token:
        token = self.next()
        if token.text != text:
            raise ParseError(f"expected {text!r}, found {token.text!r}", token.pos, self.text)
        return token

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.peek().pos, self.text)

    # -- entry points --------------------------------------------------------------
    def parse_module(self) -> Operation:
        op = self.parse_operation()
        if self.peek().kind != "eof":
            raise self.error("trailing input after top-level operation")
        return op

    # -- operations ---------------------------------------------------------------
    def parse_operation(self) -> Operation:
        result_names: list[str] = []
        if self.peek().kind == "percent":
            while self.peek().kind == "percent":
                result_names.append(self.next().text[1:])
                if not self.accept(","):
                    break
            self.expect("=")
        name_token = self.next()
        if name_token.kind != "string":
            raise ParseError(
                f"expected operation name string, found {name_token.text!r}",
                name_token.pos,
                self.text,
            )
        op_name = _unescape(name_token.text)

        self.expect("(")
        operand_names: list[str] = []
        while self.peek().kind == "percent":
            operand_names.append(self.next().text[1:])
            if not self.accept(","):
                break
        self.expect(")")

        regions: list[Region] = []
        if self.peek().text == "(" and self.peek(1).text == "{":
            self.expect("(")
            while True:
                regions.append(self.parse_region())
                if not self.accept(","):
                    break
            self.expect(")")

        attributes: dict[str, Attribute] = {}
        if self.peek().text == "{":
            attributes = self.parse_attr_dict()

        self.expect(":")
        self.expect("(")
        operand_types: list[Attribute] = []
        while self.peek().text != ")":
            operand_types.append(self.parse_type())
            if not self.accept(","):
                break
        self.expect(")")
        self.expect("->")
        result_types: list[Attribute] = []
        if self.accept("("):
            while self.peek().text != ")":
                result_types.append(self.parse_type())
                if not self.accept(","):
                    break
            self.expect(")")
        else:
            result_types.append(self.parse_type())

        if len(operand_names) != len(operand_types):
            raise self.error(
                f"{op_name}: {len(operand_names)} operands but "
                f"{len(operand_types)} operand types"
            )
        operands = []
        for operand_name, operand_type in zip(operand_names, operand_types):
            if operand_name not in self.value_map:
                raise self.error(f"use of undefined value %{operand_name}")
            value = self.value_map[operand_name]
            operands.append(value)

        op_cls = self.ctx.get_op(op_name)
        if op_cls is None:
            if not self.ctx.allow_unregistered:
                raise self.error(f"unregistered operation {op_name!r}")
            op_cls = UnregisteredOp.with_name(op_name)
        op = op_cls.create(
            operands=operands,
            result_types=result_types,  # type: ignore[arg-type]
            attributes=attributes,
            regions=regions,
        )
        if result_names and len(result_names) != len(op.results):
            raise self.error(
                f"{op_name}: {len(result_names)} result names but "
                f"{len(op.results)} results"
            )
        for result_name, result in zip(result_names, op.results):
            result.name_hint = result_name
            self.value_map[result_name] = result
        return op

    def parse_region(self) -> Region:
        self.expect("{")
        region = Region()
        while self.peek().kind == "caret":
            region.add_block(self.parse_block())
        self.expect("}")
        return region

    def parse_block(self) -> Block:
        self.next()  # ^label
        block = Block()
        self.expect("(")
        while self.peek().kind == "percent":
            arg_name = self.next().text[1:]
            self.expect(":")
            arg_type = self.parse_type()
            arg = block.add_arg(arg_type)  # type: ignore[arg-type]
            arg.name_hint = arg_name
            self.value_map[arg_name] = arg
            if not self.accept(","):
                break
        self.expect(")")
        self.expect(":")
        while self.peek().kind in ("percent", "string"):
            block.add_op(self.parse_operation())
        return block

    def parse_attr_dict(self) -> dict[str, Attribute]:
        self.expect("{")
        attributes: dict[str, Attribute] = {}
        while self.peek().text != "}":
            key_token = self.next()
            if key_token.kind == "string":
                key = _unescape(key_token.text)
            elif key_token.kind == "ident":
                key = key_token.text
            else:
                raise ParseError(
                    f"expected attribute name, found {key_token.text!r}",
                    key_token.pos,
                    self.text,
                )
            self.expect("=")
            attributes[key] = self.parse_attribute()
            if not self.accept(","):
                break
        self.expect("}")
        return attributes

    # -- attributes and types -------------------------------------------------------
    def parse_attribute(self) -> Attribute:
        token = self.peek()
        if token.kind == "string":
            self.next()
            return StringAttr(_unescape(token.text))
        if token.kind == "at":
            self.next()
            return SymbolRefAttr(token.text[1:])
        if token.kind == "int":
            self.next()
            value = int(token.text)
            if self.accept(":"):
                return IntegerAttr(value, self.parse_type())
            return IntAttr(value)
        if token.kind == "float":
            self.next()
            value = float(token.text)
            if self.accept(":"):
                return FloatAttr(value, self.parse_type())
            return FloatData(value)
        if token.text == "true":
            self.next()
            return BoolAttr(True)
        if token.text == "false":
            self.next()
            return BoolAttr(False)
        if token.text == "unit":
            self.next()
            return UnitAttr()
        if token.text == "[":
            self.next()
            elements: list[Attribute] = []
            while self.peek().text != "]":
                elements.append(self.parse_attribute())
                if not self.accept(","):
                    break
            self.expect("]")
            return ArrayAttr(elements)
        if token.text == "array":
            self.next()
            self.expect("<")
            element_type = self.parse_type()
            self.expect(":")
            values: list[float] = []
            while self.peek().text != ">":
                value_token = self.next()
                if value_token.kind == "int":
                    values.append(int(value_token.text))
                elif value_token.kind == "float":
                    values.append(float(value_token.text))
                else:
                    raise ParseError(
                        f"expected number in dense array, found {value_token.text!r}",
                        value_token.pos,
                        self.text,
                    )
                if not self.accept(","):
                    break
            self.expect(">")
            return DenseArrayAttr(values, element_type)  # type: ignore[arg-type]
        if token.text == "dense":
            self.next()
            self.expect("<")
            self.expect("[")
            values = []
            while self.peek().text != "]":
                value_token = self.next()
                values.append(
                    int(value_token.text)
                    if value_token.kind == "int"
                    else float(value_token.text)
                )
                if not self.accept(","):
                    break
            self.expect("]")
            self.expect(">")
            self.expect(":")
            type_ = self.parse_type()
            return DenseIntOrFPElementsAttr(values, type_)  # type: ignore[arg-type]
        if token.kind == "hash":
            return self._parse_dialect_attribute(token, is_type=False)
        # Fall back to a type attribute (types are attributes).
        return self.parse_type()

    def parse_type(self) -> Attribute:
        token = self.peek()
        if token.kind == "bang":
            return self._parse_dialect_attribute(token, is_type=True)
        if token.kind == "ident":
            text = token.text
            if text == "index":
                self.next()
                return IndexType()
            if text == "none":
                self.next()
                return NoneType()
            if text in ("f16", "f32", "f64"):
                self.next()
                return {"f16": Float16Type, "f32": Float32Type, "f64": Float64Type}[text]()
            if re.fullmatch(r"i\d+", text):
                self.next()
                return IntegerType(int(text[1:]))
            if text in ("memref", "tensor", "vector"):
                self.next()
                return self._parse_shaped_type(text)
        if token.text == "(":
            self.next()
            inputs: list[Attribute] = []
            while self.peek().text != ")":
                inputs.append(self.parse_type())
                if not self.accept(","):
                    break
            self.expect(")")
            self.expect("->")
            outputs: list[Attribute] = []
            self.expect("(")
            while self.peek().text != ")":
                outputs.append(self.parse_type())
                if not self.accept(","):
                    break
            self.expect(")")
            return FunctionType(inputs, outputs)  # type: ignore[arg-type]
        raise ParseError(f"expected a type, found {token.text!r}", token.pos, self.text)

    def _parse_shaped_type(self, keyword: str) -> Attribute:
        # The dimension list ("8x8x?xf64") does not tokenise cleanly (an "x"
        # glued to digits lexes as an identifier), so take the raw bracket
        # payload and split it textually.
        body = self._consume_balanced_angle_brackets()
        parts = body.replace(" ", "").split("x")
        dims: list[int] = []
        element_parts: list[str] = []
        for i, part in enumerate(parts):
            if not element_parts and part == "?":
                dims.append(DYNAMIC)
            elif not element_parts and re.fullmatch(r"\d+", part):
                dims.append(int(part))
            else:
                element_parts.append(part)
        element_text = "x".join(element_parts)
        element_type = Parser(self.ctx, element_text).parse_type()
        cls = {"memref": MemRefType, "tensor": TensorType, "vector": VectorType}[keyword]
        return cls(dims, element_type)  # type: ignore[arg-type]

    def _parse_dialect_attribute(self, token: Token, is_type: bool) -> Attribute:
        self.next()
        name = token.text[1:]
        attr_cls = self.ctx.get_attr(name)
        if attr_cls is None:
            raise ParseError(f"unregistered attribute {name!r}", token.pos, self.text)
        body = ""
        if self.peek().text == "<":
            body = self._consume_balanced_angle_brackets()
        if hasattr(attr_cls, "parse_parameters"):
            return attr_cls.parse_parameters(body)  # type: ignore[attr-defined]
        if body:
            raise ParseError(
                f"attribute {name!r} does not accept parameters", token.pos, self.text
            )
        return attr_cls()  # type: ignore[call-arg]

    def _consume_balanced_angle_brackets(self) -> str:
        """Consume ``<...>`` (with nesting) and return the raw inner text."""
        start_token = self.expect("<")
        depth = 1
        start = start_token.pos + 1
        end = start
        while depth > 0:
            token = self.next()
            if token.kind == "eof":
                raise ParseError("unbalanced '<' in dialect attribute", start, self.text)
            if token.text == "<" or (token.kind in ("hash", "bang") and self.peek().text == "<"):
                if token.text == "<":
                    depth += 1
            elif token.text == ">":
                depth -= 1
            end = token.pos
        return self.text[start:end].strip()


class UnregisteredOp(Operation):
    """Placeholder for operations whose dialect is not registered."""

    name = "builtin.unregistered"

    _cache: dict[str, type] = {}

    @classmethod
    def with_name(cls, name: str) -> type:
        if name not in cls._cache:
            cls._cache[name] = type(
                f"UnregisteredOp_{name.replace('.', '_')}", (UnregisteredOp,), {"name": name}
            )
        return cls._cache[name]


def _unescape(quoted: str) -> str:
    return quoted[1:-1].replace('\\"', '"').replace("\\\\", "\\")


def parse_module(ctx: MLContext, text: str) -> Operation:
    """Parse a textual module and return the top-level operation."""
    return Parser(ctx, text).parse_module()
