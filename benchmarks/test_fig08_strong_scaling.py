"""Figure 8: strong scaling of 3D so4 heat/wave kernels to 128 ARCHER2 nodes.

The scaling curves come from the alpha-beta + roofline model; a small real
distributed execution on the simulated MPI runtime is benchmarked alongside so
the halo-exchange machinery itself is exercised.
"""

import numpy as np
import pytest

from bench_helpers import attach_rows
from repro.core import compile_stencil_program, dmp_target, run_distributed
from repro.evaluation import figure8_strong_scaling
from repro.workloads import heat_diffusion


@pytest.mark.benchmark(group="figure8")
def test_figure8_scaling_rows(benchmark):
    rows = benchmark(figure8_strong_scaling, (1, 2, 4, 8, 16, 32, 64, 128))
    attach_rows(benchmark, "figure8", rows)
    for stack in ("devito", "xdsl"):
        series = [r for r in rows if r["stack"] == stack and r["figure"] == "8a"]
        throughputs = [r["gpts"] for r in series]
        assert all(b > a for a, b in zip(throughputs, throughputs[1:]))
    devito_128 = next(r for r in rows if r["stack"] == "devito" and r["nodes"] == 128 and r["figure"] == "8a")
    xdsl_128 = next(r for r in rows if r["stack"] == "xdsl" and r["nodes"] == 128 and r["figure"] == "8a")
    assert devito_128["parallel_efficiency"] >= xdsl_128["parallel_efficiency"]


@pytest.mark.benchmark(group="figure8-execution")
@pytest.mark.parametrize("ranks", [(2, 2), (4, 2)], ids=["4ranks", "8ranks"])
def test_distributed_heat_execution(benchmark, ranks):
    """Real distributed execution (simulated MPI) of a small 2D heat problem."""
    workload = heat_diffusion((16, 16), space_order=2, dtype=np.float64)
    module = workload.operator(backend="xdsl").stencil_module(dt=workload.dt)
    program = compile_stencil_program(module, dmp_target(ranks))

    def run():
        u0 = np.zeros((18, 18))
        u0[8:10, 8:10] = 1.0
        u1 = u0.copy()
        result = run_distributed(program, [u0, u1], [2])
        return result

    result = benchmark(run)
    assert result.messages_sent > 0
