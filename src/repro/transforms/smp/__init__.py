"""Shared-memory parallelism transformations (scf -> OpenMP)."""

from .convert_scf_to_openmp import (
    ConvertSCFToOpenMPPass,
    convert_scf_to_openmp,
    count_parallel_regions,
)

__all__ = [
    "ConvertSCFToOpenMPPass", "convert_scf_to_openmp", "count_parallel_regions",
]
