"""The memref dialect: allocation, load/store and views over memory buffers."""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.attributes import DenseArrayAttr, StringAttr
from ..ir.context import Dialect
from ..ir.core import Operation, SSAValue
from ..ir.traits import MemoryReadEffect, MemoryWriteEffect, Pure
from ..ir.types import DYNAMIC, IndexType, MemRefType, i64, index


class AllocOp(Operation):
    """Allocate a memref on the heap."""

    name = "memref.alloc"

    def __init__(self, result_type: MemRefType, dynamic_sizes: Sequence[SSAValue] = ()):
        super().__init__(operands=list(dynamic_sizes), result_types=[result_type])

    @property
    def memref(self) -> SSAValue:
        return self.results[0]

    def verify_(self) -> None:
        result_type = self.results[0].type
        if not isinstance(result_type, MemRefType):
            raise ValueError("memref.alloc must return a memref")
        dynamic_dims = sum(1 for d in result_type.shape if d == DYNAMIC)
        if dynamic_dims != len(self.operands):
            raise ValueError(
                "memref.alloc needs one size operand per dynamic dimension"
            )


class AllocaOp(AllocOp):
    """Allocate a memref on the stack."""

    name = "memref.alloca"


class DeallocOp(Operation):
    """Free a memref allocated with memref.alloc."""

    name = "memref.dealloc"

    def __init__(self, memref: SSAValue):
        super().__init__(operands=[memref])

    @property
    def memref(self) -> SSAValue:
        return self.operands[0]


class LoadOp(Operation):
    """Load a scalar element from a memref at the given indices."""

    name = "memref.load"
    traits = frozenset([MemoryReadEffect()])

    def __init__(self, memref: SSAValue, indices: Sequence[SSAValue]):
        memref_type = memref.type
        if not isinstance(memref_type, MemRefType):
            raise ValueError("memref.load operates on a memref value")
        super().__init__(
            operands=[memref, *indices],
            result_types=[memref_type.element_type],
        )

    @property
    def memref(self) -> SSAValue:
        return self.operands[0]

    @property
    def indices(self) -> tuple[SSAValue, ...]:
        return self.operands[1:]

    @property
    def result(self) -> SSAValue:
        return self.results[0]

    def verify_(self) -> None:
        memref_type = self.memref.type
        if not isinstance(memref_type, MemRefType):
            raise ValueError("memref.load operates on a memref value")
        if len(self.indices) != memref_type.rank:
            raise ValueError(
                f"memref.load expects {memref_type.rank} indices, got {len(self.indices)}"
            )
        for idx in self.indices:
            if not isinstance(idx.type, IndexType):
                raise ValueError("memref.load indices must have index type")


class StoreOp(Operation):
    """Store a scalar element into a memref at the given indices."""

    name = "memref.store"
    traits = frozenset([MemoryWriteEffect()])

    def __init__(self, value: SSAValue, memref: SSAValue, indices: Sequence[SSAValue]):
        super().__init__(operands=[value, memref, *indices])

    @property
    def value(self) -> SSAValue:
        return self.operands[0]

    @property
    def memref(self) -> SSAValue:
        return self.operands[1]

    @property
    def indices(self) -> tuple[SSAValue, ...]:
        return self.operands[2:]

    def verify_(self) -> None:
        memref_type = self.memref.type
        if not isinstance(memref_type, MemRefType):
            raise ValueError("memref.store operates on a memref value")
        if len(self.indices) != memref_type.rank:
            raise ValueError(
                f"memref.store expects {memref_type.rank} indices, got {len(self.indices)}"
            )
        if self.value.type != memref_type.element_type:
            raise ValueError("memref.store value type must match the element type")


class SubviewOp(Operation):
    """A rectangular view into a memref, described by static offsets/sizes/strides."""

    name = "memref.subview"
    traits = frozenset([Pure()])

    def __init__(
        self,
        source: SSAValue,
        offsets: Sequence[int],
        sizes: Sequence[int],
        strides: Optional[Sequence[int]] = None,
    ):
        source_type = source.type
        if not isinstance(source_type, MemRefType):
            raise ValueError("memref.subview operates on a memref value")
        if strides is None:
            strides = [1] * len(offsets)
        result_type = MemRefType(sizes, source_type.element_type)
        super().__init__(
            operands=[source],
            attributes={
                "static_offsets": DenseArrayAttr(offsets, i64),
                "static_sizes": DenseArrayAttr(sizes, i64),
                "static_strides": DenseArrayAttr(strides, i64),
            },
            result_types=[result_type],
        )

    @property
    def source(self) -> SSAValue:
        return self.operands[0]

    @property
    def result(self) -> SSAValue:
        return self.results[0]

    @property
    def offsets(self) -> tuple[int, ...]:
        attr = self.attributes["static_offsets"]
        assert isinstance(attr, DenseArrayAttr)
        return tuple(int(v) for v in attr.data)

    @property
    def sizes(self) -> tuple[int, ...]:
        attr = self.attributes["static_sizes"]
        assert isinstance(attr, DenseArrayAttr)
        return tuple(int(v) for v in attr.data)

    @property
    def strides(self) -> tuple[int, ...]:
        attr = self.attributes["static_strides"]
        assert isinstance(attr, DenseArrayAttr)
        return tuple(int(v) for v in attr.data)

    def verify_(self) -> None:
        source_type = self.source.type
        if not isinstance(source_type, MemRefType):
            raise ValueError("memref.subview operates on a memref value")
        rank = source_type.rank
        if not (len(self.offsets) == len(self.sizes) == len(self.strides) == rank):
            raise ValueError(
                "memref.subview offsets, sizes and strides must match the source rank"
            )
        for offset, size, dim in zip(self.offsets, self.sizes, source_type.shape):
            if dim != DYNAMIC and offset + size > dim:
                raise ValueError(
                    f"memref.subview region [{offset}, {offset + size}) exceeds "
                    f"source dimension of size {dim}"
                )


class CopyOp(Operation):
    """Copy the contents of one memref into another of identical shape."""

    name = "memref.copy"
    traits = frozenset([MemoryReadEffect(), MemoryWriteEffect()])

    def __init__(self, source: SSAValue, target: SSAValue):
        super().__init__(operands=[source, target])

    @property
    def source(self) -> SSAValue:
        return self.operands[0]

    @property
    def target(self) -> SSAValue:
        return self.operands[1]

    def verify_(self) -> None:
        src, dst = self.source.type, self.target.type
        if not isinstance(src, MemRefType) or not isinstance(dst, MemRefType):
            raise ValueError("memref.copy operates on memref values")
        if src.has_static_shape() and dst.has_static_shape():
            if src.element_count() != dst.element_count():
                raise ValueError("memref.copy source and target sizes differ")


class CastOp(Operation):
    """Cast between compatible memref types (e.g. static <-> dynamic shape)."""

    name = "memref.cast"
    traits = frozenset([Pure()])

    def __init__(self, source: SSAValue, result_type: MemRefType):
        super().__init__(operands=[source], result_types=[result_type])

    @property
    def result(self) -> SSAValue:
        return self.results[0]


class DimOp(Operation):
    """Query the size of a memref dimension."""

    name = "memref.dim"
    traits = frozenset([Pure()])

    def __init__(self, memref: SSAValue, dimension: SSAValue):
        super().__init__(operands=[memref, dimension], result_types=[index])

    @property
    def result(self) -> SSAValue:
        return self.results[0]


class ExtractAlignedPointerAsIndexOp(Operation):
    """Expose the base pointer of a memref as an index (used by the MPI lowering)."""

    name = "memref.extract_aligned_pointer_as_index"
    traits = frozenset([Pure()])

    def __init__(self, memref: SSAValue):
        super().__init__(operands=[memref], result_types=[index])

    @property
    def result(self) -> SSAValue:
        return self.results[0]


class GlobalOp(Operation):
    """A module-level global buffer (used for constant coefficient tables)."""

    name = "memref.global"

    def __init__(self, sym_name: str, type: MemRefType):
        super().__init__(
            attributes={"sym_name": StringAttr(sym_name), "type": type},
        )


class GetGlobalOp(Operation):
    """Materialise an SSA value for a memref.global."""

    name = "memref.get_global"
    traits = frozenset([Pure()])

    def __init__(self, sym_name: str, result_type: MemRefType):
        super().__init__(
            attributes={"name": StringAttr(sym_name)},
            result_types=[result_type],
        )


MemRef = Dialect(
    "memref",
    [
        AllocOp, AllocaOp, DeallocOp, LoadOp, StoreOp, SubviewOp, CopyOp, CastOp,
        DimOp, ExtractAlignedPointerAsIndexOp, GlobalOp, GetGlobalOp,
    ],
    [],
)
