"""Multi-node strong-scaling model (compute roofline + alpha-beta communication)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .compilers import CPUCompilerProfile
from .cpu import estimate_cpu_node
from .kernel_model import ProgramCharacteristics
from .specs import CPUNodeSpec, NetworkSpec


@dataclass
class ScalingPoint:
    """Predicted execution at one node count of a strong-scaling sweep."""

    nodes: int
    seconds: float
    compute_seconds: float
    communication_seconds: float
    cells_updated: float

    @property
    def gpoints_per_second(self) -> float:
        return self.cells_updated / self.seconds / 1e9 if self.seconds > 0 else 0.0

    @property
    def parallel_efficiency(self) -> float:
        return self.compute_seconds / self.seconds if self.seconds > 0 else 0.0


def _decompose(extent_shape: Sequence[int], total_ranks: int, decomposed_dims: int) -> list[int]:
    """A near-cubic factorisation of ``total_ranks`` over ``decomposed_dims`` dims."""
    grid = [1] * decomposed_dims
    remaining = total_ranks
    dim = 0
    while remaining > 1:
        factor = 2
        while remaining % factor != 0:
            factor += 1
        grid[dim % decomposed_dims] *= factor
        remaining //= factor
        dim += 1
    return grid


def estimate_strong_scaling(
    program: ProgramCharacteristics,
    global_shape: Sequence[int],
    timesteps: int,
    node_counts: Sequence[int],
    node: CPUNodeSpec,
    network: NetworkSpec,
    profile: CPUCompilerProfile,
    *,
    ranks_per_node: int = 8,
    dtype_bytes: int = 4,
    decomposed_dims: int | None = None,
) -> list[ScalingPoint]:
    """Strong-scaling sweep: fixed global problem, growing node counts.

    Per time step every rank computes its slab (single-node roofline scaled to
    the per-rank share of the node) and exchanges its halos with an alpha-beta
    cost; profiles with computation/communication overlap hide part of the
    exchange behind the compute phase.
    """
    global_cells = 1
    for extent in global_shape:
        global_cells *= int(extent)
    halo_lower, halo_upper = program.combined_halo()
    rank_dims = decomposed_dims if decomposed_dims is not None else len(global_shape)
    rank_dims = min(rank_dims, len(global_shape))

    points: list[ScalingPoint] = []
    for nodes in node_counts:
        total_ranks = nodes * ranks_per_node
        grid = _decompose(global_shape, total_ranks, rank_dims)
        local_shape = [
            max(1, int(extent) // grid[dim]) if dim < rank_dims else int(extent)
            for dim, extent in enumerate(global_shape)
        ]
        local_cells = 1
        for extent in local_shape:
            local_cells *= extent

        # Per-node compute: scale the per-step program characteristics to the
        # node's share of the global domain.
        node_share = local_cells * ranks_per_node / global_cells
        scaled = ProgramCharacteristics(applies=[])
        for apply_chars in program.applies:
            scaled_chars = type(apply_chars)(
                rank=apply_chars.rank,
                accesses=apply_chars.accesses,
                flops_per_cell=apply_chars.flops_per_cell,
                input_fields=apply_chars.input_fields,
                output_fields=apply_chars.output_fields,
                halo_lower=apply_chars.halo_lower,
                halo_upper=apply_chars.halo_upper,
                cells_per_step=max(1, int(apply_chars.cells_per_step * node_share)),
            )
            scaled.applies.append(scaled_chars)
        node_estimate = estimate_cpu_node(
            scaled, 1, node, profile, dtype_bytes=dtype_bytes
        )
        compute_per_step = node_estimate.seconds

        # Per-rank halo volume: two faces per decomposed dimension.
        halo_bytes = 0
        messages = 0
        for dim in range(rank_dims):
            if grid[dim] == 1:
                continue
            face = 1
            for other_dim, extent in enumerate(local_shape):
                if other_dim != dim:
                    face *= extent
            width = max(halo_lower[dim] if dim < len(halo_lower) else 1, 1)
            halo_bytes += 2 * face * width * dtype_bytes
            messages += 2
        swaps_per_step = max(1, program.stencil_regions)
        comm_per_step = swaps_per_step * (
            messages * network.latency_s
            + halo_bytes / (network.bandwidth_gbs * 1e9 / ranks_per_node)
        )
        if nodes > 128:
            comm_per_step *= network.inter_group_penalty
        hidden = profile.comm_overlap * min(comm_per_step, compute_per_step)
        step_time = compute_per_step + comm_per_step - hidden

        total = step_time * timesteps
        points.append(
            ScalingPoint(
                nodes=nodes,
                seconds=total,
                compute_seconds=compute_per_step * timesteps,
                communication_seconds=(comm_per_step - hidden) * timesteps,
                cells_updated=float(global_cells) * timesteps,
            )
        )
    return points
