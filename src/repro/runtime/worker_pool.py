"""A persistent pool of SPMD worker processes.

Spawning an OS process and importing the compiler stack costs far more than
one small stencil run, so the pool is *persistent*: workers are started once
per interpreter session and reused by every subsequent
``run_distributed(runtime="processes")`` call.  Programs are compiled once in
the parent, pickled once per worker (the vectorized-kernel cache is dropped on
the wire and rebuilt lazily), and cached worker-side on the unpickled
:class:`~repro.core.CompiledProgram` itself — so repeated runs, e.g. a
benchmark's timing loop, ship nothing and recompile nothing.

Protocol (all tuples over per-worker command queues and one shared result
queue):

* ``("program", key, payload)`` — cache a pickled program under ``key``;
* ``("run", run_id, key, rank, size, function, backend, field_specs,
  scalars, timeout, threads_per_rank, codegen, trace)`` — attach the
  shared-memory fields and execute one rank (with an intra-rank thread team
  when ``threads_per_rank > 1`` — the OpenMP level of the hybrid runtime;
  ``codegen`` selects the worker-built megakernel fast path, cached on the
  worker's unpickled program like the vectorized kernels; ``trace`` turns on
  the rank-local span tracer, whose record ships back with the reply);
* ``("spmd", run_id, rank, size, payload, timeout)`` — run an arbitrary
  picklable ``fn(comm, *args)`` (tests and ad-hoc experiments);
* ``("warmup", run_id, rank, threads_per_rank)`` — pre-spawn the worker's
  intra-rank thread team so the first hybrid run pays no spawn latency;
* ``("stop",)`` — exit the worker loop.

Workers answer ``("done", run_id, rank, result, comm_stats, trace_record)``
or ``("error", run_id, rank, failure)`` where ``failure`` is a picklable
:class:`WorkerFailure` (rank, phase, exception type, traceback text).  A
failed or timed-out run poisons the pool (peers may still be blocked in
receives), so the pool is shut down and the next run transparently starts a
fresh one.
"""

from __future__ import annotations

import atexit
import contextlib
import itertools
import pickle
import queue as queue_module
import sys
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

import numpy as np

from ..interp.interpreter import ExecStatistics, Interpreter
from ..interp.mpi_runtime import CommStatistics
from ..obs import Tracer
from .mp_world import (
    ProcessRankCommunicator,
    SharedField,
    SharedFieldSpec,
    default_context,
    processes_available,
)
from .stats import RankStats, merge_comm_statistics, sort_rank_stats


@dataclass
class WorkerFailure:
    """Structured, picklable description of one rank's failure.

    Replaces the raw ``traceback.format_exc()`` strings the workers used to
    ship: the parent can now attribute a failure to a rank and phase
    programmatically (it rides on :attr:`WorkerError.failure` and lands in
    session metrics) while :meth:`describe` keeps the full human-readable
    detail, traceback included.
    """

    rank: int
    #: Which worker phase failed: ``"run"``, ``"spmd"`` or ``"warmup"``.
    phase: str
    #: Exception class name (the exception object itself may not pickle).
    exception: str
    message: str
    traceback_text: str

    def describe(self) -> str:
        return (
            f"rank {self.rank} failed during {self.phase}: "
            f"{self.exception}: {self.message}\n{self.traceback_text}"
        )


class WorkerError(RuntimeError):
    """A worker rank failed or the pool timed out; carries the remote detail.

    When the failure came from a worker rank (rather than a parent-side
    timeout), :attr:`failure` holds the structured :class:`WorkerFailure`.
    """

    failure: Optional[WorkerFailure] = None


class _PoolReplacedError(Exception):
    """Internal: the pool was shut down (grown/replaced) before this run
    acquired it; the caller should fetch the current pool and retry."""


@dataclass
class PoolBatchJob:
    """One job of a batched pooled round (``run_program_batch``).

    ``field_specs[rank]`` are the pre-scattered shared-memory specs of that
    rank's fields; the job occupies ``len(field_specs)`` contiguous workers.
    """

    program: Any
    function_name: str
    backend: str
    field_specs: Sequence[Sequence["SharedFieldSpec"]]
    scalars: Sequence[Any]
    threads_per_rank: int = 1
    codegen: str = "planned"
    trace: str = "off"


@contextlib.contextmanager
def _deep_recursion(limit: int = 10_000):
    """Temporarily raise the recursion limit for (un)pickling IR modules.

    The pickler walks the use-def graph recursively, so serialization depth
    grows with the length of SSA dependency chains — a few thousand frames
    for the larger lowered modules, past the default limit of 1000.
    """
    previous = sys.getrecursionlimit()
    sys.setrecursionlimit(max(previous, limit))
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

def _failure(rank: int, phase: str, err: BaseException) -> WorkerFailure:
    """Build the structured failure shipped to the parent (must pickle)."""
    return WorkerFailure(
        rank=rank,
        phase=phase,
        exception=type(err).__name__,
        message=str(err),
        traceback_text=traceback.format_exc(),
    )


def _worker_main(worker_index: int, commands, results, inboxes) -> None:
    """The worker loop: cache programs, execute ranks, report statistics."""
    programs: dict[int, Any] = {}
    while True:
        command = commands.get()
        kind = command[0]
        if kind == "stop":
            return
        if kind == "program":
            _, key, payload = command
            with _deep_recursion():
                programs[key] = pickle.loads(payload)
            continue
        if kind == "run":
            (_, run_id, key, rank, size, base, function_name, backend,
             field_specs, scalars, timeout, threads_per_rank, codegen,
             trace) = command
            fields: list[SharedField] = []
            try:
                program = programs[key]
                # Cached on the worker's CompiledProgram: compiled on the
                # first run of this program and shared by every later run.
                kernel = (
                    None if backend == "interpreter"
                    else program.compiled_kernel(function_name)
                )
                fields = [SharedField.attach(spec) for spec in field_specs]
                # ``base`` partitions the pool across the jobs of one batched
                # round: this rank's world is the ``size`` workers starting at
                # ``base``, so its job-local inbox indices stay 0..size-1 and
                # concurrent jobs can never cross-deliver.
                comm = ProcessRankCommunicator(
                    rank, size, inboxes[base:base + size],
                    run_id=run_id, timeout=timeout
                )
                args = [field.array for field in fields] + list(scalars)
                # Spans are recorded against this process's monotonic clock;
                # the tracer's paired wall/perf reference lets the parent
                # re-align the record onto the shared timeline axis.
                tracer = (
                    Tracer(trace, track=f"rank {rank}")
                    if trace != "off" else None
                )
                stats = None
                if codegen != "planned" and kernel is not None:
                    megakernel = _worker_megakernel(
                        program, function_name, kernel, args, rank, size,
                        forced=(codegen == "megakernel"),
                        traced=tracer is not None,
                    )
                    if megakernel is not None and megakernel.matches(args):
                        candidate = ExecStatistics()
                        if megakernel.run(args, candidate, comm, tracer):
                            stats = candidate
                if stats is None:
                    interpreter = Interpreter(
                        program.module, comm=comm, kernel=kernel,
                        threads=threads_per_rank, tracer=tracer,
                    )
                    interpreter.call(function_name, *args)
                    stats = interpreter.stats
                results.put(
                    ("done", run_id, rank, stats, comm.statistics,
                     tracer.record() if tracer is not None else None)
                )
            except BaseException as err:  # noqa: BLE001 - ship to the parent
                results.put(("error", run_id, rank, _failure(rank, "run", err)))
            finally:
                for field in fields:
                    field.release()
            continue
        if kind == "spmd":
            _, run_id, rank, size, payload, timeout = command
            try:
                fn, args = pickle.loads(payload)
                comm = ProcessRankCommunicator(
                    rank, size, inboxes, run_id=run_id, timeout=timeout
                )
                value = fn(comm, *args)
                results.put(("done", run_id, rank, value, comm.statistics, None))
            except BaseException as err:  # noqa: BLE001 - ship to the parent
                results.put(("error", run_id, rank, _failure(rank, "spmd", err)))
            continue
        if kind == "warmup":
            # Pre-spawn the intra-rank thread team (the ROADMAP warm-up item):
            # the first hybrid run then pays no team-spawn latency.
            _, run_id, rank, threads_per_rank = command
            try:
                if threads_per_rank > 1:
                    from ..interp.thread_team import get_thread_team

                    get_thread_team(threads_per_rank)
                results.put(("done", run_id, rank, None, None, None))
            except BaseException as err:  # noqa: BLE001 - ship to the parent
                results.put(
                    ("error", run_id, rank, _failure(rank, "warmup", err))
                )
            continue


def _worker_megakernel(program, function_name, kernel, args, rank, size, *,
                       forced: bool, traced: bool = False):
    """This worker's megakernel for one (function, rank, layout) — or None.

    Mirrors the parent-side session cache: built on the first run from the
    shipped program (whose megakernel cache, like the vectorized-kernel
    cache, was dropped on the wire) and kept on the worker's unpickled
    CompiledProgram.  Failures are cached as CodegenFallback so they are not
    re-attempted every run; ``forced`` turns them into errors shipped to the
    parent instead of silent interpreter fallbacks.
    """
    from ..dialects.func import find_function
    from ..interp.codegen import (
        CodegenError,
        CodegenFallback,
        emit_megakernel,
        megakernel_signature,
        trace_program,
    )

    key = (function_name, rank, size, megakernel_signature(args), traced)
    cached = program._megakernel_cache.get(key)
    if cached is None:
        try:
            func_op = find_function(program.module, function_name)
            if func_op is None:
                raise CodegenError(f"no function named {function_name!r}")
            # Workers run the interpreter's default overlap discipline, so
            # the megakernel is emitted with the same completion points.
            trace = trace_program(func_op, kernel, overlap=True)
            cached = emit_megakernel(trace, args, rank=rank, size=size,
                                     traced=traced)
        except CodegenError as err:
            cached = CodegenFallback(function_name, str(err))
        program._megakernel_cache[key] = cached
    if isinstance(cached, CodegenFallback):
        if forced:
            raise WorkerError(
                f"codegen='megakernel' was forced but {function_name!r} "
                f"cannot be megakernel-compiled on rank {rank}/{size}: "
                f"{cached.reason}"
            )
        return None
    return cached


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------

_PROGRAM_KEYS = itertools.count(1)


class WorkerPool:
    """A fixed-size set of long-lived worker processes plus their queues."""

    def __init__(self, size: int):
        self._ctx = default_context()
        self.size = size
        self.alive = True
        # One run at a time: the workers and the result queue are shared
        # state, so concurrent run_program/run_spmd calls (e.g. from two
        # caller threads) must serialize — interleaved rank commands would
        # cross-deadlock and each collector would discard the other run's
        # reports.
        self._run_lock = threading.Lock()
        #: Programs shipped per worker (so re-runs ship nothing).
        self._shipped: list[set[int]] = [set() for _ in range(size)]
        self.programs_shipped = 0
        self._run_ids = itertools.count(1)
        self._inboxes = [self._ctx.Queue() for _ in range(size)]
        self._results = self._ctx.Queue()
        self._commands = [self._ctx.Queue() for _ in range(size)]
        self._processes = [
            self._ctx.Process(
                target=_worker_main,
                args=(index, self._commands[index], self._results, self._inboxes),
                daemon=True,
                name=f"repro-spmd-worker-{index}",
            )
            for index in range(size)
        ]
        for process in self._processes:
            process.start()

    # -- program shipping -----------------------------------------------------
    def ship_program(self, program, ranks: int, base: int = 0) -> int:
        """Serialize ``program`` once and send it to ``ranks`` workers at ``base``.

        The key is stashed on the program object, so re-running the same
        compiled program never re-pickles or re-sends it.
        """
        key = getattr(program, "_pool_program_key", None)
        if key is None:
            key = next(_PROGRAM_KEYS)
            program._pool_program_key = key
        payload: Optional[bytes] = None
        for index in range(base, base + ranks):
            if key in self._shipped[index]:
                continue
            if payload is None:
                with _deep_recursion():
                    payload = pickle.dumps(program)
            self._commands[index].put(("program", key, payload))
            self._shipped[index].add(key)
            self.programs_shipped += 1
        return key

    # -- execution ------------------------------------------------------------
    def reap_dead_workers(self) -> list[int]:
        """Indices of workers that died (crashed or were killed) since start."""
        return [
            index for index, process in enumerate(self._processes)
            if not process.is_alive()
        ]

    def _require_healthy(self) -> None:
        """Retire the pool when any worker died between runs.

        A dead worker would silently swallow its rank's command and hang the
        whole run until the collect deadline; replacing the pool up front
        turns that into a transparent retry for the caller (the
        ``_PoolReplacedError`` loop in the entry points fetches a fresh one).
        """
        dead = self.reap_dead_workers()
        if dead:
            self.shutdown()
            raise _PoolReplacedError

    def run_program(
        self,
        program,
        function_name: str,
        backend: str,
        field_specs: Sequence[Sequence[SharedFieldSpec]],
        scalar_arguments: Sequence[Any],
        timeout: float,
        threads_per_rank: int = 1,
        codegen: str = "planned",
        trace: str = "off",
    ) -> list[RankStats]:
        """Execute one rank per worker against pre-scattered shared fields."""
        size = len(field_specs)
        if size > self.size:
            raise WorkerError(f"pool of {self.size} workers cannot host {size} ranks")
        with self._run_lock:
            if not self.alive:
                raise _PoolReplacedError
            self._require_healthy()
            key = self.ship_program(program, size)
            run_id = next(self._run_ids)
            scalars = list(scalar_arguments)
            for rank in range(size):
                self._commands[rank].put(
                    ("run", run_id, key, rank, size, 0, function_name, backend,
                     list(field_specs[rank]), scalars, timeout,
                     threads_per_rank, codegen, trace)
                )
            reports = self._collect(run_id, size, timeout)
        return [RankStats(rank, exec_stats, comm_stats, trace=trace_record)
                for rank, exec_stats, comm_stats, trace_record in reports]

    def run_program_batch(
        self, jobs: Sequence["PoolBatchJob"], timeout: float
    ) -> list[Any]:
        """Run several independent SPMD jobs in ONE pooled round.

        The pool's workers are partitioned across the jobs — job ``i`` of
        ``r_i`` ranks owns the contiguous worker range starting at
        ``sum(r_0..r_{i-1})`` and communicates only within it (its
        communicator sees a job-local inbox window, see ``_worker_main``) —
        so many small runs share one dispatch/collect round instead of
        serializing.  Returns one entry per job, in order: a ``RankStats``
        list on success, or the :class:`WorkerError` that failed the job.
        A failed job never poisons its siblings' results, but it does retire
        the pool after the round (its peer ranks may still be draining their
        communication timeouts), matching the single-run discipline.
        """
        total = sum(len(job.field_specs) for job in jobs)
        if total > self.size:
            raise WorkerError(
                f"pool of {self.size} workers cannot host {total} ranks "
                f"across {len(jobs)} batched jobs"
            )
        with self._run_lock:
            if not self.alive:
                raise _PoolReplacedError
            self._require_healthy()
            run_ids: list[int] = []
            sizes: list[int] = []
            base = 0
            for job in jobs:
                size = len(job.field_specs)
                key = self.ship_program(job.program, size, base)
                run_id = next(self._run_ids)
                scalars = list(job.scalars)
                for rank in range(size):
                    self._commands[base + rank].put(
                        ("run", run_id, key, rank, size, base,
                         job.function_name, job.backend,
                         list(job.field_specs[rank]), scalars, timeout,
                         job.threads_per_rank, job.codegen, job.trace)
                    )
                run_ids.append(run_id)
                sizes.append(size)
                base += size
            outcomes = self._collect_batch(run_ids, sizes, timeout)
        results: list[Any] = []
        for outcome in outcomes:
            if isinstance(outcome, WorkerError):
                results.append(outcome)
            else:
                results.append([
                    RankStats(rank, exec_stats, comm_stats, trace=trace_record)
                    for rank, exec_stats, comm_stats, trace_record in outcome
                ])
        return results

    def _collect_batch(
        self, run_ids: Sequence[int], sizes: Sequence[int], timeout: float
    ) -> list[Any]:
        """One report list per job (or its WorkerError), demuxed by run id.

        A job whose rank reports an error is failed immediately — its
        remaining ranks are doomed to their communication timeouts and their
        late reports are ignored by run-id filtering — while sibling jobs
        keep collecting.  Any failure (or a deadline) retires the pool after
        the round, like :meth:`_collect`.
        """
        deadline = time.monotonic() + timeout + 10.0
        by_run = {run_id: index for index, run_id in enumerate(run_ids)}
        reports: list[list] = [[] for _ in run_ids]
        outcomes: list[Any] = [None] * len(run_ids)
        remaining = set(range(len(run_ids)))

        def _fail(index: int, error: WorkerError) -> None:
            outcomes[index] = error
            remaining.discard(index)

        while remaining:
            budget = deadline - time.monotonic()
            if budget <= 0:
                for index in sorted(remaining):
                    _fail(index, WorkerError(
                        f"batched job {index} did not report within "
                        f"{timeout}s (deadlock?)"
                    ))
                break
            try:
                message = self._results.get(timeout=min(budget, 0.5))
            except queue_module.Empty:
                dead = self.reap_dead_workers()
                if dead:
                    for index in sorted(remaining):
                        _fail(index, WorkerError(
                            f"worker processes {dead} died mid-batch"
                        ))
                    break
                continue
            tag, reported_run, rank = message[0], message[1], message[2]
            index = by_run.get(reported_run)
            if index is None or index not in remaining:
                continue  # stale report from a failed earlier run or job
            if tag == "error":
                failure = message[3]
                if isinstance(failure, WorkerFailure):
                    error = WorkerError(failure.describe())
                    error.failure = failure
                else:  # pragma: no cover - legacy payload shape
                    error = WorkerError(f"rank {rank} failed:\n{failure}")
                _fail(index, error)
                continue
            reports[index].append((rank, message[3], message[4], message[5]))
            if len(reports[index]) == sizes[index]:
                outcomes[index] = reports[index]
                remaining.discard(index)
        if any(isinstance(outcome, WorkerError) for outcome in outcomes):
            self.shutdown()
        return outcomes

    def run_spmd(
        self,
        fn: Callable,
        size: int,
        args: Sequence[Any],
        timeout: float,
    ) -> tuple[list[Any], list[CommStatistics]]:
        """Run ``fn(comm, *args)`` on ``size`` ranks; return per-rank results."""
        if size > self.size:
            raise WorkerError(f"pool of {self.size} workers cannot host {size} ranks")
        with self._run_lock:
            if not self.alive:
                raise _PoolReplacedError
            self._require_healthy()
            run_id = next(self._run_ids)
            payload = pickle.dumps((fn, tuple(args)))
            for rank in range(size):
                self._commands[rank].put(("spmd", run_id, rank, size, payload, timeout))
            reports = self._collect(run_id, size, timeout)
        ordered = sorted(reports, key=lambda report: report[0])
        return (
            [report[1] for report in ordered],
            [report[2] for report in ordered],
        )

    def warmup(self, ranks: int, threads_per_rank: int = 1,
               timeout: float = 60.0) -> None:
        """Pre-spawn the first ``ranks`` workers' intra-rank thread teams.

        The workers themselves were spawned by the pool constructor; this
        round-trip additionally forces each of them to build (and cache) its
        ``threads_per_rank``-sized team and proves the command loop is alive,
        so the first real hybrid run pays neither spawn latency.
        """
        if ranks > self.size:
            raise WorkerError(f"pool of {self.size} workers cannot host {ranks} ranks")
        with self._run_lock:
            if not self.alive:
                raise _PoolReplacedError
            self._require_healthy()
            run_id = next(self._run_ids)
            for rank in range(ranks):
                self._commands[rank].put(("warmup", run_id, rank, threads_per_rank))
            self._collect(run_id, ranks, timeout)

    def _collect(self, run_id: int, size: int, timeout: float) -> list[tuple]:
        """Gather one report per rank, failing fast on worker errors."""
        # Workers' own receives already honour ``timeout``; the parent allows
        # a margin on top so the rank-side timeout error arrives first.
        deadline = time.monotonic() + timeout + 10.0
        reports: list[tuple] = []
        seen: set[int] = set()
        while len(reports) < size:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.shutdown()
                raise WorkerError(
                    f"ranks {sorted(set(range(size)) - seen)} did not report "
                    f"within {timeout}s (deadlock?)"
                )
            try:
                message = self._results.get(timeout=min(remaining, 0.5))
            except queue_module.Empty:
                dead = [
                    rank for rank in range(size)
                    if rank not in seen and not self._processes[rank].is_alive()
                ]
                if dead:
                    self.shutdown()
                    raise WorkerError(f"worker processes for ranks {dead} died")
                continue
            tag, reported_run, rank = message[0], message[1], message[2]
            if reported_run != run_id:
                continue  # stale report from a failed earlier run
            if tag == "error":
                self.shutdown()
                failure = message[3]
                if isinstance(failure, WorkerFailure):
                    error = WorkerError(failure.describe())
                    error.failure = failure
                    raise error
                raise WorkerError(f"rank {rank} failed:\n{failure}")
            reports.append((rank, message[3], message[4], message[5]))
            seen.add(rank)
        return reports

    # -- lifecycle -------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop every worker and release the queues; the pool is dead after.

        Workers that already died (crashed mid-run, killed externally) are
        reaped rather than waited on: the stop command is only sent to live
        ones, joins on corpses return immediately, and a worker that ignores
        ``terminate`` is force-killed — shutdown always finishes.
        """
        if not self.alive:
            return
        self.alive = False
        for commands, process in zip(self._commands, self._processes):
            if not process.is_alive():
                continue  # already dead: nobody will read the stop command
            try:
                commands.put(("stop",))
            except Exception:  # pragma: no cover - queue already broken
                pass
        for process in self._processes:
            process.join(timeout=1.0)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        for process in self._processes:
            if process.is_alive():  # pragma: no cover - terminate ignored
                process.kill()
                process.join(timeout=1.0)
        for q in [*self._commands, *self._inboxes, self._results]:
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:  # pragma: no cover - queue already broken
                pass


class PoolManager:
    """Owns (at most) one :class:`WorkerPool` and its replacement policy.

    Pool ownership used to be a module global; a manager instance makes it an
    explicit resource a :class:`repro.core.session.Session` can hold, reuse
    across runs, and tear down deterministically.  The module-level functions
    below keep delegating to one process-wide default manager — the
    compatibility surface for ad-hoc callers and the default session.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._pool: Optional[WorkerPool] = None
        #: How many pools this manager ever constructed (a warmed-up manager
        #: serving repeated runs stays at 1 — asserted by the session tests).
        self.pools_created = 0

    @property
    def pool(self) -> Optional[WorkerPool]:
        """The current pool, if any (no spawning)."""
        return self._pool

    def acquire(self, size: int) -> WorkerPool:
        """The persistent pool, grown (by replacement) when too small."""
        with self._lock:
            pool = self._pool
            if pool is not None and pool.alive and pool.size >= size:
                return pool
            previous = pool.size if pool is not None else 0
            if pool is not None:
                # Replacing a too-small pool must wait for any in-flight run
                # to finish, or the shutdown would terminate its busy workers.
                with pool._run_lock:
                    pool.shutdown()
            self._pool = WorkerPool(max(size, previous))
            self.pools_created += 1
            return self._pool

    def shutdown(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None

    # -- retrying entry points (transparent pool replacement) -----------------
    def run_program_specs(
        self,
        program,
        function_name: str,
        backend: str,
        field_specs: Sequence[Sequence[SharedFieldSpec]],
        scalar_arguments: Sequence[Any],
        timeout: float,
        threads_per_rank: int = 1,
        codegen: str = "planned",
        trace: str = "off",
    ) -> list[RankStats]:
        """Run one rank per worker against pre-scattered shared-memory specs."""
        size = len(field_specs)
        for _ in _pool_attempts():
            pool = self.acquire(size)
            try:
                return pool.run_program(
                    program, function_name, backend, field_specs,
                    scalar_arguments, timeout, threads_per_rank, codegen,
                    trace,
                )
            except _PoolReplacedError:
                continue  # the pool was grown, replaced, or had dead workers

    def run_program_batch(
        self, jobs: Sequence[PoolBatchJob], timeout: float
    ) -> list[Any]:
        """Run several independent jobs in one pooled round (see the pool).

        The pool is grown (by replacement) to the batch's total rank count;
        per-job outcomes are returned in order — ``RankStats`` lists for
        successes, :class:`WorkerError` instances for failed jobs.
        """
        total = sum(len(job.field_specs) for job in jobs)
        for _ in _pool_attempts():
            pool = self.acquire(total)
            try:
                return pool.run_program_batch(jobs, timeout)
            except _PoolReplacedError:
                continue  # the pool was grown, replaced, or had dead workers

    def run_spmd(
        self, fn: Callable, size: int, args: Sequence[Any], timeout: float
    ) -> tuple[list[Any], list[CommStatistics]]:
        for _ in _pool_attempts():
            pool = self.acquire(size)
            try:
                return pool.run_spmd(fn, size, args, timeout)
            except _PoolReplacedError:
                continue  # the pool was grown, replaced, or had dead workers

    def warmup(self, ranks: int, threads_per_rank: int = 1,
               timeout: float = 60.0) -> None:
        """Spawn ``ranks`` workers (and their thread teams) ahead of a run."""
        for _ in _pool_attempts():
            pool = self.acquire(ranks)
            try:
                pool.warmup(ranks, threads_per_rank, timeout)
                return
            except _PoolReplacedError:
                continue  # the pool was grown, replaced, or had dead workers


_GLOBAL_MANAGER = PoolManager()


def default_pool_manager() -> PoolManager:
    """The process-wide manager behind the module-level compatibility API."""
    return _GLOBAL_MANAGER


def get_worker_pool(size: int) -> WorkerPool:
    """The shared persistent pool, grown (by replacement) when too small."""
    return _GLOBAL_MANAGER.acquire(size)


def shutdown_worker_pool() -> None:
    """Tear down the shared pool and field blocks (tests, interpreter exit)."""
    _GLOBAL_MANAGER.shutdown()
    from .shared_pool import shared_field_pool

    shared_field_pool().clear()


atexit.register(shutdown_worker_pool)


# ---------------------------------------------------------------------------
# high-level entry points
# ---------------------------------------------------------------------------

def run_program_processes(
    program,
    function_name: str,
    backend: str,
    local_fields: Sequence[Sequence[Any]],
    scalar_arguments: Sequence[Any],
    *,
    timeout: float = 60.0,
    threads_per_rank: int = 1,
    manager: Optional[PoolManager] = None,
) -> tuple[list[ExecStatistics], CommStatistics]:
    """Run one compiled SPMD program rank-per-process over shared memory.

    ``local_fields[rank]`` are the pre-scattered per-rank buffers.  Plain
    NumPy arrays are copied into fresh shared-memory blocks and back (the
    PR 2 discipline, kept for ad-hoc callers); entries that already *are*
    shared-memory backed — :class:`~repro.runtime.shared_pool.LeasedField`
    or :class:`~repro.runtime.mp_world.SharedField` — are used in place,
    eliding both copies (the session's copy-elision path).  Buffers are
    updated **in place** either way.  Returns the per-rank execution
    statistics in rank order plus the merged communication statistics.
    ``manager`` selects whose worker pool runs it (default: the process-wide
    one).
    """
    manager = manager if manager is not None else _GLOBAL_MANAGER
    owned: list[tuple[np.ndarray, SharedField]] = []
    shared: list[list[Any]] = []
    for rank_fields in local_fields:
        rank_shared = []
        for entry in rank_fields:
            if isinstance(entry, np.ndarray):
                field = SharedField.create(entry)
                owned.append((entry, field))
                rank_shared.append(field)
            else:
                rank_shared.append(entry)
        shared.append(rank_shared)
    try:
        specs = [[field.spec for field in rank_fields] for rank_fields in shared]
        reports = manager.run_program_specs(
            program, function_name, backend, specs, scalar_arguments,
            timeout, threads_per_rank,
        )
        for array, field in owned:
            array[...] = field.array
    finally:
        for _, field in owned:
            field.release()
    ordered = sort_rank_stats(reports)
    return (
        [report.exec_stats for report in ordered],
        merge_comm_statistics([report.comm_stats for report in ordered]),
    )


def run_spmd_processes(
    fn: Callable,
    size: int,
    args: Sequence[Any] = (),
    *,
    timeout: float = 30.0,
    manager: Optional[PoolManager] = None,
) -> tuple[list[Any], CommStatistics]:
    """Run a picklable ``fn(comm, *args)`` on ``size`` process ranks.

    The process-world analogue of ``SimulatedMPI.run_spmd``; returns the
    per-rank return values (rank order) and the merged communication
    statistics.
    """
    if not processes_available():
        raise WorkerError("process runtime is unavailable on this platform")
    manager = manager if manager is not None else _GLOBAL_MANAGER
    values, per_rank = manager.run_spmd(fn, size, args, timeout)
    return values, merge_comm_statistics(per_rank)


def _pool_attempts(limit: int = 5):
    """Bounded retry loop for transparently replaced pools.

    A replaced pool (growth race, reaped dead workers) is retried against a
    fresh one; but workers that die *at startup* (ImportError in the child,
    fd exhaustion) would otherwise respawn pools forever — after ``limit``
    replacements the failure surfaces as a WorkerError instead.
    """
    yield from range(limit)
    raise WorkerError(
        f"worker pool was replaced {limit} times in a row; workers appear "
        "to be dying at startup (see the system log for the child error)"
    )
