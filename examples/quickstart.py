"""Quickstart: build, compile and run a 1D 3-point Jacobi stencil.

This is the paper's running example (listing 1 / fig. 2): a 1D Jacobi smoother
written directly at the stencil-dialect level with the OEC-style builder,
compiled by the shared pipeline and executed by the reference interpreter.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.core import Session, cpu_target
from repro.frontends.oec import StencilProgramBuilder
from repro.ir import print_module

N = 64  # interior grid points
TIMESTEPS = 50


def build_jacobi_builder():
    """A double-buffered 1D Jacobi smoother: u_new = (u[-1] + u[0] + u[1]) / 3."""
    builder = StencilProgramBuilder("kernel", shape=(N,), halo=1, dtype="f64")
    u = builder.add_field("u")
    v = builder.add_field("v")

    def body(s):
        left = s.access(0, (-1,))
        centre = s.access(0, (0,))
        right = s.access(0, (1,))
        third = s.constant(1.0 / 3.0)
        return s.mul(s.add(s.add(left, centre), right), third)

    builder.add_stencil(inputs=[u], output=v, body=body)
    builder.swap(u, v)  # double buffering between time steps
    return builder


def main() -> None:
    builder = build_jacobi_builder()
    module = builder.build()
    print("=== stencil-level IR (excerpt) ===")
    print("\n".join(print_module(module).splitlines()[:14]))

    program = builder.compile(cpu_target())
    print(f"\nstencil regions: {program.stencil_regions}")
    print(f"flops per cell : {program.characteristics.applies[0].flops_per_cell}")

    # One buffer per field; halo cells hold the (fixed) boundary values.
    u = np.zeros(N + 2)
    v = np.zeros(N + 2)
    u[1:-1] = np.sin(np.linspace(0.0, np.pi, N))
    u[0] = u[-1] = 0.0
    v[:] = u

    # The Session owns the runtime; the Plan is the repeatable hot path.
    with Session() as session:
        plan = session.plan(program)
        result = plan.run([u, v], [TIMESTEPS])
    final = u if TIMESTEPS % 2 == 0 else v
    print(f"\nafter {TIMESTEPS} Jacobi sweeps:")
    print(f"  max value  : {final.max():.6f} (smoothed down from 1.0)")
    print(f"  cells/step : {result.statistics[0].cells_updated // TIMESTEPS}")
    print(f"  ops run    : {result.statistics[0].ops_executed}")


if __name__ == "__main__":
    main()
