"""A minimal hls dialect for FPGA dataflow synthesis (Stencil-HMLS style).

The paper lowers the stencil dialect to an HLS dialect whose key constructs
are dataflow regions (concurrently executing stages connected by streams) and
a shift buffer that caches the stencil footprint so one new value per cycle is
read from external memory (Table 1's "optimized" configuration).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.attributes import IntAttr, StringAttr, TypeAttribute
from ..ir.context import Dialect
from ..ir.core import Block, Operation, Region, SSAValue
from ..ir.traits import IsTerminator


class StreamType(TypeAttribute):
    """A FIFO stream connecting dataflow stages."""

    name = "hls.stream"

    __slots__ = ("element_type",)

    def __init__(self, element_type: TypeAttribute):
        self.element_type = element_type

    def parameters(self) -> tuple:
        return (self.element_type,)

    def print_parameters(self, printer) -> str:
        return printer.print_type(self.element_type)

    @classmethod
    def parse_parameters(cls, text: str) -> "StreamType":
        from ..ir.types import f32, f64

        mapping = {"f32": f32, "f64": f64}
        return cls(mapping.get(text.strip(), f64))


class DataflowOp(Operation):
    """A dataflow region: every nested stage runs concurrently, pipelined."""

    name = "hls.dataflow"

    def __init__(self, body: Optional[Region] = None):
        if body is None:
            body = Region(Block())
        super().__init__(regions=[body])

    @property
    def body(self) -> Region:
        return self.regions[0]


class StageOp(Operation):
    """A single dataflow stage (read, compute, or write)."""

    name = "hls.stage"

    def __init__(self, kind: str, body: Optional[Region] = None, ii: int = 1):
        if body is None:
            body = Region(Block())
        super().__init__(
            attributes={"kind": StringAttr(kind), "ii": IntAttr(ii)},
            regions=[body],
        )

    @property
    def kind(self) -> str:
        attr = self.attributes["kind"]
        assert isinstance(attr, StringAttr)
        return attr.data

    @property
    def initiation_interval(self) -> int:
        attr = self.attributes["ii"]
        assert isinstance(attr, IntAttr)
        return attr.data


class ShiftBufferOp(Operation):
    """A 3D shift buffer caching the stencil footprint in on-chip memory.

    Once full, every cycle it provides all stencil input values for the
    current grid cell while only one new value is read from DDR.
    """

    name = "hls.shift_buffer"

    def __init__(self, source: SSAValue, footprint: Sequence[int]):
        from ..ir.attributes import DenseArrayAttr
        from ..ir.types import i64

        super().__init__(
            operands=[source],
            attributes={"footprint": DenseArrayAttr(footprint, i64)},
            result_types=[source.type],
        )

    @property
    def footprint(self) -> tuple[int, ...]:
        from ..ir.attributes import DenseArrayAttr

        attr = self.attributes["footprint"]
        assert isinstance(attr, DenseArrayAttr)
        return tuple(int(v) for v in attr.data)


class StreamReadOp(Operation):
    """Pop one element from a stream."""

    name = "hls.stream_read"

    def __init__(self, stream: SSAValue):
        stream_type = stream.type
        if not isinstance(stream_type, StreamType):
            raise ValueError("hls.stream_read expects an hls.stream operand")
        super().__init__(operands=[stream], result_types=[stream_type.element_type])


class StreamWriteOp(Operation):
    """Push one element onto a stream."""

    name = "hls.stream_write"

    def __init__(self, value: SSAValue, stream: SSAValue):
        super().__init__(operands=[value, stream])


class YieldOp(Operation):
    """Terminates hls region bodies."""

    name = "hls.yield"
    traits = frozenset([IsTerminator()])

    def __init__(self, values: Sequence[SSAValue] = ()):
        super().__init__(operands=list(values))


HLS = Dialect(
    "hls",
    [DataflowOp, StageOp, ShiftBufferOp, StreamReadOp, StreamWriteOp, YieldOp],
    [StreamType],
)
