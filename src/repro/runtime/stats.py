"""Picklable per-rank statistics and their deterministic parent-side merge.

Workers of the process runtime report one :class:`RankStats` each over the
result queue; both payload types (:class:`~repro.interp.ExecStatistics` and
:class:`~repro.interp.CommStatistics`) are plain int dataclasses, so they
cross the process boundary untouched.  The parent merges them *in rank order*
so repeated runs — and the thread runtime, whose world keeps one shared
counter set — always produce identical aggregate numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..interp.interpreter import ExecStatistics
from ..interp.mpi_runtime import CommStatistics


@dataclass
class RankStats:
    """Everything one worker reports about one rank of one run."""

    rank: int
    exec_stats: ExecStatistics
    comm_stats: CommStatistics


def merge_comm_statistics(per_rank: Sequence[CommStatistics]) -> CommStatistics:
    """Sum per-rank communication counters (rank order, hence deterministic).

    The thread world counts every ``post_message`` into one shared
    :class:`CommStatistics`; summing each process rank's local counters yields
    the same totals because both runtimes run the identical collective
    algorithms of :class:`~repro.interp.mpi_runtime.CommunicatorBase`.
    """
    merged = CommStatistics()
    for stats in per_rank:
        merged.messages_sent += stats.messages_sent
        merged.bytes_sent += stats.bytes_sent
        merged.collectives += stats.collectives
        merged.barriers += stats.barriers
        merged.bytes_elided += stats.bytes_elided
        merged.shared_blocks_reused += stats.shared_blocks_reused
    return merged


def combine_exec_statistics(per_rank: Sequence[ExecStatistics]) -> ExecStatistics:
    """Sum per-rank execution counters into one world-wide summary."""
    merged = ExecStatistics()
    for stats in per_rank:
        merged.ops_executed += stats.ops_executed
        merged.kernel_launches += stats.kernel_launches
        merged.host_synchronizations += stats.host_synchronizations
        merged.omp_regions += stats.omp_regions
        merged.omp_barriers += stats.omp_barriers
        merged.halo_swaps += stats.halo_swaps
        merged.halo_elements_exchanged += stats.halo_elements_exchanged
        merged.mpi_messages += stats.mpi_messages
        merged.cells_updated += stats.cells_updated
        merged.halo_swaps_overlapped += stats.halo_swaps_overlapped
    return merged


def sort_rank_stats(reports: Sequence[RankStats]) -> list[RankStats]:
    """Order worker reports by rank (workers finish in arbitrary order)."""
    ordered = sorted(reports, key=lambda report: report.rank)
    ranks = [report.rank for report in ordered]
    if ranks != list(range(len(ordered))):
        raise ValueError(f"incomplete or duplicated rank reports: {ranks}")
    return ordered
