"""Distributed acoustic wave propagation over simulated MPI ranks.

Compiles the isotropic acoustic wave equation for a rank grid: the shared
pipeline decomposes the domain (global-to-local pass), inserts dmp.swap halo
exchanges, lowers them all the way to MPI calls, and the program then runs on
the in-process message-passing runtime — one thread per rank
(``--runtime threads``, the default) or one OS process per rank with
shared-memory field buffers (``--runtime processes``).  ``--threads-per-rank``
adds the OpenMP level of the paper's hybrid MPI+OpenMP configurations: each
rank's vectorized nests execute on an intra-rank thread team.

Execution goes through the Session API: one :class:`repro.core.ExecutionConfig`
describes the run, a :class:`repro.core.Session` owns the worker pool and
thread teams (warmed up before the first run), and the Operator's plan is the
amortized hot path.  The distributed result is checked against a single-rank
run either way.

``--trace timeline`` records the run — compile passes, per-timestep spans,
halo post/wait windows, one track per rank — and writes Chrome trace-event
JSON loadable in Perfetto (ui.perfetto.dev) or ``chrome://tracing``;
summarize it with ``python -m repro.obs.report <file>``.

Run with::

    python examples/distributed_wave.py \
        [--runtime threads|processes] [--ranks 1|2|4] [--threads-per-rank N] \
        [--trace off|summary|timeline] [--trace-output wave_trace.json]
"""

import argparse

import numpy as np

from repro.core import (
    EXECUTION_RUNTIMES,
    EXECUTION_TRACE,
    ExecutionConfig,
    Session,
    dmp_target,
)
from repro.frontends.devito import Eq, Grid, Operator, TimeFunction, solve

SHAPE = (32, 32)
TIMESTEPS = 8

#: Rank-count -> Cartesian grid, mirroring the paper's 2D decompositions.
RANK_GRIDS = {1: (1, 1), 2: (2, 1), 4: (2, 2)}


def simulate(target=None, config=None, session=None) -> np.ndarray:
    grid = Grid(shape=SHAPE, extent=(1.0, 1.0))
    u = TimeFunction(name="u", grid=grid, space_order=4, time_order=2, dtype=np.float64)
    u.data[0][16, 16] = 1.0   # point source
    u.data[1][:] = u.data[0]

    wave_equation = Eq(u.dt2, 1.5 ** 2 * u.laplace)
    update = Eq(u.forward, solve(wave_equation, u.forward))
    kwargs = {"backend": "xdsl", "config": config, "session": session}
    if target is not None:
        kwargs["target"] = target
    op = Operator([update], **kwargs)
    op.apply(time=TIMESTEPS, dt=5e-3)
    return np.array(u.data[Operator.buffer_holding_time(u, TIMESTEPS)])


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--runtime", choices=EXECUTION_RUNTIMES, default="threads",
        help="execution runtime for the distributed ranks",
    )
    parser.add_argument(
        "--ranks", type=int, choices=sorted(RANK_GRIDS), default=4,
        help="number of MPI ranks (mapped to a Cartesian grid)",
    )
    parser.add_argument(
        "--threads-per-rank", type=int, default=1,
        help="intra-rank thread-team size (hybrid MPI+OpenMP when > 1)",
    )
    parser.add_argument(
        "--trace", choices=EXECUTION_TRACE, default="off",
        help="record the distributed run: 'summary' keeps per-span totals, "
             "'timeline' additionally keeps every span for Perfetto export",
    )
    parser.add_argument(
        "--trace-output", default="wave_trace.json",
        help="Chrome trace-event JSON path written when --trace is not 'off'",
    )
    args = parser.parse_args()

    single_rank = simulate()
    # Halo exchanges lowered to MPI_Isend/MPI_Irecv/MPI_Waitall with mpich
    # magic constants, exactly as the paper's generated code issues them.
    config = ExecutionConfig(
        runtime=args.runtime,
        ranks=args.ranks,
        threads_per_rank=args.threads_per_rank,
        trace=args.trace,
    )
    with Session(config) as session:
        # Pre-spawn workers and thread teams so the first run pays no
        # spawn latency (the warm-up item of the execution roadmap).
        session.warmup()
        distributed = simulate(
            dmp_target(RANK_GRIDS[args.ranks], lower_to_library_calls=True),
            config=config,
            session=session,
        )
        if args.trace != "off":
            session.dump_trace(args.trace_output)
            print(f"trace written to {args.trace_output} "
                  "(open in ui.perfetto.dev, or run "
                  f"'python -m repro.obs.report {args.trace_output}')")

    error = np.abs(single_rank - distributed).max()
    print(f"{args.ranks}-rank x {args.threads_per_rank}-thread distributed "
          f"({args.runtime}) vs single-rank result: "
          f"max |difference| = {error:.3e}")
    assert error < 1e-10, "domain decomposition must not change the result"
    print(f"wavefront peak after {TIMESTEPS} steps: {distributed.max():.4f}")
    print("distributed execution matches the single-rank reference.")


if __name__ == "__main__":
    main()
