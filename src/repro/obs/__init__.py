"""repro.obs: span-based tracing, metrics, and timeline export.

The observability layer is deliberately dependency-free in both directions:
:mod:`repro.obs.tracer` imports only the standard library, so every other
package (``ir``, ``core``, ``interp``, ``runtime``, the frontends) can hook
into it without creating an import cycle.

Three pieces:

* :class:`Tracer` — a per-track span recorder (monotonic clocks, bounded
  ring buffer, picklable :class:`TraceRecord` export) plus the thread-local
  :func:`compile_tracing` scope used by the compile pipeline and the pass
  manager.
* :class:`MetricsRegistry` — a unified integer-counter registry; the legacy
  ``ExecStatistics``/``CommStatistics`` dataclasses are compatibility views
  materialised from it.
* :class:`TraceTimeline` — merges per-rank/per-phase records into one
  multi-track timeline and exports Chrome trace-event JSON (Perfetto) or a
  human-readable profile table (``python -m repro.obs.report``).
"""

from .tracer import (
    TRACE_MODES,
    TraceRecord,
    Tracer,
    compile_tracing,
    current_compile_tracer,
)
from .registry import MetricsRegistry
from .export import TraceTimeline

__all__ = [
    "TRACE_MODES",
    "TraceRecord",
    "Tracer",
    "compile_tracing",
    "current_compile_tracer",
    "MetricsRegistry",
    "TraceTimeline",
]
