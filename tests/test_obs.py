"""Tests for repro.obs: span tracing, the metrics registry, and exporters.

Covers the observability PR's satellite checklist: tracer/record mechanics
(ring bound, pickling, clock references), registry-vs-legacy merge parity,
per-pass compile spans and ``PassManager.timings``, span-structure
determinism across the {threads, processes} x {1, 2 threads_per_rank}
matrix, traced-off bit-identity (and the untraced megakernel emitting zero
bookkeeping), Chrome trace-event JSON validity for a 2-rank x 2-thread run,
the structured :class:`~repro.runtime.WorkerFailure` error payload, and the
``python -m repro.obs.report`` CLI.
"""

import json
import pickle

import numpy as np
import pytest

from repro.core import (
    EXECUTION_TRACE,
    ExecutionConfig,
    ExecutionError,
    Session,
    compile_stencil_program,
    cpu_target,
    dmp_target,
)
from repro.interp.interpreter import ExecStatistics
from repro.interp.mpi_runtime import CommStatistics
from repro.obs import MetricsRegistry, Tracer, TraceTimeline, compile_tracing
from repro.obs import report as obs_report
from repro.runtime import (
    WorkerError,
    WorkerFailure,
    processes_available,
    shutdown_worker_pool,
)
from repro.workloads import heat_diffusion

needs_processes = pytest.mark.skipif(
    not processes_available(), reason="process runtime unavailable on this platform"
)


@pytest.fixture(scope="module", autouse=True)
def _pool_teardown():
    yield
    shutdown_worker_pool()


def _compile_heat(rank_grid=None, shape=(16, 16)):
    workload = heat_diffusion(shape, space_order=2, dtype=np.float64)
    module = workload.operator(backend="xdsl").stencil_module(dt=workload.dt)
    target = cpu_target() if rank_grid is None else dmp_target(rank_grid)
    return compile_stencil_program(module, target)


def _heat_fields(shape=(18, 18)):
    u0 = np.zeros(shape)
    u0[shape[0] // 2 - 1: shape[0] // 2 + 1,
       shape[1] // 2 - 1: shape[1] // 2 + 1] = 1.0
    return [u0, u0.copy()]


def _rank_records(timeline):
    return [r for r in timeline.records if r.track.startswith("rank")]


# ---------------------------------------------------------------------------
# tracer and record mechanics
# ---------------------------------------------------------------------------

class TestTracer:
    def test_span_totals_and_events(self):
        tracer = Tracer("timeline", track="t")
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        record = tracer.record()
        assert record.track == "t"
        assert [name for name, *_ in record.events] == ["inner", "outer"]
        # Depth is recorded at span end: inner ran at depth 1, outer at 0.
        assert [depth for *_, depth in record.events] == [1, 0]
        assert record.totals["outer"][0] == 1 and record.totals["inner"][0] == 1

    def test_summary_mode_keeps_totals_only(self):
        tracer = Tracer("summary")
        with tracer.span("a"):
            pass
        record = tracer.record()
        assert record.events == []
        assert record.totals["a"][0] == 1

    def test_ring_buffer_bounds_memory(self):
        tracer = Tracer("timeline", maxlen=4)
        for _ in range(10):
            with tracer.span("s"):
                pass
        record = tracer.record()
        assert len(record.events) == 4          # ring kept the newest spans
        assert record.totals["s"][0] == 10      # totals saw every one

    def test_record_pickles(self):
        tracer = Tracer("timeline", track="rank 3")
        with tracer.span("x"):
            tracer.count("things", 2)
        clone = pickle.loads(pickle.dumps(tracer.record()))
        assert clone.track == "rank 3"
        assert clone.counts == {"things": 2}
        assert clone.events[0][0] == "x"

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown trace mode"):
            Tracer("verbose")


# ---------------------------------------------------------------------------
# metrics registry vs the legacy dataclass merges
# ---------------------------------------------------------------------------

class TestMetricsRegistry:
    def test_ingest_and_materialize_exec(self):
        per_rank = [
            ExecStatistics(ops_executed=3, cells_updated=10, halo_swaps=1),
            ExecStatistics(ops_executed=4, cells_updated=20, mpi_messages=2),
        ]
        registry = MetricsRegistry()
        registry.ingest_all(per_rank, "exec.")
        merged = registry.as_exec_statistics()
        assert merged == ExecStatistics(
            ops_executed=7, cells_updated=30, halo_swaps=1, mpi_messages=2
        )

    def test_comm_merge_matches_hand_sum(self):
        per_rank = [
            CommStatistics(messages_sent=4, bytes_sent=128, collectives=1,
                           barriers=2, bytes_elided=64, shared_blocks_reused=1),
            CommStatistics(messages_sent=6, bytes_sent=256, collectives=3,
                           barriers=2, bytes_elided=32, shared_blocks_reused=2),
        ]
        from repro.runtime.stats import merge_comm_statistics

        merged = merge_comm_statistics(per_rank)
        # Bit-identical to the hand-written field-by-field merge it replaced,
        # including the compare=False transport counters.
        assert merged.messages_sent == 10 and merged.bytes_sent == 384
        assert merged.collectives == 4 and merged.barriers == 4
        assert merged.bytes_elided == 96 and merged.shared_blocks_reused == 3

    def test_session_metrics_mirror_results(self):
        program = _compile_heat((2, 1))
        with Session() as session:
            plan = session.plan(program)
            result = plan.run(_heat_fields(), [2])
            result = plan.run(_heat_fields(), [2])
        assert session.metrics.get("runs") == 2
        expected = 2 * sum(s.cells_updated for s in result.statistics)
        assert session.metrics.get("exec.cells_updated") == expected
        expected_msgs = 2 * result.comm_statistics.messages_sent
        assert session.metrics.get("comm.messages_sent") == expected_msgs


# ---------------------------------------------------------------------------
# compile-phase spans
# ---------------------------------------------------------------------------

class TestCompileTracing:
    def test_pass_manager_exposes_timings(self):
        program = _compile_heat()
        # compile_stencil_program records its stage/pass spans on the program.
        record = program.compile_record
        assert record is not None and record.track == "compile"
        names = {name for name, *_ in record.events}
        assert any(name.startswith("pass.") for name in names)
        assert any(name.startswith("pipeline.") for name in names)

    def test_pass_timings_property(self):
        from repro.ir import LambdaPass, PassManager, default_context

        program = _compile_heat()
        manager = PassManager(
            default_context(),
            [LambdaPass("first", lambda ctx, m: None),
             LambdaPass("second", lambda ctx, m: None)],
        )
        manager.run(program.module)
        timings = manager.timings
        assert [name for name, _ in timings] == ["first", "second"]
        assert all(seconds >= 0.0 for _, seconds in timings)

    def test_nested_scope_shares_one_tracer(self):
        with compile_tracing() as outer:
            with compile_tracing() as inner:
                assert inner is outer


# ---------------------------------------------------------------------------
# traced runs: structure determinism, bit-identity, timeline validity
# ---------------------------------------------------------------------------

def _span_names(record):
    return [name for name, *_ in record.events]


class TestTracedRuns:
    @pytest.mark.parametrize("threads_per_rank", [1, 2])
    def test_span_structure_deterministic_across_worlds(self, threads_per_rank):
        """Per-rank span sequences agree between the thread and process worlds."""
        program = _compile_heat((2, 1))
        sequences = {}
        runtimes = ["threads"]
        if processes_available():
            runtimes.append("processes")
        for runtime in runtimes:
            config = ExecutionConfig(
                runtime=runtime, threads_per_rank=threads_per_rank,
                trace="timeline", codegen="planned",
            )
            with Session(config) as session:
                result = session.plan(program).run(_heat_fields(), [3])
            sequences[runtime] = [
                _span_names(r) for r in _rank_records(result.trace)
            ]
            for names in sequences[runtime]:
                assert names.count("step") == 3
                assert "halo.post" in names and "halo.wait" in names
        if len(sequences) == 2:
            assert sequences["threads"] == sequences["processes"]

    def test_traced_off_is_bit_identical(self):
        program = _compile_heat((2, 1))
        outputs = {}
        for trace in ("off", "timeline"):
            fields = _heat_fields()
            with Session(ExecutionConfig(trace=trace)) as session:
                result = session.plan(program).run(fields, [3])
            outputs[trace] = (fields, result)
        assert outputs["off"][1].trace is None
        assert outputs["timeline"][1].trace is not None
        for off, traced in zip(outputs["off"][0], outputs["timeline"][0]):
            assert np.array_equal(off, traced)
        assert outputs["off"][1].statistics == outputs["timeline"][1].statistics

    def test_untraced_megakernel_emits_no_bookkeeping(self):
        program = _compile_heat()
        with Session(codegen="megakernel") as session:
            plan = session.plan(program)
            plan.run(_heat_fields(), [2])
            sources = [
                kernel.source
                for kernel in session._megakernel_cache.values()
                if hasattr(kernel, "source")
            ]
        assert sources and all("_tracer" not in source for source in sources)

    def test_traced_megakernel_records_spans(self):
        program = _compile_heat()
        with Session(codegen="megakernel", trace="timeline") as session:
            plan = session.plan(program)
            result = plan.run(_heat_fields(), [2])
            sources = [
                kernel.source
                for kernel in session._megakernel_cache.values()
                if hasattr(kernel, "source")
            ]
        assert sources and all("_tracer" in source for source in sources)
        assert session.metrics.get("megakernel.engaged") == 1
        (rank_record,) = _rank_records(result.trace)
        names = _span_names(rank_record)
        assert names.count("step") == 2 and "nest" in names

    def test_chrome_trace_json_is_valid(self, tmp_path):
        """2 ranks x 2 threads: compile passes, steps and halo windows land
        in valid Chrome trace-event JSON with one track per rank."""
        program = _compile_heat((2, 1))
        config = ExecutionConfig(
            runtime="processes" if processes_available() else "threads",
            threads_per_rank=2, trace="timeline",
        )
        path = tmp_path / "trace.json"
        with Session(config) as session:
            result = session.plan(program).run(_heat_fields(), [3])
            assert session.dump_trace(path) == path
        assert isinstance(result.trace, TraceTimeline)
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        tracks = [e["args"]["name"] for e in events if e["ph"] == "M"]
        assert "rank 0" in tracks and "rank 1" in tracks and "compile" in tracks
        names = set()
        for event in events:
            assert event["ph"] in ("M", "X")
            if event["ph"] == "X":
                assert isinstance(event["ts"], (int, float)) and event["ts"] >= 0
                assert isinstance(event["dur"], (int, float))
                assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
                names.add(event["name"])
        assert any(n.startswith("pass.") for n in names)
        assert {"step", "halo.post", "halo.wait"} <= names

    def test_summary_mode_profiles_without_events(self):
        program = _compile_heat((2, 1))
        with Session(ExecutionConfig(trace="summary")) as session:
            result = session.plan(program).run(_heat_fields(), [2])
        rows = {row["name"]: row for row in result.trace.profile()}
        assert rows["step"]["count"] == 4      # 2 ranks x 2 steps
        table = result.trace.profile_table()
        assert "step" in table

    def test_dump_trace_requires_a_traced_run(self):
        with Session() as session:
            with pytest.raises(ExecutionError, match="no traced run"):
                session.dump_trace("nowhere.json")


# ---------------------------------------------------------------------------
# configuration surface
# ---------------------------------------------------------------------------

class TestTraceConfig:
    def test_modes(self):
        assert EXECUTION_TRACE == ("off", "summary", "timeline")
        for mode in EXECUTION_TRACE:
            assert ExecutionConfig(trace=mode).trace == mode

    def test_rejects_unknown_mode(self):
        with pytest.raises(ExecutionError, match="unknown trace mode"):
            ExecutionConfig(trace="verbose")

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "summary")
        assert ExecutionConfig().trace == "summary"
        monkeypatch.setenv("REPRO_TRACE", "bogus")
        with pytest.raises(ExecutionError, match="unknown trace mode"):
            ExecutionConfig()
        monkeypatch.delenv("REPRO_TRACE")
        assert ExecutionConfig().trace == "off"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "timeline")
        assert ExecutionConfig(trace="off").trace == "off"


# ---------------------------------------------------------------------------
# structured worker failures
# ---------------------------------------------------------------------------

@needs_processes
def test_worker_failure_is_structured():
    program = _compile_heat((2, 1))
    with Session(ExecutionConfig(runtime="processes")) as session:
        plan = session.plan(program)
        with pytest.raises(WorkerError) as excinfo:
            # Wrong scalar arity: every rank's interpreter raises remotely.
            plan.run(_heat_fields(), [2, 99])
        failure = excinfo.value.failure
        assert isinstance(failure, WorkerFailure)
        assert failure.phase == "run"
        assert failure.rank in (0, 1)
        assert failure.exception  # exception type name, e.g. InterpreterError
        assert "Traceback" in failure.traceback_text
        assert str(failure.rank) in failure.describe()
        assert session.metrics.get("worker.errors") == 1
        # The pool recovers: the next run on the same plan works.
        result = plan.run(_heat_fields(), [2])
        assert result.runtime == "processes"


# ---------------------------------------------------------------------------
# report CLI
# ---------------------------------------------------------------------------

class TestReportCLI:
    def _dump(self, tmp_path):
        program = _compile_heat((2, 1))
        path = tmp_path / "trace.json"
        with Session(ExecutionConfig(trace="timeline")) as session:
            session.plan(program).run(_heat_fields(), [2])
            session.dump_trace(path)
        return path

    def test_summarize_and_render(self, tmp_path, capsys):
        path = self._dump(tmp_path)
        assert obs_report.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "rank 0" in out and "step" in out

    def test_empty_trace_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"traceEvents": []}))
        assert obs_report.main([str(path)]) == 1
        assert "no spans" in capsys.readouterr().err
