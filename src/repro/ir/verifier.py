"""Structural verification of IR.

The verifier checks invariants that every well-formed program must satisfy:
operand/result consistency, trait constraints, dominance within blocks, and
dialect-specific invariants via ``Operation.verify_``.
"""

from __future__ import annotations

from .core import Block, BlockArgument, IRError, Operation, OpResult, SSAValue


class VerificationError(IRError):
    """Raised when the IR violates a structural or dialect invariant."""


def verify_operation(op: Operation) -> None:
    """Verify ``op`` and all nested operations; raise on the first violation."""
    _verify_single(op)
    for region in op.regions:
        for block in region.blocks:
            _verify_block(block)
            for nested in block.ops:
                verify_operation(nested)


def _verify_single(op: Operation) -> None:
    for i, operand in enumerate(op.operands):
        if not isinstance(operand, SSAValue):
            raise VerificationError(
                f"{op.name}: operand {i} is not an SSA value ({operand!r})"
            )
    for trait in op.traits:
        try:
            trait.verify(op)
        except ValueError as err:
            raise VerificationError(str(err)) from err
    try:
        op.verify_()
    except VerificationError:
        raise
    except (ValueError, TypeError, AssertionError) as err:
        raise VerificationError(f"{op.name}: {err}") from err


def _verify_block(block: Block) -> None:
    """Check intra-block dominance: every use must follow its definition."""
    seen: set[int] = {id(arg) for arg in block.args}
    for op in block.ops:
        for operand in op.operands:
            if isinstance(operand, OpResult):
                defining = operand.op
                if defining.parent is block and id(operand) not in seen:
                    raise VerificationError(
                        f"{op.name}: operand defined later in the same block "
                        f"(use before def of a result of {defining.name})"
                    )
            elif isinstance(operand, BlockArgument):
                # Block arguments of this block or of an enclosing block are
                # always visible; arguments of a sibling block would indicate
                # a malformed program but cannot be reached through normal
                # construction APIs.
                pass
        for result in op.results:
            seen.add(id(result))
