"""Tests of targets, the shared pipeline, executors, and the performance models."""

import numpy as np
import pytest

from repro.core import (
    ExecutionError,
    Target,
    TargetKind,
    compile_stencil_program,
    cpu_target,
    dmp_target,
    fpga_target,
    gpu_target,
    run_distributed,
    run_local,
    scatter_field,
    gather_field,
    smp_target,
)
from repro.machine import (
    ALVEO_U280,
    ARCHER2_NODE,
    CRAY_PSYCLONE,
    DEVITO_NATIVE,
    GNU_PSYCLONE,
    SLINGSHOT,
    V100,
    XDSL_CPU,
    OPENACC_DEVITO,
    XDSL_GPU,
    characterize_module,
    estimate_cpu_node,
    estimate_fpga,
    estimate_gpu,
    estimate_strong_scaling,
)
from repro.transforms.distribute import GridSlicingStrategy
from repro.transforms.stencil import infer_shapes
from tests.conftest import build_jacobi_module, jacobi_reference


class TestTargets:
    def test_target_constructors(self):
        assert cpu_target().kind == TargetKind.CPU_SEQUENTIAL
        assert smp_target(threads=8).threads == 8
        assert dmp_target((2, 2)).ranks == 4
        assert gpu_target().kind == TargetKind.GPU
        assert fpga_target(optimize=False).fpga_optimize is False

    def test_invalid_targets_rejected(self):
        with pytest.raises(ValueError):
            Target(kind="quantum")
        with pytest.raises(ValueError):
            Target(kind=TargetKind.DISTRIBUTED)


class TestPipeline:
    def test_cpu_compilation(self):
        program = compile_stencil_program(build_jacobi_module(), cpu_target())
        assert program.stencil_regions == 1
        assert program.characteristics.applies[0].accesses == 3
        assert "kernel" in program.function_names

    def test_smp_compilation_counts_regions(self):
        program = compile_stencil_program(build_jacobi_module(), smp_target(threads=4, tile_sizes=(4,)))
        assert program.parallel_regions == 1

    def test_gpu_compilation_counts_kernels(self):
        program = compile_stencil_program(build_jacobi_module(), gpu_target())
        assert program.gpu_kernels == 1

    def test_fpga_compilation_reports_kernels(self):
        program = compile_stencil_program(build_jacobi_module(), fpga_target())
        assert len(program.hls_kernels) == 1
        assert program.hls_kernels[0].pipelined

    def test_distributed_compilation(self):
        program = compile_stencil_program(build_jacobi_module(), dmp_target((2,)))
        assert program.distribution is not None
        assert program.distribution.local_domain.core_shape == (4,)

    def test_pipeline_verifies_result(self):
        program = compile_stencil_program(build_jacobi_module(), cpu_target())
        program.module.verify()


class TestExecutors:
    def test_run_local(self, jacobi_initial):
        program = compile_stencil_program(build_jacobi_module(), cpu_target())
        a, b = jacobi_initial.copy(), jacobi_initial.copy()
        result = run_local(program, [a, b, 2])
        assert np.allclose(a, jacobi_reference(jacobi_initial, 2))
        assert result.statistics[0].cells_updated == 16

    def test_run_distributed_matches_reference(self, jacobi_initial):
        for lower in (False, True):
            program = compile_stencil_program(
                build_jacobi_module(), dmp_target((2,), lower_to_library_calls=lower)
            )
            a, b = jacobi_initial.copy(), jacobi_initial.copy()
            result = run_distributed(program, [a, b], [3])
            latest = a if 3 % 2 == 0 else b
            expected = jacobi_reference(jacobi_initial, 3)
            assert np.allclose(latest[1:9], expected[1:9])
            assert result.messages_sent == 2 * 3

    def test_run_distributed_requires_distributed_target(self, jacobi_initial):
        program = compile_stencil_program(build_jacobi_module(), cpu_target())
        with pytest.raises(ExecutionError):
            run_distributed(program, [jacobi_initial.copy()], [1])

    def test_scatter_gather_round_trip(self):
        strategy = GridSlicingStrategy([2, 2])
        global_array = np.arange(100, dtype=float).reshape(10, 10)
        reconstructed = np.zeros_like(global_array)
        reconstructed[:] = global_array
        for rank in range(4):
            local = scatter_field(global_array, strategy, rank, (1, 1), (1, 1), (1, 1))
            assert local.shape == (6, 6)
            gather_field(reconstructed, local, strategy, rank, (1, 1), (1, 1), (1, 1))
        assert np.array_equal(reconstructed, global_array)

    def test_scatter_margin_too_small(self):
        strategy = GridSlicingStrategy([2])
        with pytest.raises(ExecutionError):
            scatter_field(np.zeros(10), strategy, 0, (2,), (2,), (1,))


class TestKernelCharacterisation:
    def test_characteristics_from_ir(self):
        module = build_jacobi_module()
        infer_shapes(module)
        characteristics = characterize_module(module)
        assert characteristics.stencil_regions == 1
        apply_chars = characteristics.applies[0]
        assert apply_chars.accesses == 3
        assert apply_chars.flops_per_cell == 3  # two adds + one multiply
        assert apply_chars.cells_per_step == 8
        assert apply_chars.halo_lower == (1,) and apply_chars.halo_upper == (1,)
        assert apply_chars.bytes_per_cell(4) == 12
        assert characteristics.arithmetic_intensity() > 0


def synthetic_characteristics(ndim=3, space_order=4, cells=1024 ** 3):
    from repro.evaluation.experiments import _devito_characteristics

    shape = (int(round(cells ** (1 / ndim))),) * ndim
    return _devito_characteristics("heat", ndim, space_order, shape)


class TestPerformanceModels:
    def test_cpu_estimate_positive_and_scales(self):
        characteristics = synthetic_characteristics()
        small = estimate_cpu_node(characteristics, 10, ARCHER2_NODE, DEVITO_NATIVE)
        large = estimate_cpu_node(characteristics, 100, ARCHER2_NODE, DEVITO_NATIVE)
        assert small.seconds > 0
        assert large.seconds == pytest.approx(10 * small.seconds, rel=1e-6)
        assert small.gpoints_per_second == pytest.approx(large.gpoints_per_second, rel=1e-6)

    def test_xdsl_vs_devito_crossover(self):
        # 2D low-AI: xDSL wins; 3D high-order: Devito wins (paper fig. 7).
        two_d = synthetic_characteristics(ndim=2, space_order=2, cells=16384 ** 2)
        three_d = synthetic_characteristics(ndim=3, space_order=8, cells=1024 ** 3)
        for characteristics, xdsl_wins in ((two_d, True), (three_d, False)):
            devito = estimate_cpu_node(characteristics, 16, ARCHER2_NODE, DEVITO_NATIVE)
            xdsl = estimate_cpu_node(characteristics, 16, ARCHER2_NODE, XDSL_CPU)
            assert (xdsl.gpoints_per_second > devito.gpoints_per_second) == xdsl_wins

    def test_gnu_slower_than_cray(self):
        characteristics = synthetic_characteristics(ndim=3, space_order=2)
        cray = estimate_cpu_node(characteristics, 4, ARCHER2_NODE, CRAY_PSYCLONE)
        gnu = estimate_cpu_node(characteristics, 4, ARCHER2_NODE, GNU_PSYCLONE)
        assert cray.gpoints_per_second > gnu.gpoints_per_second

    def test_strong_scaling_monotonic_with_decreasing_efficiency(self):
        characteristics = synthetic_characteristics()
        points = estimate_strong_scaling(
            characteristics, (1024, 1024, 1024), 8, (1, 2, 4, 8, 16),
            ARCHER2_NODE, SLINGSHOT, XDSL_CPU, decomposed_dims=3,
        )
        throughputs = [p.gpoints_per_second for p in points]
        assert all(b > a for a, b in zip(throughputs, throughputs[1:]))
        efficiencies = [p.parallel_efficiency for p in points]
        assert efficiencies[0] > efficiencies[-1]

    def test_devito_scales_better_than_xdsl(self):
        characteristics = synthetic_characteristics()
        devito = estimate_strong_scaling(
            characteristics, (1024,) * 3, 8, (128,), ARCHER2_NODE, SLINGSHOT,
            DEVITO_NATIVE, decomposed_dims=3)[0]
        xdsl = estimate_strong_scaling(
            characteristics, (1024,) * 3, 8, (128,), ARCHER2_NODE, SLINGSHOT,
            XDSL_CPU, decomposed_dims=3)[0]
        assert devito.parallel_efficiency > xdsl.parallel_efficiency

    def test_gpu_estimate_openacc_vs_cuda(self):
        characteristics = synthetic_characteristics(ndim=3, space_order=4, cells=512 ** 3)
        openacc = estimate_gpu(characteristics, 8, V100, OPENACC_DEVITO)
        xdsl = estimate_gpu(characteristics, 8, V100, XDSL_GPU)
        assert xdsl.gpoints_per_second > openacc.gpoints_per_second

    def test_fpga_optimized_much_faster_than_initial(self):
        characteristics = synthetic_characteristics(ndim=3, space_order=2, cells=128 ** 3)
        initial = estimate_fpga(characteristics, 1, ALVEO_U280, optimized=False)
        optimized = estimate_fpga(characteristics, 1, ALVEO_U280, optimized=True)
        improvement = optimized.gpoints_per_second / initial.gpoints_per_second
        assert improvement > 50
