"""Runtime value representations used by the IR interpreter.

Memrefs and stencil fields are backed by numpy arrays.  A stencil field also
remembers the logical coordinate of its first element (its lower bound), so
stencil-level interpretation and lowered (memref-level) interpretation agree
on which memory cell a logical index refers to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..ir.types import (
    Float16Type,
    Float32Type,
    Float64Type,
    IndexType,
    IntegerType,
    MemRefType,
)


def numpy_dtype_for(element_type) -> np.dtype:
    """The numpy dtype matching a scalar IR type."""
    if isinstance(element_type, Float64Type):
        return np.dtype(np.float64)
    if isinstance(element_type, Float32Type):
        return np.dtype(np.float32)
    if isinstance(element_type, Float16Type):
        return np.dtype(np.float16)
    if isinstance(element_type, IndexType):
        return np.dtype(np.int64)
    if isinstance(element_type, IntegerType):
        if element_type.width == 1:
            return np.dtype(np.bool_)
        if element_type.width <= 8:
            return np.dtype(np.int8)
        if element_type.width <= 16:
            return np.dtype(np.int16)
        if element_type.width <= 32:
            return np.dtype(np.int32)
        return np.dtype(np.int64)
    raise TypeError(f"no numpy dtype for IR type {element_type}")


class MemRefValue:
    """A mutable, possibly strided view over a numpy buffer."""

    __slots__ = ("array", "origin")

    def __init__(self, array: np.ndarray, origin: Optional[Sequence[int]] = None):
        self.array = array
        #: Logical coordinate of array element (0, 0, ...); used by stencil-level
        #: interpretation.  Memref-level code ignores it.
        self.origin: tuple[int, ...] = (
            tuple(int(o) for o in origin) if origin is not None else (0,) * array.ndim
        )

    @staticmethod
    def allocate(shape: Sequence[int], element_type, origin=None) -> "MemRefValue":
        return MemRefValue(
            np.zeros(tuple(int(s) for s in shape), dtype=numpy_dtype_for(element_type)),
            origin,
        )

    @staticmethod
    def for_type(memref_type: MemRefType) -> "MemRefValue":
        return MemRefValue.allocate(memref_type.shape, memref_type.element_type)

    def view(self, offsets: Sequence[int], sizes: Sequence[int]) -> "MemRefValue":
        """A shared-memory rectangular view (memref.subview semantics)."""
        slices = tuple(
            slice(int(o), int(o) + int(s)) for o, s in zip(offsets, sizes)
        )
        return MemRefValue(self.array[slices], self.origin)

    def logical_index(self, logical: Sequence[int]) -> tuple[int, ...]:
        """Translate a logical coordinate to a memory index using the origin."""
        return tuple(int(l) - int(o) for l, o in zip(logical, self.origin))

    def copy_from(self, other: "MemRefValue") -> None:
        np.copyto(self.array, other.array.reshape(self.array.shape))

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.array.shape)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemRefValue(shape={self.shape}, origin={self.origin})"


@dataclass
class PointerValue:
    """An opaque pointer: an address the interpreter maps back to a buffer."""

    address: int

    def __hash__(self) -> int:
        return hash(self.address)


class RequestHandle:
    """A mutable MPI request slot (filled by isend/irecv, consumed by wait)."""

    __slots__ = ("pending", "null")

    def __init__(self):
        self.pending = None
        self.null = False

    def set_null(self) -> None:
        self.pending = None
        self.null = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "null" if self.null else ("pending" if self.pending else "empty")
        return f"<RequestHandle {state}>"


@dataclass
class DataTypeValue:
    """An MPI datatype handle (name of the scalar type)."""

    name: str
