"""Heat diffusion with the mini-Devito frontend (paper listing 5).

Models 2D heat diffusion symbolically, runs it through both the native
(numpy) baseline and the shared xDSL-style stack, checks they agree, and
prints the modelled single-node ARCHER2 throughput for the paper-sized
problem (fig. 7a).

``--trace timeline`` records the shared-stack run (compile passes, frontend
lowering, per-timestep spans) and writes Chrome trace-event JSON loadable in
Perfetto (ui.perfetto.dev); summarize it with
``python -m repro.obs.report <file>``.

Run with:  python examples/heat_diffusion_devito.py [--trace timeline]
"""

import argparse

import numpy as np

from repro.core import EXECUTION_TRACE, ExecutionConfig, Session
from repro.frontends.devito import Eq, Grid, Operator, TimeFunction, solve
from repro.machine import ARCHER2_NODE, DEVITO_NATIVE, XDSL_CPU, estimate_cpu_node
from repro.evaluation.experiments import _devito_characteristics

SHAPE = (48, 48)
TIMESTEPS = 20


def simulate(backend: str, config=None, session=None) -> np.ndarray:
    grid = Grid(shape=SHAPE, extent=(1.0, 1.0))
    u = TimeFunction(name="u", grid=grid, space_order=2, dtype=np.float64)
    # A hot square in the middle of the plate.
    u.data[0][18:30, 18:30] = 1.0
    u.data[1][:] = u.data[0]

    heat_equation = Eq(u.dt, 0.5 * u.laplace)
    update = Eq(u.forward, solve(heat_equation, u.forward))
    op = Operator([update], backend=backend, config=config, session=session)
    op.apply(time=TIMESTEPS, dt=1e-5)
    return np.array(u.data[Operator.buffer_holding_time(u, TIMESTEPS)])


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace", choices=EXECUTION_TRACE, default="off",
        help="record the shared-stack run and export its timeline",
    )
    parser.add_argument(
        "--trace-output", default="heat_trace.json",
        help="Chrome trace-event JSON path written when --trace is not 'off'",
    )
    args = parser.parse_args()

    native = simulate("native")
    if args.trace == "off":
        shared_stack = simulate("xdsl")
    else:
        config = ExecutionConfig(trace=args.trace)
        with Session(config) as session:
            shared_stack = simulate("xdsl", config=config, session=session)
            session.dump_trace(args.trace_output)
        print(f"trace written to {args.trace_output} "
              "(open in ui.perfetto.dev, or run "
              f"'python -m repro.obs.report {args.trace_output}')")
    error = np.abs(native - shared_stack).max()
    print(f"native Devito vs shared-stack result: max |difference| = {error:.3e}")
    assert error < 1e-10, "the two back-ends must agree"

    print(f"peak temperature after {TIMESTEPS} steps: {shared_stack.max():.4f}")

    # Modelled single-node throughput at the paper's problem size (16384^2).
    characteristics = _devito_characteristics("heat", 2, 2, (16384, 16384))
    devito = estimate_cpu_node(characteristics, 1024, ARCHER2_NODE, DEVITO_NATIVE)
    xdsl = estimate_cpu_node(characteristics, 1024, ARCHER2_NODE, XDSL_CPU)
    print("\nmodelled ARCHER2 single-node throughput (heat2d-5pt, 16384^2):")
    print(f"  Devito : {devito.gpoints_per_second:6.1f} GPts/s")
    print(f"  xDSL   : {xdsl.gpoints_per_second:6.1f} GPts/s "
          f"({xdsl.gpoints_per_second / devito.gpoints_per_second:.2f}x)")


if __name__ == "__main__":
    main()
