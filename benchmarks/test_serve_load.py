"""Load generator for the serving layer (`repro.serve`).

Two measurements, both at 8 concurrent closed-loop clients:

* ``test_serve_load_gate`` — always runs.  Drives a batched server with
  thread-world jobs, reports p50/p99 client latency and aggregate
  throughput, and verifies the served results stay bit-identical to the
  same sequence of runs on a standalone Session.  Its rows feed the
  ``serve-throughput`` floor and the ``serve-p50-ms`` / ``serve-p99-ms``
  ceilings in ``benchmarks/baseline.json``.

* ``test_serve_batched_speedup_smoke`` — the batched-dispatch gate.
  Process-world single-rank jobs on a GIL-bound kernel: a ``max_batch=1``
  server must run them one SPMD round at a time, while the batched server
  packs eight at once across the partitioned worker pool, so the measured
  throughput ratio is the wall-clock value of batched dispatch ("keep the
  worker pool saturated").  Like the fig. 8 strong-scaling smokes it is
  skipped where it cannot mean anything (fewer than 4 usable cores, no
  process runtime); where it runs, the ``serve-batched-speedup`` floor of
  1.5x is enforced both here and by the CI gate.

``bench_regression.py --suite serve`` collects the rows through the
``BENCH_SERVE_JSON`` environment variable (a JSON list both tests append
to) and one loaded-run timeline trace through ``BENCH_SERVE_TRACE``.
"""

import json
import os
import threading
import time

import numpy as np
import pytest

from repro.core import (
    ExecutionConfig,
    Session,
    compile_stencil_program,
    dmp_target,
)
from repro.runtime import processes_available, shutdown_worker_pool
from repro.serve import Server
from repro.workloads import heat_diffusion

CLIENTS = 8


@pytest.fixture(scope="module", autouse=True)
def _pool_teardown():
    yield
    shutdown_worker_pool()


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _heat_program(rank_grid, shape=(16, 16)):
    workload = heat_diffusion(shape, space_order=2, dtype=np.float64)
    module = workload.operator(backend="xdsl").stencil_module(dt=workload.dt)
    return compile_stencil_program(module, dmp_target(rank_grid))


def _heat_fields(shape=(18, 18)):
    u0 = np.zeros(shape)
    u0[shape[0] // 2 - 1: shape[0] // 2 + 1,
       shape[1] // 2 - 1: shape[1] // 2 + 1] = 1.0
    return [u0, u0.copy()]


def _append_rows(rows: list) -> None:
    """Append measured rows to the BENCH_SERVE_JSON artifact (if requested)."""
    path = os.environ.get("BENCH_SERVE_JSON")
    if not path:
        return
    existing = []
    if os.path.exists(path) and os.path.getsize(path):
        with open(path) as handle:
            existing = json.load(handle)
    existing.extend(rows)
    with open(path, "w") as handle:
        json.dump(existing, handle, indent=2)


def _drive_clients(server, program, jobs_per_client, steps, fieldsets):
    """Closed-loop load: each client submits, waits, resubmits.

    Returns (elapsed seconds, per-job client latencies) for the whole
    CLIENTS x jobs_per_client burst; ``fieldsets[i]`` is client ``i``'s
    private field pair, updated in place run after run exactly as repeated
    ``plan.run`` calls would.
    """
    latencies: list = []
    lock = threading.Lock()
    barrier = threading.Barrier(CLIENTS + 1)
    errors: list = []

    def client(fields):
        try:
            barrier.wait(timeout=60.0)
            for _ in range(jobs_per_client):
                began = time.perf_counter()
                server.submit(program, fields, [steps]).result(timeout=300.0)
                took = time.perf_counter() - began
                with lock:
                    latencies.append(took)
        except BaseException as error:  # noqa: BLE001 - reported to the test
            errors.append(error)

    threads = [
        threading.Thread(target=client, args=(fieldsets[i],))
        for i in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60.0)
    started = time.perf_counter()
    for thread in threads:
        thread.join(timeout=600.0)
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    assert len(latencies) == CLIENTS * jobs_per_client
    return elapsed, latencies


def _percentile_ms(latencies, fraction):
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, int(len(ordered) * fraction))
    return ordered[index] * 1e3


def test_serve_load_gate():
    """p50/p99 latency + throughput of a batched server under 8 clients."""
    jobs_per_client = 4
    steps = 2
    program = _heat_program((2, 1))
    config = ExecutionConfig(runtime="threads")

    # The standalone reference: each client applies `jobs_per_client` runs to
    # its own fields, so the reference applies them the same number of times.
    reference = _heat_fields()
    with Session(config) as session:
        plan = session.plan(program)
        for _ in range(jobs_per_client):
            plan.run(reference, [steps])

    with Server(config, max_batch=CLIENTS, max_pending=64) as server:
        # Warm the plan/megakernel caches outside the timed window.
        server.submit(program, _heat_fields(), [steps]).result(timeout=120.0)
        fieldsets = [_heat_fields() for _ in range(CLIENTS)]
        elapsed, latencies = _drive_clients(
            server, program, jobs_per_client, steps, fieldsets
        )
        throughput = CLIENTS * jobs_per_client / elapsed
        p50 = _percentile_ms(latencies, 0.50)
        p99 = _percentile_ms(latencies, 0.99)
        snapshot = server.metrics.snapshot()

        # Results under concurrent batched load stay bit-identical to the
        # standalone Session sequence.
        for fields in fieldsets:
            assert np.array_equal(fields[0], reference[0])
            assert np.array_equal(fields[1], reference[1])
        assert snapshot.get("serve.batches", 0) >= 1
        assert snapshot.get("serve.jobs_completed") == CLIENTS * jobs_per_client + 1
        assert snapshot.get("serve.queue_depth_peak", 0) >= 1

        # One loaded-run timeline trace for the CI artifact (outside the
        # timed window; the traced config is its own plan-cache entry).
        trace_path = os.environ.get("BENCH_SERVE_TRACE")
        if trace_path:
            traced = [
                server.submit(
                    program, _heat_fields(), [steps], trace="timeline"
                )
                for _ in range(4)
            ]
            for handle in traced:
                handle.result(timeout=120.0)
            server.session.dump_trace(trace_path)

    print(
        f"\nserve load: {CLIENTS} clients x {jobs_per_client} jobs, "
        f"{throughput:.0f} jobs/s, p50 {p50:.2f} ms, p99 {p99:.2f} ms, "
        f"{snapshot.get('serve.batches')} batches "
        f"(occupancy peak {snapshot.get('serve.batch_occupancy_peak')})"
    )
    _append_rows([
        {
            "kernel": "serve-throughput",
            "value": throughput,
            "unit": "jobs/s",
            "clients": CLIENTS,
            "jobs_per_client": jobs_per_client,
            "runtime": "threads",
            "max_batch": CLIENTS,
        },
        {"kernel": "serve-p50-ms", "value": p50, "unit": "ms"},
        {"kernel": "serve-p99-ms", "value": p99, "unit": "ms"},
    ])

    # Floors/ceilings are enforced from baseline.json by bench_regression.py;
    # in-test bounds only catch gross breakage on very noisy runners.
    assert throughput >= 25.0, f"served only {throughput:.1f} jobs/s"
    assert p99 <= 1000.0, f"p99 latency {p99:.1f} ms"


def test_serve_batched_speedup_smoke():
    """Batched dispatch >= 1.5x serialized submission at 8 clients.

    Single-rank process-world jobs on the GIL-bound interpreter backend: the
    serialized server runs 16 SPMD rounds one after another, the batched
    server packs 8 jobs per round across the partitioned worker pool, so the
    workers actually run concurrently.  The same skip policy as the fig. 8
    strong-scaling smokes: meaningless below 4 usable cores.
    """
    if _usable_cpus() < 4:
        pytest.skip("needs >= 4 usable CPU cores for a meaningful comparison")
    if not processes_available():
        pytest.skip("process runtime unavailable on this platform")

    jobs_per_client = 2
    steps = 2
    program = _heat_program((1, 1), shape=(24, 24))
    config = ExecutionConfig(
        runtime="processes", backend="interpreter", timeout=300.0
    )

    def run_load(max_batch: int) -> float:
        with Server(config, max_batch=max_batch, max_pending=64) as server:
            # Warm a full-width burst: grows the pool to the batch's rank
            # count and ships the program before the timed window.
            warm = [
                server.submit(program, _heat_fields((26, 26)), [steps])
                for _ in range(max_batch)
            ]
            for handle in warm:
                handle.result(timeout=300.0)
            fieldsets = [_heat_fields((26, 26)) for _ in range(CLIENTS)]
            elapsed, _ = _drive_clients(
                server, program, jobs_per_client, steps, fieldsets
            )
        return CLIENTS * jobs_per_client / elapsed

    try:
        serialized = run_load(max_batch=1)
        batched = run_load(max_batch=CLIENTS)
        speedup = batched / serialized
        print(
            f"\nserve speedup smoke: serialized {serialized:.1f} jobs/s, "
            f"batched {batched:.1f} jobs/s, speedup {speedup:.2f}x"
        )
        _append_rows([{
            "kernel": "serve-batched-speedup",
            "speedup": speedup,
            "serialized_jobs_per_s": serialized,
            "batched_jobs_per_s": batched,
            "clients": CLIENTS,
            "jobs_per_client": jobs_per_client,
            "runtime": "processes",
            "backend": "interpreter",
        }])
        assert speedup >= 1.5, (
            f"expected batched dispatch to serve >= 1.5x the serialized "
            f"throughput at {CLIENTS} clients, got {speedup:.2f}x"
        )
    finally:
        shutdown_worker_pool()
