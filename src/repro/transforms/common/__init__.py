"""General-purpose optimisation passes shared by every lowering pipeline."""

from .canonicalize import CanonicalizePass, canonicalize
from .constant_folding import ConstantFoldingPass, fold_constants
from .cse import CommonSubexpressionEliminationPass, eliminate_common_subexpressions
from .dce import DeadCodeEliminationPass, eliminate_dead_code
from .licm import LoopInvariantCodeMotionPass, hoist_loop_invariant_code

__all__ = [
    "CanonicalizePass", "canonicalize",
    "ConstantFoldingPass", "fold_constants",
    "CommonSubexpressionEliminationPass", "eliminate_common_subexpressions",
    "DeadCodeEliminationPass", "eliminate_dead_code",
    "LoopInvariantCodeMotionPass", "hoist_loop_invariant_code",
]
