"""A miniature PSyclone: Fortran kernels -> PSy-IR -> the shared stencil stack."""

from .backend import (
    ExtractedStencil,
    PsycloneXDSLBackend,
    StencilExtractionError,
    extract_stencils,
)
from .fortran_parser import FortranParseError, parse_fortran
from .psyir import (
    ArrayReference,
    Assignment,
    BinaryOperation,
    Comparison,
    IndexExpression,
    Literal,
    Loop,
    Merge,
    Reference,
    Schedule,
    UnaryOperation,
    reference_execute,
)

__all__ = [
    "parse_fortran", "FortranParseError",
    "Schedule", "Loop", "Assignment", "ArrayReference", "IndexExpression",
    "BinaryOperation", "UnaryOperation", "Literal", "Reference",
    "Comparison", "Merge",
    "reference_execute",
    "extract_stencils", "ExtractedStencil", "StencilExtractionError",
    "PsycloneXDSLBackend",
]
