"""Equivalence of the execution backends: interpreter vs vectorized NumPy.

Every compiled program must produce *bit-identical* field contents and
identical ``cells_updated`` / ``halo_swaps`` statistics regardless of which
backend executes it; the vectorized backend is purely a performance feature.
"""

import numpy as np
import pytest

from repro.core import (
    ExecutionError,
    compile_stencil_program,
    cpu_target,
    dmp_target,
    fpga_target,
    gather_field,
    gpu_target,
    run_distributed,
    run_local,
    scatter_field,
    smp_target,
)
from repro.dialects import arith, builtin, func, memref, scf
from repro.frontends.psyclone import reference_execute
from repro.interp import (
    CompiledNest,
    Interpreter,
    VectorizeFallback,
    compile_kernel,
    compile_loop_nest,
    compile_loop_nest_or_fallback,
)
from repro.ir import Builder, FunctionType, MemRefType, f64, index
from repro.transforms.distribute import GridSlicingStrategy
from repro.workloads import acoustic_wave, heat_diffusion, masked_tracer_advection
from tests.conftest import build_jacobi_module, jacobi_reference


def _jacobi_inputs(n, halo, seed):
    rng = np.random.default_rng(seed)
    data = np.zeros(n + 2 * halo)
    data[halo : halo + n] = rng.standard_normal(n)
    return data


def _run_both(program, make_args, steps, function=None):
    """Run one program through both backends; return both argument sets."""
    args_interp = make_args()
    args_vector = make_args()
    result_interp = run_local(
        program, [*args_interp, steps], function=function, backend="interpreter"
    )
    result_vector = run_local(
        program, [*args_vector, steps], function=function, backend="auto"
    )
    stats_interp, stats_vector = result_interp.statistics[0], result_vector.statistics[0]
    assert stats_interp.cells_updated == stats_vector.cells_updated
    assert stats_interp.kernel_launches == stats_vector.kernel_launches
    return args_interp, args_vector


class TestSingleRankEquivalence:
    @pytest.mark.parametrize(
        "target",
        [
            cpu_target(),
            cpu_target(tile_sizes=(3,)),
            smp_target(threads=4),
            gpu_target(),
            fpga_target(),
        ],
        ids=["cpu", "cpu-tiled", "smp", "gpu", "fpga"],
    )
    def test_jacobi_bit_identical_across_targets(self, target):
        program = compile_stencil_program(build_jacobi_module(), target)
        initial = _jacobi_inputs(8, 1, seed=11)
        interp_args, vector_args = _run_both(
            program, lambda: [initial.copy(), initial.copy()], steps=3
        )
        for a, b in zip(interp_args, vector_args):
            assert np.array_equal(a, b)
        latest = interp_args[0] if 3 % 2 == 0 else interp_args[1]
        assert np.allclose(latest, jacobi_reference(initial, 3))

    @pytest.mark.parametrize("seed", range(5))
    def test_jacobi_property_random_configurations(self, seed):
        """Property-style sweep: random sizes/halos/coefficients/steps."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 16))
        halo = int(rng.integers(1, 3))
        steps = int(rng.integers(0, 5))
        coefficient = float(rng.uniform(0.1, 0.9))
        program = compile_stencil_program(
            build_jacobi_module(n, halo, coefficient), cpu_target()
        )
        initial = _jacobi_inputs(n, halo, seed=seed + 100)
        interp_args, vector_args = _run_both(
            program, lambda: [initial.copy(), initial.copy()], steps=steps
        )
        for a, b in zip(interp_args, vector_args):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("space_order", [2, 4])
    def test_devito_heat_bit_identical(self, space_order):
        workload = heat_diffusion((12, 12), space_order=space_order, dtype=np.float64)
        workload.initialise(seed=5)
        operator = workload.operator(backend="xdsl")
        program = operator.compile(workload.dt)
        reference = operator._field_arguments()
        _assert_bitwise_backend_match(program, reference, steps=3)

    def test_devito_wave_inplace_buffer_bit_identical(self):
        # The wave update stores into the buffer it also reads (t-1) at the
        # same offset: the pointwise-aliasing fast path must stay exact.
        workload = acoustic_wave((8, 8, 8), space_order=2, dtype=np.float64)
        workload.initialise(seed=6)
        operator = workload.operator(backend="xdsl")
        program = operator.compile(workload.dt)
        reference = operator._field_arguments()
        _assert_bitwise_backend_match(program, reference, steps=2)


def _assert_bitwise_backend_match(program, field_arrays, steps):
    interp_args = [a.copy() for a in field_arrays]
    vector_args = [a.copy() for a in field_arrays]
    run_local(program, [*interp_args, steps], function="kernel", backend="interpreter")
    run_local(program, [*vector_args, steps], function="kernel", backend="vectorized")
    for a, b in zip(interp_args, vector_args):
        assert np.array_equal(a, b)


class TestDistributedEquivalence:
    @pytest.mark.parametrize("library_calls", [False, True], ids=["dmp", "mpi"])
    def test_distributed_jacobi_bit_identical(self, library_calls):
        initial = _jacobi_inputs(8, 1, seed=21)
        results = {}
        for backend in ("interpreter", "vectorized"):
            program = compile_stencil_program(
                build_jacobi_module(),
                dmp_target((2,), lower_to_library_calls=library_calls),
            )
            a, b = initial.copy(), initial.copy()
            result = run_distributed(program, [a, b], [3], backend=backend)
            results[backend] = (a, b, result)
        a_i, b_i, r_i = results["interpreter"]
        a_v, b_v, r_v = results["vectorized"]
        assert np.array_equal(a_i, a_v)
        assert np.array_equal(b_i, b_v)
        assert r_i.total_cells_updated == r_v.total_cells_updated
        assert r_i.total_halo_swaps == r_v.total_halo_swaps
        assert r_i.messages_sent == r_v.messages_sent


class TestRuntimeFallback:
    def _inplace_shifted_module(self):
        """u[i] = u[i] + u[i+1] over one buffer: per-cell order is observable,
        so the vectorized nest must refuse it at run time."""
        kernel = func.FuncOp("kernel", FunctionType([MemRefType([10], f64)], []))
        u = kernel.args[0]
        b = Builder.at_end(kernel.body.block)
        zero = b.insert(arith.ConstantOp.from_int(0)).result
        one = b.insert(arith.ConstantOp.from_int(1)).result
        eight = b.insert(arith.ConstantOp.from_int(8)).result
        loop = scf.ParallelOp([zero], [eight], [one])
        inner = Builder.at_end(loop.body.block)
        iv = loop.induction_variables[0]
        here = inner.insert(memref.LoadOp(u, [iv])).result
        shifted_index = inner.insert(arith.AddiOp(iv, one)).result
        there = inner.insert(memref.LoadOp(u, [shifted_index])).result
        total = inner.insert(arith.AddfOp(here, there)).result
        inner.insert(memref.StoreOp(total, u, [iv]))
        inner.insert(scf.YieldOp([]))
        b.insert(loop)
        b.insert(func.ReturnOp([]))
        return builtin.ModuleOp([kernel])

    def test_aliased_shifted_store_falls_back_bit_identical(self):
        module = self._inplace_shifted_module()
        nest = compile_loop_nest(next(op for op in module.walk() if isinstance(op, scf.ParallelOp)))
        assert nest is not None  # statically it looks vectorizable...
        kernel = compile_kernel(module, "kernel")
        data = np.arange(10, dtype=np.float64)
        expected = data.copy()
        Interpreter(module).call("kernel", expected)
        observed = data.copy()
        Interpreter(module, kernel=kernel).call("kernel", observed)
        # ...but the run-time aliasing check must bounce it to the tree
        # walker, preserving the sequential prefix-sum-like semantics.
        assert np.array_equal(observed, expected)

    def test_empty_iteration_space(self):
        program = compile_stencil_program(build_jacobi_module(), cpu_target())
        initial = _jacobi_inputs(8, 1, seed=31)
        interp_args, vector_args = _run_both(
            program, lambda: [initial.copy(), initial.copy()], steps=0
        )
        for a, b in zip(interp_args, vector_args):
            assert np.array_equal(a, b)


class TestNestCompiler:
    def test_loop_carried_for_is_rejected(self):
        module = build_jacobi_module()
        time_loop = next(op for op in module.walk() if isinstance(op, scf.ForOp))
        assert compile_loop_nest(time_loop) is None

    def test_plain_for_nest_is_accepted(self):
        kernel = func.FuncOp("fill", FunctionType([MemRefType([6], f64)], []))
        b = Builder.at_end(kernel.body.block)
        zero = b.insert(arith.ConstantOp.from_int(0)).result
        one = b.insert(arith.ConstantOp.from_int(1)).result
        six = b.insert(arith.ConstantOp.from_int(6)).result
        loop = scf.ForOp(zero, six, one)
        inner = Builder.at_end(loop.body.block)
        value = inner.insert(arith.ConstantOp.from_float(2.5, f64)).result
        inner.insert(memref.StoreOp(value, kernel.args[0], [loop.induction_variable]))
        inner.insert(scf.YieldOp([]))
        b.insert(loop)
        b.insert(func.ReturnOp([]))
        module = builtin.ModuleOp([kernel])
        nest = compile_loop_nest(loop)
        assert isinstance(nest, CompiledNest)
        data = np.zeros(6)
        Interpreter(module, kernel=compile_kernel(module, "fill")).call("fill", data)
        assert np.array_equal(data, np.full(6, 2.5))

    def test_data_dependent_control_flow_is_rejected(self):
        kernel = func.FuncOp("kernel", FunctionType([MemRefType([4], f64)], []))
        b = Builder.at_end(kernel.body.block)
        zero = b.insert(arith.ConstantOp.from_int(0)).result
        one = b.insert(arith.ConstantOp.from_int(1)).result
        four = b.insert(arith.ConstantOp.from_int(4)).result
        loop = scf.ParallelOp([zero], [four], [one])
        inner = Builder.at_end(loop.body.block)
        loaded = inner.insert(memref.LoadOp(kernel.args[0], [loop.induction_variables[0]])).result
        threshold = inner.insert(arith.ConstantOp.from_float(0.0, f64)).result
        cond = inner.insert(arith.CmpfOp("ogt", loaded, threshold)).result
        if_op = scf.IfOp(cond)
        Builder.at_end(if_op.then_region.block).insert(scf.YieldOp([]))
        inner.insert(if_op)
        inner.insert(scf.YieldOp([]))
        b.insert(loop)
        b.insert(func.ReturnOp([]))
        assert compile_loop_nest(loop) is None

    def test_kernel_cache_hit(self):
        program = compile_stencil_program(build_jacobi_module(), cpu_target())
        first = program.compiled_kernel("kernel")
        assert program.compiled_kernel("kernel") is first
        assert first.nest_count >= 1


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        program = compile_stencil_program(build_jacobi_module(), cpu_target())
        with pytest.raises(ExecutionError):
            run_local(program, [np.zeros(10), np.zeros(10), 1], backend="jit")

    def test_vectorized_requires_a_vectorizable_nest(self):
        kernel = func.FuncOp("kernel", FunctionType([], []))
        Builder.at_end(kernel.body.block).insert(func.ReturnOp([]))
        module = builtin.ModuleOp([kernel])
        # Build the CompiledProgram by hand: the full pipeline has nothing to
        # lower in a module without stencil ops.
        from repro.core.pipeline import CompiledProgram
        from repro.machine.kernel_model import characterize_module

        program = CompiledProgram(
            module=module,
            target=cpu_target(),
            characteristics=characterize_module(module),
            stencil_regions=0,
        )
        with pytest.raises(ExecutionError):
            run_local(program, [], backend="vectorized")

    def test_default_function_requires_unambiguous_name(self):
        from repro.core.pipeline import CompiledProgram
        from repro.machine.kernel_model import characterize_module

        ops = []
        for name in ("zeta", "alpha"):
            fn = func.FuncOp(name, FunctionType([], []))
            Builder.at_end(fn.body.block).insert(func.ReturnOp([]))
            ops.append(fn)
        module = builtin.ModuleOp(ops)
        program = CompiledProgram(
            module=module,
            target=cpu_target(),
            characteristics=characterize_module(module),
            stencil_regions=0,
        )
        with pytest.raises(ExecutionError, match="alpha.*zeta"):
            run_local(program, [])


class TestAsymmetricHaloScatterGather:
    def test_round_trip_with_asymmetric_halos(self):
        strategy = GridSlicingStrategy([2, 2])
        halo_lower, halo_upper = (2, 1), (1, 2)
        margin = (2, 2)
        core = (8, 6)
        global_array = np.arange(
            (core[0] + 2 * margin[0]) * (core[1] + 2 * margin[1]), dtype=float
        ).reshape(core[0] + 2 * margin[0], core[1] + 2 * margin[1])
        reconstructed = np.zeros_like(global_array)
        reconstructed[:] = global_array
        locals_ = []
        for rank in range(4):
            local = scatter_field(
                global_array, strategy, rank, halo_lower, halo_upper, margin
            )
            start, end = strategy.global_slab(core, rank)
            expected_shape = tuple(
                (e - s) + lo + hi
                for s, e, lo, hi in zip(start, end, halo_lower, halo_upper)
            )
            assert local.shape == expected_shape
            locals_.append(local)
        for rank, local in enumerate(locals_):
            gather_field(
                reconstructed, local, strategy, rank, halo_lower, halo_upper, margin
            )
        assert np.array_equal(reconstructed, global_array)


class TestReviewRegressions:
    """Regression tests for defects found in review of the vectorized backend."""

    def test_parallel_with_inner_for_counts_parallel_points_only(self):
        # scf.parallel(i: 0..4) { scf.for(j: 0..8) { b[i*?]: store } }: the
        # tree walker counts cells_updated once per *parallel* point (4), so
        # the flattened vectorized nest must not count 4*8.
        kernel = func.FuncOp("kernel", FunctionType([MemRefType([4, 8], f64)], []))
        b = Builder.at_end(kernel.body.block)
        zero = b.insert(arith.ConstantOp.from_int(0)).result
        one = b.insert(arith.ConstantOp.from_int(1)).result
        four = b.insert(arith.ConstantOp.from_int(4)).result
        eight = b.insert(arith.ConstantOp.from_int(8)).result
        loop = scf.ParallelOp([zero], [four], [one])
        outer = Builder.at_end(loop.body.block)
        inner_for = scf.ForOp(zero, eight, one)
        outer.insert(inner_for)
        outer.insert(scf.YieldOp([]))
        inner = Builder.at_end(inner_for.body.block)
        value = inner.insert(arith.ConstantOp.from_float(1.0, f64)).result
        inner.insert(
            memref.StoreOp(
                value, kernel.args[0],
                [loop.induction_variables[0], inner_for.induction_variable],
            )
        )
        inner.insert(scf.YieldOp([]))
        b.insert(loop)
        b.insert(func.ReturnOp([]))
        module = builtin.ModuleOp([kernel])
        kernel_compiled = compile_kernel(module, "kernel")
        assert kernel_compiled.nest_for(loop) is not None  # flattened 2D nest

        data_interp, data_vector = np.zeros((4, 8)), np.zeros((4, 8))
        interp = Interpreter(module)
        interp.call("kernel", data_interp)
        vector = Interpreter(module, kernel=kernel_compiled)
        vector.call("kernel", data_vector)
        assert np.array_equal(data_interp, data_vector)
        assert vector.stats.cells_updated == interp.stats.cells_updated == 4

    def test_multi_store_reads_pre_update_values(self):
        # v = a[i]; a[i] = v + 1; b[i] = v  — the second store must commit the
        # *pre-update* v, even though the first store mutates the memory the
        # loaded view points at.
        kernel = func.FuncOp(
            "kernel",
            FunctionType([MemRefType([6], f64), MemRefType([6], f64)], []),
        )
        a_arg, b_arg = kernel.args
        b = Builder.at_end(kernel.body.block)
        zero = b.insert(arith.ConstantOp.from_int(0)).result
        one = b.insert(arith.ConstantOp.from_int(1)).result
        six = b.insert(arith.ConstantOp.from_int(6)).result
        loop = scf.ParallelOp([zero], [six], [one])
        inner = Builder.at_end(loop.body.block)
        iv = loop.induction_variables[0]
        loaded = inner.insert(memref.LoadOp(a_arg, [iv])).result
        one_f = inner.insert(arith.ConstantOp.from_float(1.0, f64)).result
        bumped = inner.insert(arith.AddfOp(loaded, one_f)).result
        inner.insert(memref.StoreOp(bumped, a_arg, [iv]))
        inner.insert(memref.StoreOp(loaded, b_arg, [iv]))
        inner.insert(scf.YieldOp([]))
        b.insert(loop)
        b.insert(func.ReturnOp([]))
        module = builtin.ModuleOp([kernel])

        initial = np.arange(6, dtype=np.float64)
        a_i, b_i = initial.copy(), np.zeros(6)
        Interpreter(module).call("kernel", a_i, b_i)
        a_v, b_v = initial.copy(), np.zeros(6)
        Interpreter(module, kernel=compile_kernel(module, "kernel")).call(
            "kernel", a_v, b_v
        )
        assert np.array_equal(a_i, a_v)
        assert np.array_equal(b_i, b_v)
        assert np.array_equal(b_v, initial)  # the pre-update values

    def test_store_with_constant_axis_commits_correct_shape(self):
        # 1-D nest storing into column 3 of a 2-D memref: the store region has
        # a size-1 axis the nest does not iterate, which the commit must shape
        # correctly (and not die on broadcasting after other stores applied).
        kernel = func.FuncOp(
            "kernel",
            FunctionType([MemRefType([5], f64), MemRefType([5, 8], f64)], []),
        )
        src, dst = kernel.args
        b = Builder.at_end(kernel.body.block)
        zero = b.insert(arith.ConstantOp.from_int(0)).result
        one = b.insert(arith.ConstantOp.from_int(1)).result
        five = b.insert(arith.ConstantOp.from_int(5)).result
        three = b.insert(arith.ConstantOp.from_int(3)).result
        loop = scf.ParallelOp([zero], [five], [one])
        inner = Builder.at_end(loop.body.block)
        iv = loop.induction_variables[0]
        loaded = inner.insert(memref.LoadOp(src, [iv])).result
        inner.insert(memref.StoreOp(loaded, dst, [iv, three]))
        inner.insert(scf.YieldOp([]))
        b.insert(loop)
        b.insert(func.ReturnOp([]))
        module = builtin.ModuleOp([kernel])

        source = np.arange(5, dtype=np.float64)
        dst_i, dst_v = np.zeros((5, 8)), np.zeros((5, 8))
        Interpreter(module).call("kernel", source.copy(), dst_i)
        Interpreter(module, kernel=compile_kernel(module, "kernel")).call(
            "kernel", source.copy(), dst_v
        )
        assert np.array_equal(dst_i, dst_v)
        assert np.array_equal(dst_v[:, 3], source)
        assert dst_v.sum() == source.sum()  # nothing else written

    def test_affine_data_value_with_free_term(self):
        # store[i] = sitofp(i + n) where n is a scalar function argument: the
        # materialised affine must include the nest-external ("free") term.
        kernel = func.FuncOp(
            "kernel", FunctionType([MemRefType([4], f64), index], [])
        )
        out, n_arg = kernel.args
        b = Builder.at_end(kernel.body.block)
        zero = b.insert(arith.ConstantOp.from_int(0)).result
        one = b.insert(arith.ConstantOp.from_int(1)).result
        four = b.insert(arith.ConstantOp.from_int(4)).result
        loop = scf.ParallelOp([zero], [four], [one])
        inner = Builder.at_end(loop.body.block)
        iv = loop.induction_variables[0]
        shifted = inner.insert(arith.AddiOp(iv, n_arg)).result
        as_float = inner.insert(arith.SIToFPOp(shifted, f64)).result
        inner.insert(memref.StoreOp(as_float, out, [iv]))
        inner.insert(scf.YieldOp([]))
        b.insert(loop)
        b.insert(func.ReturnOp([]))
        module = builtin.ModuleOp([kernel])
        compiled = compile_kernel(module, "kernel")
        assert compiled.nest_count == 1

        data_interp, data_vector = np.zeros(4), np.zeros(4)
        Interpreter(module).call("kernel", data_interp, 10)
        Interpreter(module, kernel=compiled).call("kernel", data_vector, 10)
        assert np.array_equal(data_interp, [10.0, 11.0, 12.0, 13.0])
        assert np.array_equal(data_interp, data_vector)


# ---------------------------------------------------------------------------
# PR 3: tiled, reducing and masked nests
# ---------------------------------------------------------------------------

class TestTiledNestVectorization:
    """min-clamped tile loop pairs collapse into whole-array slices."""

    def test_tiled_jacobi_nest_is_compiled_not_tree_walked(self):
        program = compile_stencil_program(
            build_jacobi_module(), cpu_target(tile_sizes=(3,))
        )
        roots = [
            op for op in program.module.walk()
            if op.name in ("scf.parallel", "omp.wsloop")
        ]
        assert roots, "tiled lowering should produce a parallel root"
        kernel = program.compiled_kernel("kernel")
        for root in roots:
            nest = kernel.nest_for(root)
            assert nest is not None, kernel.fallback_reasons
            # Collapsed to cell granularity, counted at tile granularity.
            assert nest.bounds != nest.count_bounds

    @pytest.mark.parametrize("tile", [(3,), (4,), (8,), (16,)])
    def test_tiled_jacobi_bit_identical_any_tile_size(self, tile):
        # Tile sizes that divide the extent, exceed it, and leave remainders.
        program = compile_stencil_program(build_jacobi_module(), cpu_target(tile_sizes=tile))
        initial = _jacobi_inputs(8, 1, seed=41)
        interp_args, vector_args = _run_both(
            program, lambda: [initial.copy(), initial.copy()], steps=3
        )
        for a, b in zip(interp_args, vector_args):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize(
        "target",
        [cpu_target(tile_sizes=(16, 16)), smp_target(threads=4, tile_sizes=(16, 16))],
        ids=["cpu-tiled", "smp-tiled"],
    )
    def test_tiled_devito_heat_bit_identical_and_vectorized(self, target):
        workload = heat_diffusion((64, 64), space_order=4, dtype=np.float64)
        workload.initialise(seed=13)
        operator = workload.operator(backend="xdsl")
        module = operator.stencil_module(dt=workload.dt)
        program = compile_stencil_program(module, target)
        kernel = program.compiled_kernel("kernel")
        assert kernel.nest_count >= 1, kernel.fallback_reasons
        fields = operator._field_arguments()
        interp_args = [a.copy() for a in fields]
        vector_args = [a.copy() for a in fields]
        r_i = run_local(
            program, [*interp_args, 3], function="kernel", backend="interpreter"
        )
        r_v = run_local(
            program, [*vector_args, 3], function="kernel", backend="vectorized"
        )
        for a, b in zip(interp_args, vector_args):
            assert np.array_equal(a, b)
        # cells_updated counts tile origins in both backends.
        assert (
            r_i.statistics[0].cells_updated == r_v.statistics[0].cells_updated
        )


from tests.conftest import build_reduce_module as _build_reduce_module


class TestReduceNestVectorization:
    """scf.reduce nests compile to NumPy reductions with the tree walker's fold."""

    @pytest.mark.parametrize(
        "combine_op, init",
        [
            (arith.AddfOp, 0.0),
            (arith.MulfOp, 1.0),
            (arith.MinimumfOp, float("inf")),
            (arith.MaximumfOp, float("-inf")),
        ],
        ids=["sum", "product", "min", "max"],
    )
    def test_reduce_bit_identical(self, combine_op, init):
        module = _build_reduce_module(7, combine_op, init)
        module.verify()
        rng = np.random.default_rng(3)
        data = rng.standard_normal((7, 7))
        out_interp, out_vector = np.zeros(1), np.zeros(1)
        interp = Interpreter(module)
        interp.call("kernel", data.copy(), out_interp)
        kernel = compile_kernel(module, "kernel")
        assert kernel.nest_count == 1, kernel.fallback_reasons
        vector = Interpreter(module, kernel=kernel)
        vector.call("kernel", data.copy(), out_vector)
        # Bit-identical: the vectorized fold replays the sequential order
        # (ufunc.accumulate), not NumPy's pairwise summation.
        assert out_interp[0] == out_vector[0]
        assert interp.stats.cells_updated == vector.stats.cells_updated == 49

    def test_reduce_with_empty_iteration_space_returns_init(self):
        module = _build_reduce_module(0, arith.AddfOp, 41.5)
        out_interp, out_vector = np.zeros(1), np.zeros(1)
        Interpreter(module).call("kernel", np.zeros((0, 0)), out_interp)
        Interpreter(module, kernel=compile_kernel(module, "kernel")).call(
            "kernel", np.zeros((0, 0)), out_vector
        )
        assert out_interp[0] == out_vector[0] == 41.5

    def test_unsupported_combiner_reports_reason_and_tree_walks(self):
        module = _build_reduce_module(4, arith.SubfOp, 0.0)
        loop = next(op for op in module.walk() if isinstance(op, scf.ParallelOp))
        fallback = compile_loop_nest_or_fallback(loop)
        assert isinstance(fallback, VectorizeFallback)
        assert "arith.subf" in fallback.reason and "not supported" in fallback.reason
        # The tree walker still executes it (generic combiner region).
        data = np.arange(16, dtype=np.float64).reshape(4, 4)
        out = np.zeros(1)
        Interpreter(module).call("kernel", data, out)
        expected = 0.0
        for value in (data ** 2).ravel():
            expected = expected - value
        assert out[0] == expected


class TestMaskedTracerEquivalence:
    """merge()-masked PsyClone tracer kernels vectorize end-to-end."""

    def test_masked_tracer_bit_identical_and_fully_vectorized(self):
        workload = masked_tracer_advection((8, 8, 4), iterations=2, computations=6)
        module = workload.build_module(dtype=np.float64)
        program = compile_stencil_program(module, cpu_target())
        kernel = program.compiled_kernel(workload.schedule.name)
        # One vectorized nest per stencil computation: the select/cmpf chains
        # must not force any stencil back onto the tree walker.
        assert kernel.nest_count == 6, kernel.fallback_reasons

        arrays = workload.arrays(halo=1, dtype=np.float64, seed=17)
        names = workload.schedule.array_names()
        interp_args = [arrays[name].copy() for name in names]
        vector_args = [arrays[name].copy() for name in names]
        r_i = run_local(
            program, [*interp_args, workload.iterations],
            function=workload.schedule.name, backend="interpreter",
        )
        r_v = run_local(
            program, [*vector_args, workload.iterations],
            function=workload.schedule.name, backend="vectorized",
        )
        for a, b in zip(interp_args, vector_args):
            assert np.array_equal(a, b)
        assert r_i.statistics[0].cells_updated == r_v.statistics[0].cells_updated

    def test_masked_tracer_matches_numpy_oracle(self):
        workload = masked_tracer_advection((6, 6, 4), iterations=1, computations=6)
        module = workload.build_module(dtype=np.float64)
        program = compile_stencil_program(module, cpu_target())
        arrays = workload.arrays(halo=1, dtype=np.float64, seed=19)
        names = workload.schedule.array_names()
        compiled_args = [arrays[name].copy() for name in names]
        run_local(
            program, [*compiled_args, 1],
            function=workload.schedule.name, backend="vectorized",
        )
        reference = {name: arrays[name].copy() for name in names}
        reference_execute(workload.schedule, reference, halo=1, iterations=1)
        for name, array in zip(names, compiled_args):
            assert np.allclose(reference[name], array)


class TestVectorizeFallbackReasons:
    """Every unsupported construct produces an explicit reason string."""

    def _parallel_over(self, kernel_args, build_body, upper=4):
        kernel = func.FuncOp("kernel", FunctionType(kernel_args, []))
        b = Builder.at_end(kernel.body.block)
        zero = b.insert(arith.ConstantOp.from_int(0)).result
        one = b.insert(arith.ConstantOp.from_int(1)).result
        bound = b.insert(arith.ConstantOp.from_int(upper)).result
        loop = scf.ParallelOp([zero], [bound], [one])
        build_body(Builder.at_end(loop.body.block), kernel.args, loop)
        b.insert(loop)
        b.insert(func.ReturnOp([]))
        return builtin.ModuleOp([kernel]), loop

    def test_non_affine_index_reason(self):
        def body(inner, args, loop):
            iv = loop.induction_variables[0]
            squared = inner.insert(arith.MuliOp(iv, iv)).result
            value = inner.insert(memref.LoadOp(args[0], [squared])).result
            inner.insert(memref.StoreOp(value, args[1], [iv]))
            inner.insert(scf.YieldOp([]))

        module, loop = self._parallel_over(
            [MemRefType([16], f64), MemRefType([4], f64)], body
        )
        kernel = compile_kernel(module, "kernel")
        fallback = kernel.fallback_for(loop)
        assert fallback is not None
        assert "non-affine" in fallback.reason
        assert any("non-affine" in reason for reason in kernel.fallback_reasons)

    def test_unknown_op_reason_names_the_op(self):
        def body(inner, args, loop):
            iv = loop.induction_variables[0]
            loaded = inner.insert(memref.LoadOp(args[0], [iv])).result
            threshold = inner.insert(arith.ConstantOp.from_float(0.0, f64)).result
            cond = inner.insert(arith.CmpfOp("ogt", loaded, threshold)).result
            if_op = scf.IfOp(cond)
            Builder.at_end(if_op.then_region.block).insert(scf.YieldOp([]))
            inner.insert(if_op)
            inner.insert(scf.YieldOp([]))

        module, loop = self._parallel_over([MemRefType([4], f64)], body)
        fallback = compile_kernel(module, "kernel").fallback_for(loop)
        assert fallback is not None and "scf.if" in fallback.reason

    def test_dynamic_non_positive_step_runtime_reason(self):
        # The step is a function argument: statically vectorizable, but a
        # non-positive runtime value must bounce (the interpreter defines the
        # semantics) with an explicit reason.
        kernel = func.FuncOp(
            "kernel", FunctionType([MemRefType([8], f64), index], [])
        )
        u, step_arg = kernel.args
        b = Builder.at_end(kernel.body.block)
        zero = b.insert(arith.ConstantOp.from_int(0)).result
        eight = b.insert(arith.ConstantOp.from_int(8)).result
        loop = scf.ParallelOp([zero], [eight], [step_arg])
        inner = Builder.at_end(loop.body.block)
        value = inner.insert(arith.ConstantOp.from_float(1.0, f64)).result
        inner.insert(memref.StoreOp(value, u, [loop.induction_variables[0]]))
        inner.insert(scf.YieldOp([]))
        b.insert(loop)
        b.insert(func.ReturnOp([]))
        module = builtin.ModuleOp([kernel])
        compiled = compile_kernel(module, "kernel")
        nest = compiled.nest_for(loop)
        assert nest is not None  # statically fine

        data = np.zeros(8)
        Interpreter(module, kernel=compiled).call("kernel", data, -1)
        assert np.array_equal(data, np.zeros(8))  # tree walker: empty range
        assert nest.last_fallback is not None
        assert "step" in nest.last_fallback.reason

        # A healthy step executes vectorized and clears the record.
        Interpreter(module, kernel=compiled).call("kernel", data, 2)
        assert nest.last_fallback is None
        assert np.array_equal(data[::2], np.ones(4))

    def test_aliasing_store_runtime_reason(self):
        module = TestRuntimeFallback()._inplace_shifted_module()
        loop = next(op for op in module.walk() if isinstance(op, scf.ParallelOp))
        compiled = compile_kernel(module, "kernel")
        nest = compiled.nest_for(loop)
        assert nest is not None
        data = np.arange(10, dtype=np.float64)
        Interpreter(module, kernel=compiled).call("kernel", data)
        assert nest.last_fallback is not None
        assert "aliasing" in nest.last_fallback.reason

    def test_loop_carried_values_reason(self):
        module = build_jacobi_module()
        program = compile_stencil_program(module, cpu_target())
        time_loop = next(op for op in program.module.walk() if isinstance(op, scf.ForOp))
        fallback = compile_loop_nest_or_fallback(time_loop)
        assert isinstance(fallback, VectorizeFallback)
        assert "loop-carried" in fallback.reason


class TestReviewRegressionsPR3:
    """Regression tests for defects found in review of the nest vectorizer."""

    def test_pre_tile_load_of_origin_rejects_collapse(self):
        # x = u[origin]; for i in [origin, min(origin+4, 8)): v[i] = x  — the
        # load captured the *tile origin*; collapsing the pair to cell
        # granularity would silently change what it reads, so the nest must
        # fall back (and both engines must agree).
        kernel = func.FuncOp(
            "kernel", FunctionType([MemRefType([8], f64), MemRefType([8], f64)], [])
        )
        u, v = kernel.args
        b = Builder.at_end(kernel.body.block)
        zero = b.insert(arith.ConstantOp.from_int(0)).result
        one = b.insert(arith.ConstantOp.from_int(1)).result
        four = b.insert(arith.ConstantOp.from_int(4)).result
        eight = b.insert(arith.ConstantOp.from_int(8)).result
        loop = scf.ParallelOp([zero], [eight], [four])
        outer = Builder.at_end(loop.body.block)
        origin = loop.induction_variables[0]
        hoisted = outer.insert(memref.LoadOp(u, [origin])).result
        tile_end = outer.insert(arith.AddiOp(origin, four)).result
        clamped = outer.insert(arith.MinSIOp(tile_end, eight)).result
        inner_for = scf.ForOp(origin, clamped, one)
        outer.insert(inner_for)
        outer.insert(scf.YieldOp([]))
        inner = Builder.at_end(inner_for.body.block)
        inner.insert(memref.StoreOp(hoisted, v, [inner_for.induction_variable]))
        inner.insert(scf.YieldOp([]))
        b.insert(loop)
        b.insert(func.ReturnOp([]))
        module = builtin.ModuleOp([kernel])

        fallback = compile_loop_nest_or_fallback(loop)
        assert isinstance(fallback, VectorizeFallback)
        assert "before the tile loop" in fallback.reason

        data = np.arange(8, dtype=np.float64)
        expected, observed = np.zeros(8), np.zeros(8)
        Interpreter(module).call("kernel", data.copy(), expected)
        Interpreter(module, kernel=compile_kernel(module, "kernel")).call(
            "kernel", data.copy(), observed
        )
        assert np.array_equal(expected, observed)
        assert np.array_equal(expected, [0, 0, 0, 0, 4, 4, 4, 4])

    def test_reduce_count_mismatch_is_rejected(self):
        # A result-less scf.parallel terminated by a value-carrying scf.reduce
        # must fail verification and raise a clean InterpreterError, not an
        # IndexError from the accumulator loop.
        kernel = func.FuncOp("kernel", FunctionType([MemRefType([4], f64)], []))
        b = Builder.at_end(kernel.body.block)
        zero = b.insert(arith.ConstantOp.from_int(0)).result
        one = b.insert(arith.ConstantOp.from_int(1)).result
        four = b.insert(arith.ConstantOp.from_int(4)).result
        loop = scf.ParallelOp([zero], [four], [one])  # no init values
        inner = Builder.at_end(loop.body.block)
        value = inner.insert(memref.LoadOp(kernel.args[0], [loop.induction_variables[0]])).result
        inner.insert(scf.ReduceOp.combining(value, arith.AddfOp))
        b.insert(loop)
        b.insert(func.ReturnOp([]))
        module = builtin.ModuleOp([kernel])

        from repro.ir.verifier import VerificationError

        with pytest.raises(VerificationError, match="one value per"):
            module.verify()
        from repro.interp import InterpreterError

        with pytest.raises(InterpreterError, match="init values"):
            Interpreter(module).call("kernel", np.zeros(4))
