"""A minimal gpu dialect: device memory management and kernel launches.

Mirrors the subset of MLIR's ``gpu`` dialect the stencil GPU lowering uses:
device allocation, host<->device transfers, a launch op whose body is the
kernel (indexed by block/thread ids), and explicit host synchronisation.  The
paper's observed behaviour — a synchronous kernel launch per ``scf.parallel``
— is modelled by attaching a ``synchronous`` unit attribute to launches.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.attributes import StringAttr, UnitAttr
from ..ir.context import Dialect
from ..ir.core import Block, Operation, Region, SSAValue
from ..ir.traits import IsTerminator, MemoryReadEffect, MemoryWriteEffect
from ..ir.types import MemRefType, index


class AllocOp(Operation):
    """Allocate a buffer in device memory."""

    name = "gpu.alloc"
    traits = frozenset([MemoryWriteEffect()])

    def __init__(self, result_type: MemRefType):
        super().__init__(result_types=[result_type])

    @property
    def memref(self) -> SSAValue:
        return self.results[0]


class DeallocOp(Operation):
    """Free a device buffer."""

    name = "gpu.dealloc"

    def __init__(self, memref: SSAValue):
        super().__init__(operands=[memref])


class MemcpyOp(Operation):
    """Copy between host and device buffers (direction inferred from use)."""

    name = "gpu.memcpy"
    traits = frozenset([MemoryReadEffect(), MemoryWriteEffect()])

    def __init__(self, dst: SSAValue, src: SSAValue):
        super().__init__(operands=[dst, src])

    @property
    def dst(self) -> SSAValue:
        return self.operands[0]

    @property
    def src(self) -> SSAValue:
        return self.operands[1]


class LaunchOp(Operation):
    """Launch a kernel over a 3D grid of thread blocks.

    Operands: grid sizes (x, y, z) then block sizes (x, y, z).  The body block
    receives 6 index arguments: block ids then thread ids.
    """

    name = "gpu.launch"

    def __init__(
        self,
        grid_sizes: Sequence[SSAValue],
        block_sizes: Sequence[SSAValue],
        body: Optional[Region] = None,
        synchronous: bool = True,
    ):
        if len(grid_sizes) != 3 or len(block_sizes) != 3:
            raise ValueError("gpu.launch expects 3 grid sizes and 3 block sizes")
        if body is None:
            body = Region(Block(arg_types=[index] * 6))
        attributes = {}
        if synchronous:
            attributes["synchronous"] = UnitAttr()
        super().__init__(
            operands=[*grid_sizes, *block_sizes],
            attributes=attributes,
            regions=[body],
        )

    @property
    def grid_sizes(self) -> tuple[SSAValue, ...]:
        return self.operands[0:3]

    @property
    def block_sizes(self) -> tuple[SSAValue, ...]:
        return self.operands[3:6]

    @property
    def body(self) -> Region:
        return self.regions[0]

    @property
    def is_synchronous(self) -> bool:
        return "synchronous" in self.attributes


class TerminatorOp(Operation):
    """Terminates a gpu.launch body."""

    name = "gpu.terminator"
    traits = frozenset([IsTerminator()])

    def __init__(self):
        super().__init__()


class _IdOp(Operation):
    """Base for ops returning a per-thread/block index along a dimension."""

    def __init__(self, dimension: str):
        if dimension not in ("x", "y", "z"):
            raise ValueError("gpu id dimension must be x, y or z")
        super().__init__(
            attributes={"dimension": StringAttr(dimension)}, result_types=[index]
        )

    @property
    def dimension(self) -> str:
        attr = self.attributes["dimension"]
        assert isinstance(attr, StringAttr)
        return attr.data

    @property
    def result(self) -> SSAValue:
        return self.results[0]


class ThreadIdOp(_IdOp):
    name = "gpu.thread_id"


class BlockIdOp(_IdOp):
    name = "gpu.block_id"


class BlockDimOp(_IdOp):
    name = "gpu.block_dim"


class GridDimOp(_IdOp):
    name = "gpu.grid_dim"


class HostSynchronizeOp(Operation):
    """Block the host until all outstanding device work completes."""

    name = "gpu.host_synchronize"

    def __init__(self):
        super().__init__()


class GPUModuleOp(Operation):
    """Container for device-side functions."""

    name = "gpu.module"

    def __init__(self, sym_name: str, ops: Sequence[Operation] = ()):
        super().__init__(
            attributes={"sym_name": StringAttr(sym_name)},
            regions=[Region(Block(ops=list(ops)))],
        )


GPU = Dialect(
    "gpu",
    [
        AllocOp, DeallocOp, MemcpyOp, LaunchOp, TerminatorOp,
        ThreadIdOp, BlockIdOp, BlockDimOp, GridDimOp,
        HostSynchronizeOp, GPUModuleOp,
    ],
    [],
)
