"""Ablation benchmarks for the design choices called out in DESIGN.md.

* decomposition strategy: 1D vs 2D vs 3D slicing (communication volume and
  real distributed execution on the simulated runtime);
* redundant-swap elimination on/off (number of halo exchanges executed);
* loop tiling on/off in the CPU lowering;
* stencil fusion on/off (number of OpenMP regions).
"""

import numpy as np
import pytest

from repro.core import Target, TargetKind, compile_stencil_program, default_session, dmp_target
from repro.transforms.distribute import GridSlicingStrategy, communicated_elements_per_step
from repro.workloads import heat_diffusion, pw_advection
from repro.machine import characterize_module
from repro.transforms.stencil import fuse_applies, infer_shapes


@pytest.mark.benchmark(group="ablation-decomposition")
@pytest.mark.parametrize("grid", [(4,), (2, 2)], ids=["1d-slabs", "2d-blocks"])
def test_decomposition_strategy(benchmark, grid):
    """1D slab vs 2D block decomposition of the same 2D heat problem."""
    workload = heat_diffusion((16, 16), space_order=2, dtype=np.float64)
    module = workload.operator(backend="xdsl").stencil_module(dt=workload.dt)
    program = compile_stencil_program(module, dmp_target(grid))

    def run():
        u0 = np.zeros((18, 18))
        u0[8:10, 8:10] = 1.0
        u1 = u0.copy()
        return default_session().run(program, [u0, u1], [2])

    result = benchmark(run)
    halo = communicated_elements_per_step(GridSlicingStrategy(grid), (16, 16), (1, 1), (1, 1))
    benchmark.extra_info["halo_elements_per_swap"] = halo
    assert result.messages_sent > 0


@pytest.mark.benchmark(group="ablation-swap-elimination")
@pytest.mark.parametrize("eliminate", [True, False], ids=["with-elimination", "without"])
def test_redundant_swap_elimination(benchmark, eliminate):
    """Effect of the redundant-swap elimination pass on exchange counts."""
    from repro.transforms.distribute import distribute_stencil, eliminate_redundant_swaps
    from repro.dialects.dmp import SwapOp
    from tests.conftest import build_jacobi_module

    def compile_and_count():
        module = build_jacobi_module()
        distribute_stencil(module, GridSlicingStrategy([2]))
        # Duplicate the swap to emulate a frontend inserting one per load of
        # the same buffer.
        for swap in [op for op in module.walk() if isinstance(op, SwapOp)]:
            swap.parent_block.insert_op_after(swap.clone(), swap)
        if eliminate:
            eliminate_redundant_swaps(module)
        return sum(1 for op in module.walk() if isinstance(op, SwapOp))

    swaps = benchmark(compile_and_count)
    benchmark.extra_info["swaps_per_step"] = swaps
    assert swaps == (1 if eliminate else 2)


@pytest.mark.benchmark(group="ablation-tiling")
@pytest.mark.parametrize("tiles", [None, (4, 4)], ids=["untiled", "tiled"])
def test_loop_tiling(benchmark, tiles):
    """CPU lowering with and without loop tiling (locality optimisation)."""
    workload = heat_diffusion((20, 20), space_order=2, dtype=np.float64)

    def run():
        module = workload.operator(backend="xdsl").stencil_module(dt=workload.dt)
        target = Target(kind=TargetKind.CPU_SEQUENTIAL, tile_sizes=tiles)
        program = compile_stencil_program(module, target)
        u0 = np.zeros((22, 22))
        u0[10, 10] = 1.0
        u1 = u0.copy()
        from repro.core import default_session

        default_session().run(program, [u0, u1, 2])
        return u0

    data = benchmark(run)
    assert np.isfinite(data).all()


@pytest.mark.benchmark(group="ablation-fusion")
@pytest.mark.parametrize("fuse", [True, False], ids=["fused", "unfused"])
def test_stencil_fusion(benchmark, fuse):
    """PW advection with and without stencil fusion (regions == OpenMP regions)."""
    workload = pw_advection((12, 12, 6), iterations=1)

    def compile_and_count():
        module = workload.build_module(dtype=np.float64)
        infer_shapes(module)
        if fuse:
            fuse_applies(module)
        return characterize_module(module).stencil_regions

    regions = benchmark(compile_and_count)
    benchmark.extra_info["stencil_regions"] = regions
    assert regions == (1 if fuse else 3)
