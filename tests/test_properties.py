"""Property-based tests (hypothesis) of core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dialects import dmp, stencil
from repro.interp import SimulatedMPI
from repro.transforms.distribute import GridSlicingStrategy

bounds_pairs = st.lists(
    st.tuples(st.integers(-8, 8), st.integers(0, 16)), min_size=1, max_size=3
).map(lambda pairs: ([lo for lo, _ in pairs], [lo + extent for lo, extent in pairs]))


class TestStencilBoundsProperties:
    @given(bounds_pairs)
    def test_size_is_product_of_shape(self, pair):
        lb, ub = pair
        bounds = stencil.StencilBoundsAttr(lb, ub)
        assert bounds.size() == int(np.prod(bounds.shape))

    @given(bounds_pairs, st.integers(0, 4), st.integers(0, 4))
    def test_grown_bounds_contain_original(self, pair, low, high):
        lb, ub = pair
        bounds = stencil.StencilBoundsAttr(lb, ub)
        grown = bounds.grown_by([low] * bounds.rank, [high] * bounds.rank)
        assert grown.contains(bounds)
        assert grown.shape == tuple(s + low + high for s in bounds.shape)

    @given(bounds_pairs)
    def test_text_round_trip(self, pair):
        lb, ub = pair
        bounds = stencil.StencilBoundsAttr(lb, ub)
        assert stencil.StencilBoundsAttr.parse_parameters(
            bounds.print_parameters(None)
        ) == bounds


grid_shapes = st.lists(st.integers(1, 4), min_size=1, max_size=3)


class TestGridProperties:
    @given(grid_shapes)
    def test_rank_coordinate_bijection(self, shape):
        grid = dmp.GridAttr(shape)
        seen = set()
        for rank in range(grid.rank_count):
            coords = grid.coords_of(rank)
            assert grid.rank_of(coords) == rank
            seen.add(coords)
        assert len(seen) == grid.rank_count

    @given(grid_shapes, st.integers(0, 2), st.sampled_from([-1, 1]))
    def test_neighbor_is_symmetric(self, shape, dim, direction):
        grid = dmp.GridAttr(shape)
        dim = dim % grid.ndims
        offset = [0] * grid.ndims
        offset[dim] = direction
        back = [0] * grid.ndims
        back[dim] = -direction
        for rank in range(grid.rank_count):
            neighbor = grid.neighbor_of(rank, offset)
            if neighbor is not None:
                assert grid.neighbor_of(neighbor, back) == rank


class TestDecompositionProperties:
    @given(
        st.integers(1, 4),
        st.integers(1, 4),
        st.integers(1, 3),
    )
    @settings(max_examples=30)
    def test_slabs_partition_domain(self, px, py, per_rank):
        strategy = GridSlicingStrategy([px, py])
        shape = (px * per_rank * 2, py * per_rank * 2)
        covered = np.zeros(shape, dtype=int)
        for rank in range(strategy.rank_count):
            start, end = strategy.global_slab(shape, rank)
            covered[start[0]:end[0], start[1]:end[1]] += 1
        assert (covered == 1).all()

    @given(st.integers(1, 4), st.integers(1, 3), st.integers(1, 2))
    @settings(max_examples=30)
    def test_exchanges_stay_inside_buffer(self, ranks, per_rank, halo):
        strategy = GridSlicingStrategy([ranks])
        domain = strategy.local_domain((ranks * per_rank * 2,), (halo,), (halo,))
        buffer_shape = domain.buffer_shape
        for exchange in strategy.exchanges(domain):
            for offsets, sizes in (exchange.recv_region, exchange.send_region):
                for offset, size, extent in zip(offsets, sizes, buffer_shape):
                    assert 0 <= offset and offset + size <= extent


class TestCanonicalisationProperties:
    @given(st.lists(st.integers(-50, 50), min_size=2, max_size=6))
    @settings(max_examples=30)
    def test_constant_folding_preserves_value(self, values):
        from repro.dialects import arith, builtin, func
        from repro.interp import Interpreter
        from repro.ir import Builder, FunctionType, i64
        from repro.transforms.common import canonicalize

        kernel = func.FuncOp("kernel", FunctionType([], [i64]))
        builder = Builder.at_end(kernel.body.block)
        accumulator = builder.insert(arith.ConstantOp.from_int(values[0], i64)).result
        for i, value in enumerate(values[1:]):
            operand = builder.insert(arith.ConstantOp.from_int(value, i64)).result
            op_cls = [arith.AddiOp, arith.SubiOp, arith.MuliOp][i % 3]
            accumulator = builder.insert(op_cls(accumulator, operand)).result
        builder.insert(func.ReturnOp([accumulator]))
        module = builtin.ModuleOp([kernel])
        before = Interpreter(module).call("kernel")[0]
        canonicalize(module)
        module.verify()
        after = Interpreter(module).call("kernel")[0]
        assert before == after


class TestHaloExchangeProperty:
    @given(st.integers(2, 4), st.integers(1, 2), st.integers(2, 4))
    @settings(max_examples=15, deadline=None)
    def test_halo_exchange_transfers_correct_strips(self, ranks, halo, per_rank):
        """After one dmp-style exchange every rank's halo equals its neighbour's core edge."""
        n_local = per_rank * 2 * halo
        strategy = GridSlicingStrategy([ranks])
        domain = strategy.local_domain((ranks * n_local,), (halo,), (halo,))
        exchanges = strategy.exchanges(domain)
        world = SimulatedMPI(ranks, timeout=10.0)
        grid = strategy.rank_grid()
        locals_ = [
            np.full(domain.buffer_shape, float(rank), dtype=np.float64)
            for rank in range(ranks)
        ]

        def tag(exchange, sending):
            direction = exchange.neighbor[0] if sending else -exchange.neighbor[0]
            return 1 if direction > 0 else 0

        def body(comm):
            data = locals_[comm.rank]
            for exchange in exchanges:
                neighbor = grid.neighbor_of(comm.rank, exchange.neighbor)
                if neighbor is None:
                    continue
                send_off, send_size = exchange.send_region
                comm.isend(
                    data[send_off[0]:send_off[0] + send_size[0]].copy(), neighbor,
                    tag(exchange, True),
                )
            for exchange in exchanges:
                neighbor = grid.neighbor_of(comm.rank, exchange.neighbor)
                if neighbor is None:
                    continue
                recv_off, recv_size = exchange.recv_region
                buffer = np.empty(recv_size[0])
                comm.recv(buffer, neighbor, tag(exchange, False))
                data[recv_off[0]:recv_off[0] + recv_size[0]] = buffer

        world.run_spmd(body)
        for rank in range(ranks):
            if rank > 0:
                assert (locals_[rank][:halo] == float(rank - 1)).all()
            if rank < ranks - 1:
                assert (locals_[rank][-halo:] == float(rank + 1)).all()
