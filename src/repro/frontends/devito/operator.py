"""The mini-Devito Operator: lowers symbolic equations and runs them.

Two back-ends are provided, mirroring the paper's comparison:

* ``backend="xdsl"`` — the shared-stack path: the equations are lowered to the
  stencil dialect, compiled by :func:`repro.core.compile_stencil_program` for
  the requested target (sequential, OpenMP, MPI, GPU, FPGA) and executed by
  the IR interpreter / simulated MPI runtime.
* ``backend="native"`` — the "standalone Devito" baseline: the same update
  expressions are executed directly with vectorised numpy, using exactly the
  same time-buffer rotation, so the two back-ends produce identical data and
  serve as each other's oracle in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ...core import (
    CompiledProgram,
    ExecutionConfig,
    Session,
    Target,
    compile_stencil_program,
    cpu_target,
    default_session,
)
from ...dialects import arith, builtin, func, scf, stencil
from ...ir import Builder, FunctionType, f32, f64, index
from ...machine.kernel_model import ProgramCharacteristics, characterize_module
from .symbolic import Access, BinOp, Eq, Expr, Function, Scalar, Symbol, TimeFunction


class OperatorError(Exception):
    """Raised when equations cannot be lowered or executed."""


# ---------------------------------------------------------------------------
# Lowering symbolic equations to the stencil dialect
# ---------------------------------------------------------------------------

@dataclass
class _FieldSlot:
    """One field argument of the generated kernel."""

    function: Function
    buffer_index: int  # time buffer index (0 for plain Functions)
    argument_index: int


class _EquationLowerer:
    """Builds a stencil-level module from explicit update equations."""

    def __init__(self, equations: Sequence[Eq], dt: float, name: str):
        self.equations = list(equations)
        self.dt = float(dt)
        self.name = name
        self.updated: list[TimeFunction] = []
        self.read_only: list[Function] = []
        self._validate()

    def _validate(self) -> None:
        seen: set[int] = set()
        for equation in self.equations:
            lhs = equation.lhs
            if not isinstance(lhs, Access) or lhs.time_offset != 1:
                raise OperatorError(
                    "every equation must assign to a forward time access "
                    "(Eq(u.forward, ...)); use solve() to rearrange the PDE"
                )
            function = lhs.function
            if not isinstance(function, TimeFunction):
                raise OperatorError("updates must target TimeFunctions")
            if id(function) in seen:
                raise OperatorError(f"function {function.name} is updated twice")
            seen.add(id(function))
            self.updated.append(function)
        for equation in self.equations:
            for access in equation.rhs.accesses():
                target = access.function
                if isinstance(target, TimeFunction):
                    if id(target) not in seen:
                        raise OperatorError(
                            f"TimeFunction {target.name} is read but never updated"
                        )
                elif all(target is not existing for existing in self.read_only):
                    self.read_only.append(target)

    # -- helpers -----------------------------------------------------------------
    @property
    def grid(self):
        return self.updated[0].grid

    def _element_type(self):
        return f32 if self.updated[0].dtype == np.float32 else f64

    def halo(self) -> int:
        return max(f.halo for f in self.updated + self.read_only)

    def field_slots(self) -> list[_FieldSlot]:
        slots: list[_FieldSlot] = []
        argument = 0
        for function in self.updated:
            for buffer in range(function.buffers):
                slots.append(_FieldSlot(function, buffer, argument))
                argument += 1
        for function in self.read_only:
            slots.append(_FieldSlot(function, 0, argument))
            argument += 1
        return slots

    def build_module(self) -> builtin.ModuleOp:
        grid = self.grid
        rank = grid.ndim
        element_type = self._element_type()
        halo = self.halo()
        field_bounds = stencil.StencilBoundsAttr([-halo] * rank, [s + halo for s in grid.shape])
        store_bounds = stencil.StencilBoundsAttr([0] * rank, list(grid.shape))
        field_type = stencil.FieldType(field_bounds, element_type)

        slots = self.field_slots()
        arg_types = [field_type] * len(slots) + [index]
        kernel = func.FuncOp(self.name, FunctionType(arg_types, []))
        builder = Builder.at_end(kernel.body.block)
        field_args = kernel.args[: len(slots)]
        timesteps_arg = kernel.args[len(slots)]

        zero = builder.insert(arith.ConstantOp.from_int(0)).result
        one = builder.insert(arith.ConstantOp.from_int(1)).result
        loop = scf.ForOp(zero, timesteps_arg, one, iter_args=field_args)
        builder.insert(loop)
        builder.insert(func.ReturnOp([]))

        body = Builder.at_end(loop.body.block)
        loop_fields = list(loop.body.block.args[1:])

        # Map (function, time offset) -> loop-carried field value.
        slot_positions: dict[tuple[int, int], int] = {}
        for position, slot in enumerate(slots):
            slot_positions[(id(slot.function), slot.buffer_index)] = position

        def field_for(function: Function, time_offset: int):
            if isinstance(function, TimeFunction):
                # Buffer 0 carries time t, buffer 1 carries t-1, the last
                # buffer is the oldest and is overwritten with t+1.
                if time_offset == 0:
                    buffer = 0
                elif time_offset == -1:
                    buffer = 1
                elif time_offset == +1:
                    buffer = function.buffers - 1
                else:
                    raise OperatorError(f"unsupported time offset {time_offset}")
            else:
                buffer = 0
            return loop_fields[slot_positions[(id(function), buffer)]]

        # One load per (function, time offset) actually read.
        load_cache: dict[tuple[int, int], stencil.LoadOp] = {}

        def load_for(function: Function, time_offset: int) -> stencil.LoadOp:
            key = (id(function), 0 if not isinstance(function, TimeFunction) else time_offset)
            if key not in load_cache:
                load_cache[key] = body.insert(stencil.LoadOp(field_for(function, time_offset)))
            return load_cache[key]

        # Build one apply per equation.
        temp_type = stencil.TempType(store_bounds, element_type)
        for equation in self.equations:
            reads = equation.rhs.accesses()
            read_keys: list[tuple[int, int]] = []
            for access in reads:
                key = (
                    id(access.function),
                    0 if not isinstance(access.function, TimeFunction) else access.time_offset,
                )
                if key not in read_keys:
                    read_keys.append(key)
            loads = []
            for function_id, time_offset in read_keys:
                function = next(
                    f for f in self.updated + self.read_only if id(f) == function_id
                )
                loads.append(load_for(function, time_offset))

            apply_op = stencil.ApplyOp([load.result for load in loads], [temp_type])
            body.insert(apply_op)
            apply_builder = Builder.at_end(apply_op.body.block)
            operand_index = {key: i for i, key in enumerate(read_keys)}

            def emit(expr: Expr):
                if isinstance(expr, Scalar):
                    return apply_builder.insert(
                        arith.ConstantOp.from_float(expr.value, element_type)
                    ).result
                if isinstance(expr, Symbol):
                    value = self.dt if expr.name == "dt" else expr.default
                    return apply_builder.insert(
                        arith.ConstantOp.from_float(float(value), element_type)
                    ).result
                if isinstance(expr, Access):
                    key = (
                        id(expr.function),
                        0 if not isinstance(expr.function, TimeFunction) else expr.time_offset,
                    )
                    region_arg = apply_op.region_args[operand_index[key]]
                    return apply_builder.insert(
                        stencil.AccessOp(region_arg, list(expr.space_offsets))
                    ).result
                if isinstance(expr, Function):
                    return emit(expr._as_access())
                if isinstance(expr, BinOp):
                    lhs = emit(expr.lhs)
                    rhs = emit(expr.rhs)
                    op_cls = {
                        "+": arith.AddfOp, "-": arith.SubfOp,
                        "*": arith.MulfOp, "/": arith.DivfOp,
                    }[expr.op]
                    return apply_builder.insert(op_cls(lhs, rhs)).result
                raise OperatorError(f"cannot lower expression node {expr!r}")

            result_value = emit(equation.rhs)
            apply_builder.insert(stencil.ReturnOp([result_value]))

            target_field = field_for(equation.lhs.function, +1)
            body.insert(stencil.StoreOp(apply_op.results[0], target_field, store_bounds))

        # Rotate the time buffers: the freshly written buffer becomes time t.
        yielded = list(loop_fields)
        cursor = 0
        for function in self.updated:
            buffers = function.buffers
            segment = loop_fields[cursor : cursor + buffers]
            yielded[cursor : cursor + buffers] = [segment[-1]] + segment[:-1]
            cursor += buffers
        body.insert(scf.YieldOp(yielded))

        return builtin.ModuleOp([kernel])


# ---------------------------------------------------------------------------
# Native (numpy) execution - the standalone-Devito baseline
# ---------------------------------------------------------------------------

class _NativeExecutor:
    """Vectorised numpy execution of the update equations."""

    def __init__(self, equations: Sequence[Eq], dt: float):
        self.equations = list(equations)
        self.dt = float(dt)

    def run(self, timesteps: int) -> None:
        functions = [eq.lhs.function for eq in self.equations]
        grid = functions[0].grid
        halo = max(f.halo for f in functions)
        interior = tuple(slice(halo, halo + s) for s in grid.shape)
        # Rotation state per updated function: order[0] holds time t, the last
        # entry is the oldest buffer (overwritten with t+1).
        order: dict[int, list[int]] = {
            id(f): list(range(f.buffers)) for f in functions
        }

        for _ in range(int(timesteps)):
            updates = []
            for equation in self.equations:
                function = equation.lhs.function
                value = self._evaluate(equation.rhs, order, interior, halo)
                updates.append((function, value))
            for function, value in updates:
                target_buffer = order[id(function)][-1]
                function.data_with_halo[target_buffer][interior] = value
            for function, _ in updates:
                state = order[id(function)]
                order[id(function)] = [state[-1]] + state[:-1]

    def _evaluate(self, expr: Expr, order, interior, halo):
        if isinstance(expr, Scalar):
            return expr.value
        if isinstance(expr, Symbol):
            return self.dt if expr.name == "dt" else expr.default
        if isinstance(expr, Access):
            function = expr.function
            if isinstance(function, TimeFunction):
                state = order[id(function)]
                if expr.time_offset == 0:
                    buffer = state[0]
                elif expr.time_offset == -1:
                    buffer = state[1]
                else:
                    raise OperatorError("native backend reads only t and t-1")
                array = function.data_with_halo[buffer]
            else:
                array = function.data_with_halo
            slices = tuple(
                slice(halo + off, halo + off + extent)
                for off, extent in zip(expr.space_offsets, function.grid.shape)
            )
            return array[slices]
        if isinstance(expr, Function):
            return self._evaluate(expr._as_access(), order, interior, halo)
        if isinstance(expr, BinOp):
            lhs = self._evaluate(expr.lhs, order, interior, halo)
            rhs = self._evaluate(expr.rhs, order, interior, halo)
            if expr.op == "+":
                return lhs + rhs
            if expr.op == "-":
                return lhs - rhs
            if expr.op == "*":
                return lhs * rhs
            return lhs / rhs
        raise OperatorError(f"cannot evaluate expression node {expr!r}")


# ---------------------------------------------------------------------------
# Operator
# ---------------------------------------------------------------------------

class Operator:
    """Compile and run a set of explicit update equations (mini Devito)."""

    def __init__(
        self,
        equations: Eq | Sequence[Eq],
        *,
        backend: str = "xdsl",
        target: Optional[Target] = None,
        runtime: Optional[str] = None,
        threads_per_rank: Optional[int] = None,
        name: str = "kernel",
        config: Optional[ExecutionConfig] = None,
        session: Optional[Session] = None,
    ):
        if isinstance(equations, Eq):
            equations = [equations]
        if not equations:
            raise OperatorError("an Operator needs at least one equation")
        if backend not in ("xdsl", "native"):
            raise OperatorError(f"unknown backend {backend!r}")
        self.equations = list(equations)
        self.backend = backend
        self.target = target or cpu_target()
        #: Execution configuration (one object across all frontends); the
        #: legacy ``runtime=`` / ``threads_per_rank=`` kwargs fold into it.
        self.config = ExecutionConfig.coerce(
            config, runtime=runtime, threads_per_rank=threads_per_rank
        )
        #: The Session owning the runtime resources; ``None`` uses the
        #: process-wide default session.
        self.session = session
        self.name = name
        self._compiled: Optional[CompiledProgram] = None
        self._compiled_dt: Optional[float] = None
        #: The pre-resolved execution plan for the compiled program, reused
        #: across apply() calls (the amortized hot path of repro.core.session).
        self._plan = None

    @property
    def runtime(self) -> str:
        """Distributed execution runtime (legacy accessor onto the config)."""
        return self.config.runtime

    @property
    def threads_per_rank(self) -> int:
        """Intra-rank thread-team size (legacy accessor onto the config)."""
        return self.config.threads_per_rank

    # -- compilation ------------------------------------------------------------
    def compile(self, dt: float) -> CompiledProgram:
        """Lower to the stencil dialect and run the shared pipeline (JIT-style)."""
        if self._compiled is not None and self._compiled_dt == dt:
            return self._compiled
        from ...obs import compile_tracing

        with compile_tracing() as tracer:
            span = tracer.begin("devito.lower")
            lowerer = _EquationLowerer(self.equations, dt, self.name)
            module = lowerer.build_module()
            tracer.end("devito.lower", span)
            self._compiled = compile_stencil_program(module, self.target)
            # Fuller record than the pipeline's own: includes the frontend
            # lowering span alongside the pass/stage spans.
            self._compiled.compile_record = tracer.record()
        self._compiled_dt = dt
        self._lowerer = lowerer
        if self._plan is not None:
            self._plan.close()
            self._plan = None
        return self._compiled

    def stencil_module(self, dt: float = 1.0) -> builtin.ModuleOp:
        """The stencil-level module before target lowering (for inspection)."""
        return _EquationLowerer(self.equations, dt, self.name).build_module()

    def characteristics(self, dt: float = 1.0) -> ProgramCharacteristics:
        """Kernel characteristics used by the performance models."""
        module = self.stencil_module(dt)
        from ...transforms.stencil import infer_shapes

        infer_shapes(module)
        return characterize_module(module)

    # -- execution ----------------------------------------------------------------
    def __call__(self, time: int, dt: float = 1.0e-3) -> None:
        self.apply(time=time, dt=dt)

    def apply(self, time: int, dt: float = 1.0e-3) -> None:
        """Advance the equations ``time`` steps with time step ``dt``."""
        if time < 0:
            raise OperatorError("the number of time steps must be non-negative")
        if self.backend == "native":
            _NativeExecutor(self.equations, dt).run(time)
            return
        program = self.compile(dt)
        arguments = self._field_arguments()
        plan = self.plan(dt)
        plan.run(arguments, [int(time)])

    def plan(self, dt: float = 1.0e-3):
        """The session :class:`~repro.core.session.Plan` for this operator.

        Compiled (and planned) once, reused across ``apply()`` calls; a new
        ``dt`` recompiles and re-plans.
        """
        program = self.compile(dt)
        plan = self._plan
        if plan is None or plan.closed or plan.session.closed:
            session = self.session or default_session()
            plan = session.plan(program, function=self.name, config=self.config)
            self._plan = plan
        return plan

    def _field_arguments(self) -> list[np.ndarray]:
        lowerer = _EquationLowerer(self.equations, self._compiled_dt or 1.0, self.name)
        arrays: list[np.ndarray] = []
        for slot in lowerer.field_slots():
            function = slot.function
            if isinstance(function, TimeFunction):
                arrays.append(function.data_with_halo[slot.buffer_index])
            else:
                arrays.append(function.data_with_halo)
        return arrays

    # -- result bookkeeping ------------------------------------------------------------
    @staticmethod
    def buffer_holding_time(function: TimeFunction, timesteps: int) -> int:
        """Which buffer of ``function`` holds the data of time ``timesteps``.

        Both back-ends rotate buffers identically, so this mapping is shared.
        """
        buffers = function.buffers
        return (-timesteps) % buffers if buffers > 2 else timesteps % buffers
