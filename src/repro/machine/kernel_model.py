"""Extraction of performance-relevant kernel characteristics from the IR.

The cost models do not guess what a kernel does - they read it off the
compiled stencil program: number of stencil regions, accesses per cell, flops
per cell, distinct input/output fields, and halo volumes.  This keeps the
performance model tied to the same artefact the correctness tests execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..dialects import stencil
from ..ir.core import Operation

#: arith operations counted as one floating point operation each.
_FLOP_OPS = {
    "arith.addf", "arith.subf", "arith.mulf", "arith.negf",
    "arith.maximumf", "arith.minimumf",
}
#: Expensive operations counted with a higher weight.
_FLOP_WEIGHTS = {"arith.divf": 4, "arith.powf": 8}


@dataclass
class ApplyCharacteristics:
    """Per-stencil-region characteristics."""

    rank: int
    accesses: int
    flops_per_cell: int
    input_fields: int
    output_fields: int
    halo_lower: tuple[int, ...]
    halo_upper: tuple[int, ...]
    cells_per_step: int

    @property
    def stencil_points(self) -> int:
        return self.accesses

    def bytes_per_cell(self, dtype_bytes: int = 4) -> int:
        """Streaming-model memory traffic per updated cell.

        Each distinct input field is streamed once, each output field written
        once plus a write-allocate read.
        """
        return dtype_bytes * (self.input_fields + 2 * self.output_fields)

    def arithmetic_intensity(self, dtype_bytes: int = 4) -> float:
        return self.flops_per_cell / max(self.bytes_per_cell(dtype_bytes), 1)


@dataclass
class ProgramCharacteristics:
    """Aggregate characteristics of one compiled stencil program (per time step)."""

    applies: list[ApplyCharacteristics] = field(default_factory=list)

    @property
    def stencil_regions(self) -> int:
        return len(self.applies)

    @property
    def flops_per_step(self) -> float:
        return sum(a.flops_per_cell * a.cells_per_step for a in self.applies)

    def bytes_per_step(self, dtype_bytes: int = 4) -> float:
        return sum(a.bytes_per_cell(dtype_bytes) * a.cells_per_step for a in self.applies)

    @property
    def cells_per_step(self) -> int:
        """Cells updated per step (output points of the last/primary stencil)."""
        if not self.applies:
            return 0
        return max(a.cells_per_step for a in self.applies)

    @property
    def total_cell_updates_per_step(self) -> int:
        return sum(a.cells_per_step for a in self.applies)

    def arithmetic_intensity(self, dtype_bytes: int = 4) -> float:
        bytes_total = self.bytes_per_step(dtype_bytes)
        return self.flops_per_step / bytes_total if bytes_total else 0.0

    def combined_halo(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        rank = max((a.rank for a in self.applies), default=0)
        lower = [0] * rank
        upper = [0] * rank
        for apply_chars in self.applies:
            for dim in range(apply_chars.rank):
                lower[dim] = max(lower[dim], apply_chars.halo_lower[dim])
                upper[dim] = max(upper[dim], apply_chars.halo_upper[dim])
        return tuple(lower), tuple(upper)


def characterize_apply(apply_op: stencil.ApplyOp) -> ApplyCharacteristics:
    """Read the characteristics of one stencil.apply off its IR."""
    accesses = 0
    flops = 0
    for op in apply_op.body.walk():
        if isinstance(op, stencil.AccessOp):
            accesses += 1
        elif op.name in _FLOP_OPS:
            flops += 1
        elif op.name in _FLOP_WEIGHTS:
            flops += _FLOP_WEIGHTS[op.name]
    halo_lower, halo_upper = apply_op.halo_extents()

    input_fields = len(apply_op.operands)
    output_fields = len(apply_op.results)

    cells = 0
    bounds: Optional[stencil.StencilBoundsAttr] = None
    for result in apply_op.results:
        result_type = result.type
        if isinstance(result_type, stencil.TempType) and result_type.bounds is not None:
            bounds = result_type.bounds
            break
    if bounds is None:
        for result in apply_op.results:
            for use in result.uses:
                if isinstance(use.operation, stencil.StoreOp):
                    bounds = use.operation.bounds
                    break
    if bounds is not None:
        cells = bounds.size()

    rank = len(halo_lower) if halo_lower else (bounds.rank if bounds else 0)
    return ApplyCharacteristics(
        rank=rank,
        accesses=accesses,
        flops_per_cell=flops,
        input_fields=input_fields,
        output_fields=output_fields,
        halo_lower=halo_lower,
        halo_upper=halo_upper,
        cells_per_step=cells,
    )


def characterize_module(module: Operation) -> ProgramCharacteristics:
    """Characterise every stencil region of a stencil-level module."""
    return ProgramCharacteristics(
        applies=[characterize_apply(op) for op in stencil.apply_ops_of(module)]
    )
