"""Lower the stencil dialect to explicit loop nests over memrefs.

This is the CPU lowering pipeline of the paper (the "shared memory" variant of
``convert-stencil-to-ll-mlir``): every ``stencil.apply`` / ``stencil.store``
pair becomes an ``scf.parallel`` loop nest (optionally tiled for data
locality) whose body loads inputs with ``memref.load``, evaluates the cloned
arithmetic, and stores results with ``memref.store``.

Field values keep their ``!stencil.field`` SSA type and are bridged into the
memref world with ``builtin.unrealized_conversion_cast`` exactly as in the
paper's fig. 4; this keeps the pass local (no function-signature rewriting).
Logical stencil coordinates are translated to zero-based memory indices using
the bounds carried by the field types.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...dialects import arith, memref, scf, stencil
from ...dialects.builtin import UnrealizedConversionCastOp
from ...ir.attributes import IntAttr, UnitAttr
from ...ir.builder import Builder
from ...ir.context import MLContext
from ...ir.core import Block, BlockArgument, Operation, SSAValue
from ...ir.pass_manager import ModulePass, PassRegistry
from ...ir.types import MemRefType, index


class StencilLoweringError(Exception):
    """Raised when a stencil program cannot be lowered to loops."""


def _field_of_temp(value: SSAValue) -> tuple[SSAValue, stencil.FieldType]:
    """The field (and its type) backing a temp value produced by stencil.load."""
    owner = value.owner
    if isinstance(owner, stencil.LoadOp):
        field = owner.field
        field_type = field.type
        if not isinstance(field_type, stencil.FieldType):
            raise StencilLoweringError("stencil.load operand is not a field")
        return field, field_type
    raise StencilLoweringError(
        "stencil.apply operands must be produced by stencil.load before lowering "
        f"(found {owner.name if isinstance(owner, Operation) else 'block argument'})"
    )


def _memref_type_for_field(field_type: stencil.FieldType) -> MemRefType:
    if field_type.bounds is None:
        raise StencilLoweringError("cannot lower a field without static bounds")
    return MemRefType(field_type.bounds.shape, field_type.element_type)


class _ApplyLowering:
    """Lowers a single stencil.apply (plus its stores) into a loop nest."""

    def __init__(
        self,
        apply_op: stencil.ApplyOp,
        tile_sizes: Optional[Sequence[int]],
        parallel_attr: Optional[str],
    ):
        self.apply_op = apply_op
        self.tile_sizes = tile_sizes
        self.parallel_attr = parallel_attr
        self.builder = Builder.before(apply_op)

    # -- helpers ------------------------------------------------------------
    def _const_index(self, value: int) -> SSAValue:
        op = self.builder.insert(arith.ConstantOp.from_int(value, index))
        return op.result

    def run(self) -> None:
        apply_op = self.apply_op
        stores = self._collect_stores()
        bounds = stores[0].bounds
        for store in stores[1:]:
            if store.bounds != bounds:
                raise StencilLoweringError(
                    "all stores of one stencil.apply must share the same bounds"
                )
        rank = bounds.rank

        # Cast every input field and every output field to a memref.
        input_casts: list[tuple[SSAValue, tuple[int, ...]]] = []
        for operand in apply_op.operands:
            field, field_type = _field_of_temp(operand)
            cast = self.builder.insert(
                UnrealizedConversionCastOp.get(field, _memref_type_for_field(field_type))
            )
            input_casts.append((cast.output, field_type.bounds.lb))
        output_casts: list[tuple[SSAValue, tuple[int, ...]]] = []
        for store in stores:
            field = store.field
            field_type = field.type
            assert isinstance(field_type, stencil.FieldType)
            cast = self.builder.insert(
                UnrealizedConversionCastOp.get(field, _memref_type_for_field(field_type))
            )
            output_casts.append((cast.output, field_type.bounds.lb))

        lower = [self._const_index(lb) for lb in bounds.lb]
        upper = [self._const_index(ub) for ub in bounds.ub]

        if self.tile_sizes:
            loop_ivs, innermost = self._build_tiled_loops(rank, lower, upper, bounds)
        else:
            loop_ivs, innermost = self._build_parallel_loop(rank, lower, upper)

        self._lower_body(innermost, loop_ivs, input_casts, output_casts, stores)

        # Remove the now-redundant stencil ops.
        for store in stores:
            store.erase()
        apply_op.erase()

    def _collect_stores(self) -> list[stencil.StoreOp]:
        stores: list[stencil.StoreOp] = []
        for result in self.apply_op.results:
            result_stores = [
                use.operation
                for use in result.uses
                if isinstance(use.operation, stencil.StoreOp)
            ]
            other_uses = [
                use.operation
                for use in result.uses
                if not isinstance(use.operation, stencil.StoreOp)
            ]
            if other_uses:
                raise StencilLoweringError(
                    "stencil.apply results must only be consumed by stencil.store "
                    f"at lowering time; found use by {other_uses[0].name}"
                )
            if len(result_stores) != 1:
                raise StencilLoweringError(
                    "each stencil.apply result must be stored exactly once, found "
                    f"{len(result_stores)} stores"
                )
            stores.append(result_stores[0])
        if not stores:
            raise StencilLoweringError("stencil.apply with no results cannot be lowered")
        return stores

    # -- loop construction -----------------------------------------------------
    def _build_parallel_loop(
        self, rank: int, lower: list[SSAValue], upper: list[SSAValue]
    ) -> tuple[list[SSAValue], Block]:
        step = self._const_index(1)
        parallel = scf.ParallelOp(lower, upper, [step] * rank)
        if self.parallel_attr:
            parallel.attributes[self.parallel_attr] = UnitAttr()
        self.builder.insert(parallel)
        body = parallel.body.block
        return list(body.args), body

    def _build_tiled_loops(
        self,
        rank: int,
        lower: list[SSAValue],
        upper: list[SSAValue],
        bounds: stencil.StencilBoundsAttr,
    ) -> tuple[list[SSAValue], Block]:
        tile_sizes = list(self.tile_sizes or ())
        if len(tile_sizes) < rank:
            tile_sizes = tile_sizes + [tile_sizes[-1]] * (rank - len(tile_sizes))
        tile_steps = [self._const_index(max(1, t)) for t in tile_sizes[:rank]]
        parallel = scf.ParallelOp(lower, upper, tile_steps)
        if self.parallel_attr:
            parallel.attributes[self.parallel_attr] = UnitAttr()
        parallel.attributes["tiled"] = UnitAttr()
        self.builder.insert(parallel)
        tile_origins = list(parallel.body.block.args)

        inner_builder = Builder.at_end(parallel.body.block)
        one = inner_builder.insert(arith.ConstantOp.from_int(1, index)).result
        loop_ivs: list[SSAValue] = []
        current_block = parallel.body.block
        current_builder = inner_builder
        for dim in range(rank):
            tile_extent = current_builder.insert(
                arith.ConstantOp.from_int(max(1, tile_sizes[dim]), index)
            ).result
            tile_end = current_builder.insert(
                arith.AddiOp(tile_origins[dim], tile_extent)
            ).result
            dim_upper = current_builder.insert(
                arith.ConstantOp.from_int(bounds.ub[dim], index)
            ).result
            clamped = current_builder.insert(arith.MinSIOp(tile_end, dim_upper)).result
            for_op = scf.ForOp(tile_origins[dim], clamped, one)
            # Tag the intra-tile loop with the dimension it tiles: the
            # vectorizer uses this to recognise the min-clamped tile pattern
            # and collapse the (origin, intra-tile) loop pair back into one
            # whole-extent dimension.  The tag survives convert-scf-to-openmp
            # because loop bodies are moved, not cloned.
            for_op.attributes["tile_dim"] = IntAttr(dim)
            current_builder.insert(for_op)
            loop_ivs.append(for_op.induction_variable)
            current_block = for_op.body.block
            current_builder = Builder.at_end(current_block)
        # Terminate every level with a yield.
        block: Optional[Block] = current_block
        while block is not None and block is not parallel.parent_block:
            terminator_builder = Builder.at_end(block)
            terminator_builder.insert(scf.YieldOp([]))
            parent = block.parent_op
            block = parent.parent_block if parent is not None and parent is not parallel else None
        return loop_ivs, current_block

    # -- body lowering ------------------------------------------------------------
    def _lower_body(
        self,
        body_block: Block,
        loop_ivs: list[SSAValue],
        input_casts: list[tuple[SSAValue, tuple[int, ...]]],
        output_casts: list[tuple[SSAValue, tuple[int, ...]]],
        stores: list[stencil.StoreOp],
    ) -> None:
        apply_block = self.apply_op.body.block
        # Insert computation before the terminator (if one exists already).
        if body_block.ops and body_block.last_op is not None and isinstance(
            body_block.last_op, scf.YieldOp
        ):
            builder = Builder.before(body_block.last_op)
            needs_terminator = False
        else:
            builder = Builder.at_end(body_block)
            needs_terminator = True

        value_map: dict[SSAValue, SSAValue] = {}

        def index_const(value: int) -> SSAValue:
            return builder.insert(arith.ConstantOp.from_int(value, index)).result

        for op in apply_block.ops:
            if isinstance(op, stencil.AccessOp):
                temp = op.temp
                if not isinstance(temp, BlockArgument) or temp.block is not apply_block:
                    raise StencilLoweringError(
                        "stencil.access must read a stencil.apply region argument"
                    )
                memref_value, field_lb = input_casts[temp.index]
                indices = []
                for dim, offset in enumerate(op.offset):
                    shift = offset - field_lb[dim]
                    if shift == 0:
                        indices.append(loop_ivs[dim])
                    else:
                        shifted = builder.insert(
                            arith.AddiOp(loop_ivs[dim], index_const(shift))
                        )
                        indices.append(shifted.result)
                load = builder.insert(memref.LoadOp(memref_value, indices))
                value_map[op.result] = load.result
            elif isinstance(op, stencil.IndexOp):
                iv = loop_ivs[op.dim]
                offset_attr = op.attributes.get("offset")
                offset_value = offset_attr.data if offset_attr is not None else 0
                if offset_value:
                    iv = builder.insert(arith.AddiOp(iv, index_const(offset_value))).result
                value_map[op.result] = iv
            elif isinstance(op, stencil.ReturnOp):
                for result_index, returned in enumerate(op.operands):
                    memref_value, field_lb = output_casts[result_index]
                    indices = []
                    for dim in range(len(loop_ivs)):
                        shift = -field_lb[dim]
                        if shift == 0:
                            indices.append(loop_ivs[dim])
                        else:
                            shifted = builder.insert(
                                arith.AddiOp(loop_ivs[dim], index_const(shift))
                            )
                            indices.append(shifted.result)
                    builder.insert(
                        memref.StoreOp(value_map[returned], memref_value, indices)
                    )
            else:
                cloned = op.clone(value_map)
                builder.insert(cloned)

        if needs_terminator:
            builder.insert(scf.YieldOp([]))


def lower_stencil_to_scf(
    module: Operation,
    *,
    tile_sizes: Optional[Sequence[int]] = None,
    parallel_attr: Optional[str] = None,
) -> int:
    """Lower every stencil.apply under ``module``; return the number lowered."""
    applies = stencil.apply_ops_of(module)
    for apply_op in applies:
        _ApplyLowering(apply_op, tile_sizes, parallel_attr).run()
    # Loads whose temps are no longer used can be dropped.
    for op in list(module.walk()):
        if isinstance(op, stencil.LoadOp) and not op.result.uses:
            op.erase()
    return len(applies)


class ConvertStencilToSCFPass(ModulePass):
    """Lower stencil.apply/store to scf.parallel loop nests over memrefs."""

    name = "convert-stencil-to-scf"

    def __init__(
        self,
        tile_sizes: Optional[Sequence[int]] = None,
        parallel_attr: Optional[str] = None,
    ):
        self.tile_sizes = tile_sizes
        self.parallel_attr = parallel_attr

    def apply(self, ctx: MLContext, module: Operation) -> None:
        lower_stencil_to_scf(
            module, tile_sizes=self.tile_sizes, parallel_attr=self.parallel_attr
        )


class ConvertStencilToSCFTiledPass(ConvertStencilToSCFPass):
    """CPU lowering with loop tiling enabled (the paper's SMP-friendly pipeline)."""

    name = "convert-stencil-to-scf{tile}"

    def __init__(self, tile_sizes: Sequence[int] = (64, 64, 64)):
        super().__init__(tile_sizes=tile_sizes)


PassRegistry.register("convert-stencil-to-scf", ConvertStencilToSCFPass)
PassRegistry.register("convert-stencil-to-scf-tiled", ConvertStencilToSCFTiledPass)
