"""An Open-Earth-Compiler-style programmatic stencil frontend."""

from .builder import (
    BuilderError,
    FieldHandle,
    StencilExpressionBuilder,
    StencilProgramBuilder,
)

__all__ = [
    "StencilProgramBuilder", "StencilExpressionBuilder", "FieldHandle", "BuilderError",
]
