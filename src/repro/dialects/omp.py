"""A minimal omp dialect modelling OpenMP shared-memory parallel regions.

The paper relies on MLIR's ``convert-scf-to-openmp``; its key observed
limitation (one parallel region per ``scf.parallel``, causing barrier spin
time for the tracer-advection benchmark) is reproduced by keeping the same
one-region-per-loop structure here.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.attributes import IntAttr
from ..ir.context import Dialect
from ..ir.core import Block, Operation, Region, SSAValue
from ..ir.traits import IsTerminator
from ..ir.types import index


class ParallelOp(Operation):
    """An OpenMP parallel region; spawns a thread team."""

    name = "omp.parallel"

    def __init__(self, body: Optional[Region] = None, num_threads: Optional[int] = None):
        attributes = {}
        if num_threads is not None:
            attributes["num_threads"] = IntAttr(num_threads)
        if body is None:
            body = Region(Block())
        super().__init__(attributes=attributes, regions=[body])

    @property
    def body(self) -> Region:
        return self.regions[0]

    @property
    def num_threads(self) -> Optional[int]:
        attr = self.attributes.get("num_threads")
        return attr.data if isinstance(attr, IntAttr) else None


class WsLoopOp(Operation):
    """A work-shared loop nest inside an omp.parallel region."""

    name = "omp.wsloop"

    def __init__(
        self,
        lower_bounds: Sequence[SSAValue],
        upper_bounds: Sequence[SSAValue],
        steps: Sequence[SSAValue],
        body: Optional[Region] = None,
    ):
        rank = len(lower_bounds)
        if body is None:
            body = Region(Block(arg_types=[index] * rank))
        super().__init__(
            operands=[*lower_bounds, *upper_bounds, *steps],
            regions=[body],
        )

    @property
    def rank(self) -> int:
        return len(self.body.block.args)

    @property
    def lower_bounds(self) -> tuple[SSAValue, ...]:
        return self.operands[0 : self.rank]

    @property
    def upper_bounds(self) -> tuple[SSAValue, ...]:
        return self.operands[self.rank : 2 * self.rank]

    @property
    def steps(self) -> tuple[SSAValue, ...]:
        return self.operands[2 * self.rank : 3 * self.rank]

    @property
    def body(self) -> Region:
        return self.regions[0]


class YieldOp(Operation):
    """Terminator of omp region bodies."""

    name = "omp.yield"
    traits = frozenset([IsTerminator()])

    def __init__(self, values: Sequence[SSAValue] = ()):
        super().__init__(operands=list(values))


class TerminatorOp(Operation):
    """Terminator of an omp.parallel region."""

    name = "omp.terminator"
    traits = frozenset([IsTerminator()])

    def __init__(self):
        super().__init__()


class BarrierOp(Operation):
    """An explicit thread barrier (the kmp_wait_template hotspot in the paper)."""

    name = "omp.barrier"

    def __init__(self):
        super().__init__()


OMP = Dialect("omp", [ParallelOp, WsLoopOp, YieldOp, TerminatorOp, BarrierOp], [])
