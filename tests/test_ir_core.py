"""Tests of the SSA+Regions IR core: values, operations, blocks, regions."""

import pytest

from repro.dialects import arith, builtin, func, scf
from repro.ir import (
    Block,
    Builder,
    FunctionType,
    IRError,
    InsertPoint,
    IntegerAttr,
    Operation,
    Region,
    VerificationError,
    f64,
    i32,
    index,
)
from repro.ir.traits import IsTerminator, Pure, is_pure


def constant(value: int = 1):
    return arith.ConstantOp.from_int(value, i32)


class TestDefUse:
    def test_operands_register_uses(self):
        a = constant(1)
        b = constant(2)
        add = arith.AddiOp(a.result, b.result)
        assert len(a.result.uses) == 1
        assert a.result.uses[0].operation is add
        assert add.operands == (a.result, b.result)

    def test_set_operand_updates_uses(self):
        a, b, c = constant(1), constant(2), constant(3)
        add = arith.AddiOp(a.result, b.result)
        add.set_operand(0, c.result)
        assert not a.result.uses
        assert c.result.uses[0].operation is add

    def test_replace_by_rewrites_all_uses(self):
        a, b = constant(1), constant(2)
        add1 = arith.AddiOp(a.result, a.result)
        add2 = arith.AddiOp(a.result, b.result)
        a.result.replace_by(b.result)
        assert not a.result.uses
        assert all(op is b.result for op in add1.operands)
        assert add2.operands[0] is b.result

    def test_operands_setter_replaces_all(self):
        a, b, c = constant(1), constant(2), constant(3)
        add = arith.AddiOp(a.result, b.result)
        add.operands = [c.result, c.result]
        assert not a.result.uses and not b.result.uses
        assert len(c.result.uses) == 2

    def test_non_ssa_operand_rejected(self):
        with pytest.raises(IRError):
            Operation(operands=[42])  # type: ignore[list-item]


class TestBlocksAndRegions:
    def test_block_add_and_detach(self):
        block = Block()
        op = constant()
        block.add_op(op)
        assert op.parent is block
        block.detach_op(op)
        assert op.parent is None
        assert not block.ops

    def test_op_cannot_be_attached_twice(self):
        block1, block2 = Block(), Block()
        op = constant()
        block1.add_op(op)
        with pytest.raises(IRError):
            block2.add_op(op)

    def test_insert_before_and_after(self):
        block = Block()
        first, second, third = constant(1), constant(2), constant(3)
        block.add_op(second)
        block.insert_op_before(first, second)
        block.insert_op_after(third, second)
        assert block.ops == [first, second, third]

    def test_block_arguments(self):
        block = Block(arg_types=[i32, f64])
        assert [a.type for a in block.args] == [i32, f64]
        extra = block.add_arg(index)
        assert extra.index == 2
        block.erase_arg(extra)
        assert len(block.args) == 2

    def test_erase_used_block_arg_fails(self):
        block = Block(arg_types=[i32])
        arith.AddiOp(block.args[0], block.args[0])
        with pytest.raises(IRError):
            block.erase_arg(block.args[0])

    def test_single_block_region_accessors(self):
        region = Region(Block(ops=[constant()]))
        assert len(region.ops) == 1
        empty = Region()
        with pytest.raises(IRError):
            _ = empty.block

    def test_parent_navigation(self):
        module = builtin.ModuleOp([])
        kernel = func.FuncOp("f", FunctionType([], []))
        module.add_op(kernel)
        inner = constant()
        kernel.body.block.add_op(inner)
        assert inner.parent_op is kernel
        assert kernel.parent_op is module
        assert inner.get_parent_of_type(builtin.ModuleOp) is module


class TestWalkCloneErase:
    def test_walk_visits_nested_ops(self):
        module = builtin.ModuleOp([])
        kernel = func.FuncOp("f", FunctionType([], []))
        module.add_op(kernel)
        kernel.body.block.add_op(constant())
        kernel.body.block.add_op(func.ReturnOp([]))
        names = [op.name for op in module.walk()]
        assert names == ["builtin.module", "func.func", "arith.constant", "func.return"]

    def test_erase_with_uses_fails(self):
        a = constant()
        arith.AddiOp(a.result, a.result)
        with pytest.raises(IRError):
            a.erase()

    def test_erase_detaches_and_drops_uses(self):
        block = Block()
        a = constant()
        block.add_op(a)
        add = arith.AddiOp(a.result, a.result)
        block.add_op(add)
        add.erase()
        assert not a.result.uses
        assert block.ops == [a]

    def test_clone_remaps_nested_values(self):
        zero = constant(0)
        ten = constant(10)
        one = constant(1)
        loop = scf.ForOp(zero.result, ten.result, one.result)
        body = Builder.at_end(loop.body.block)
        doubled = body.insert(arith.AddiOp(loop.induction_variable, loop.induction_variable))
        body.insert(scf.YieldOp([]))
        cloned = loop.clone()
        assert cloned is not loop
        cloned_add = cloned.body.block.ops[0]
        # The cloned add must use the *cloned* induction variable.
        assert cloned_add.operands[0] is cloned.body.block.args[0]
        assert doubled.operands[0] is loop.body.block.args[0]

    def test_clone_preserves_attributes(self):
        op = constant(42)
        cloned = op.clone()
        assert cloned.attributes["value"] == IntegerAttr(42, i32)


class TestBuilder:
    def test_builder_positions(self):
        block = Block()
        builder = Builder.at_end(block)
        builder.insert(constant(1))
        third = builder.insert(constant(3))
        Builder.before(third).insert(constant(2))
        Builder.after(third).insert(constant(4))
        values = [op.attributes["value"].value for op in block.ops]
        assert values == [1, 2, 3, 4]

    def test_insert_point_after_last(self):
        block = Block(ops=[constant(1)])
        point = InsertPoint.after(block.ops[0])
        Builder(point).insert(constant(2))
        assert len(block.ops) == 2


class TestVerification:
    def test_valid_module_verifies(self):
        module = builtin.ModuleOp([func.FuncOp("f", FunctionType([], []))])
        module.ops[0].body.block.add_op(func.ReturnOp([]))
        module.verify()

    def test_terminator_must_be_last(self):
        kernel = func.FuncOp("f", FunctionType([], []))
        kernel.body.block.add_op(func.ReturnOp([]))
        kernel.body.block.add_op(constant())
        with pytest.raises(VerificationError):
            builtin.ModuleOp([kernel]).verify()

    def test_return_arity_checked(self):
        kernel = func.FuncOp("f", FunctionType([], [i32]))
        kernel.body.block.add_op(func.ReturnOp([]))
        with pytest.raises(VerificationError):
            builtin.ModuleOp([kernel]).verify()

    def test_use_before_def_rejected(self):
        block = Block()
        a = constant(1)
        b = constant(2)
        add = arith.AddiOp(a.result, b.result)
        block.add_op(add)
        block.add_op(a)
        block.add_op(b)
        module = builtin.ModuleOp([])
        kernel = func.FuncOp("f", FunctionType([], []), Region(block))
        module.add_op(kernel)
        with pytest.raises(VerificationError):
            module.verify()

    def test_mismatched_binary_operands_rejected(self):
        a = arith.ConstantOp.from_int(1, i32)
        b = arith.ConstantOp.from_float(1.0, f64)
        add = arith.AddiOp.create(
            operands=[a.result, b.result], result_types=[i32]
        )
        with pytest.raises(VerificationError):
            add.verify()


class TestTraits:
    def test_pure_detection(self):
        assert is_pure(constant())
        assert not is_pure(func.CallOp("f", [], []))

    def test_trait_queries(self):
        ret = func.ReturnOp([])
        assert ret.has_trait(IsTerminator)
        assert not ret.has_trait(Pure) or True  # ReturnOp purity is not required
        assert constant().has_trait(Pure)

    def test_has_parent_trait(self):
        ret = func.ReturnOp([])
        block = Block()
        block.add_op(ret)
        module = builtin.ModuleOp([])
        # func.return nested directly in a module (not a func.func) is invalid.
        module.body.block.add_op(constant())
        with pytest.raises(Exception):
            wrapper = func.FuncOp("f", FunctionType([], []))
            wrapper.body.block.add_op(scf.YieldOp([]))
            ret2 = func.ReturnOp([])
            scf_if = scf.IfOp(arith.ConstantOp.from_int(1, i32).result)
            scf_if.then_region.block.add_op(ret2)
            ret2.verify()
