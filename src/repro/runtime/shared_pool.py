"""A pool of reusable shared-memory blocks for per-rank field buffers.

PR 2's process runtime paid two extra memcpys per field per run: the executor
scattered each rank's slab into a throwaway NumPy array, the runtime copied
that array into a freshly allocated ``multiprocessing.shared_memory`` block,
and after the run it copied the block back into the throwaway before the
executor gathered from it — and every block was unlinked at the end of every
run.  This module removes all of that:

* the executor *scatters straight into* (and gathers straight out of) a
  leased block's NumPy view — the throwaway middle buffer and both extra
  memcpys are gone (``CommStatistics.bytes_elided`` counts what was saved);
* released blocks return to a free list keyed by capacity instead of being
  unlinked, so a repeated run — a benchmark's timing loop, a time-stepping
  driver — reuses the same OS objects (``shared_blocks_reused``).

The pool is parent-side only: workers keep attaching by
:class:`~repro.runtime.mp_world.SharedFieldSpec` exactly as before and never
learn whether a block is fresh or recycled.
"""

from __future__ import annotations

import threading

import numpy as np

from .mp_world import SharedFieldSpec


class LeasedField:
    """One leased block viewed as a NumPy array (same surface as SharedField)."""

    __slots__ = ("_block", "array", "_pool", "_size_class", "_generation",
                 "reused")

    def __init__(self, block, array: np.ndarray, pool: "SharedFieldPool",
                 size_class: int, generation: int, reused: bool):
        self._block = block
        self.array = array
        self._pool = pool
        # The free-list key.  SharedMemory may round the allocation up to a
        # page multiple (block.size > requested), so reuse must match on the
        # *requested* class or small blocks would never be found again.
        self._size_class = size_class
        # Which pool epoch the block belongs to; a clear() while this lease
        # is outstanding closes the block, so release() must not re-pool it.
        self._generation = generation
        #: Whether this lease recycled a block from an earlier run.
        self.reused = reused

    @property
    def spec(self) -> SharedFieldSpec:
        return SharedFieldSpec(
            name=self._block.name,
            shape=tuple(self.array.shape),
            dtype=self.array.dtype.str,
        )

    def release(self) -> None:
        """Return the block to the pool's free list (it is *not* unlinked)."""
        self.array = None
        self._pool._give_back(self._block, self._size_class, self._generation)


class SharedFieldPool:
    """Thread-safe free list of shared-memory blocks, keyed by capacity."""

    def __init__(self):
        self._lock = threading.Lock()
        self._free: dict[int, list] = {}
        self._owned: list = []
        self._generation = 0

    @property
    def generation(self) -> int:
        """The current pool epoch; bumped by :meth:`clear`.

        Long-lived holders of leases (a :class:`repro.core.session.Plan`
        keeps its blocks across runs) compare this against the epoch they
        leased under to detect that a ``clear()`` invalidated their buffers.
        """
        return self._generation

    def lease(self, shape, dtype) -> LeasedField:
        """A block big enough for ``shape x dtype``, recycled when possible.

        The lease's array view has exactly the requested shape; a recycled
        block only needs sufficient capacity, so one pool serves runs of
        different rank counts and field sizes without realloc churn.
        Scatter writes once into the view instead of once into a throwaway
        array plus once into the block, and gather reads it back without the
        symmetric copy-out — two memcpys of the payload are elided per lease
        (counted per run by the executor as ``CommStatistics.bytes_elided``).
        """
        from multiprocessing import shared_memory

        dtype = np.dtype(dtype)
        nbytes = max(int(np.prod(shape)) * dtype.itemsize, 1)
        size = _capacity_class(nbytes)
        with self._lock:
            free = self._free.get(size)
            reused = bool(free)
            if free:
                block = free.pop()
            else:
                block = shared_memory.SharedMemory(create=True, size=size)
                self._owned.append(block)
            generation = self._generation
        array = np.ndarray(shape, dtype=dtype, buffer=block.buf)
        return LeasedField(block, array, self, size, generation, reused)

    def _give_back(self, block, size_class: int, generation: int) -> None:
        with self._lock:
            if generation != self._generation:
                # clear() ran while the lease was outstanding: the block is
                # already closed and unlinked, so re-pooling it would hand a
                # dead buffer to the next lease.
                return
            self._free.setdefault(size_class, []).append(block)

    def clear(self) -> None:
        """Close and unlink every block the pool ever created.

        Outstanding leases become invalid (their epoch is retired), so their
        later ``release()`` is a no-op instead of re-pooling a dead block.
        """
        with self._lock:
            for block in self._owned:
                try:
                    block.close()
                    block.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
            self._owned.clear()
            self._free.clear()
            self._generation += 1


def _capacity_class(nbytes: int) -> int:
    """Round a request up to its reuse class (next power of two >= 4 KiB).

    Rounding makes near-miss sizes (a 130x130 run after a 128x128 one) hit
    the free list instead of allocating a fresh block for every new shape.
    """
    size = 4096
    while size < nbytes:
        size *= 2
    return size


_FIELD_POOL: SharedFieldPool = SharedFieldPool()


def shared_field_pool() -> SharedFieldPool:
    """The process-wide pool used by ``run_distributed(runtime="processes")``."""
    return _FIELD_POOL
