"""PSyclone-style Fortran kernel through the shared stack (paper §5.2, §6.2).

Takes the Piacsek-Williams advection kernel as Fortran source, parses it into
PSy-IR, extracts the stencils, compiles them through the shared stencil stack,
executes the result, and compares against the reference Fortran semantics.
Also prints the modelled throughputs of fig. 10a and Table 1 for this kernel.

Run with:  python examples/psyclone_advection.py
"""

import numpy as np

from repro.core import Session, cpu_target
from repro.frontends.psyclone import PsycloneXDSLBackend, parse_fortran, reference_execute
from repro.machine import (
    ALVEO_U280,
    ARCHER2_NODE,
    CRAY_PSYCLONE,
    GNU_PSYCLONE,
    XDSL_PSYCLONE,
    characterize_module,
    estimate_cpu_node,
    estimate_fpga,
)
from repro.transforms.stencil import fuse_applies, infer_shapes
from repro.workloads import pw_advection

SHAPE = (16, 16, 8)


def main() -> None:
    workload = pw_advection(shape=SHAPE, iterations=2)
    schedule = parse_fortran(workload.source)
    print(f"subroutine {schedule.name}: arrays {schedule.array_names()}")

    # Compile through the shared stack and execute via the Session API: the
    # PSyclone backend produces a CompiledProgram, the session plan runs it.
    backend = PsycloneXDSLBackend(dtype=np.float64)
    program = backend.compile(schedule, SHAPE, target=cpu_target())
    arrays = workload.arrays(dtype=np.float64)
    reference = {name: array.copy() for name, array in arrays.items()}

    with Session() as session:
        backend.run(
            program,
            [arrays[name] for name in schedule.array_names()],
            workload.iterations,
            function=schedule.name,
            session=session,
        )
    reference_execute(schedule, reference, halo=1, iterations=workload.iterations)
    error = max(np.abs(reference[name] - arrays[name]).max() for name in arrays)
    print(f"shared-stack vs reference Fortran semantics: max |difference| = {error:.3e}")
    assert error < 1e-10

    # Stencil fusion: the three independent PW stencils become one region.
    module = workload.build_module(dtype=np.float64)
    infer_shapes(module)
    fused = fuse_applies(module)
    characteristics = characterize_module(module)
    print(f"fused stencil groups: {fused}; regions after fusion: "
          f"{characteristics.stencil_regions}")

    # Modelled single-node CPU throughput (fig. 10a, pw-134m sizing).
    from repro.evaluation.experiments import _psyclone_characteristics

    paper_chars = _psyclone_characteristics("pw", (1024, 512, 256))
    print("\nmodelled ARCHER2 throughput (pw-134m):")
    for profile in (CRAY_PSYCLONE, XDSL_PSYCLONE, GNU_PSYCLONE):
        estimate = estimate_cpu_node(paper_chars, 1, ARCHER2_NODE, profile)
        print(f"  {profile.name:<15}: {estimate.gpoints_per_second:5.2f} GPts/s")

    # Modelled FPGA throughput (Table 1).
    initial = estimate_fpga(paper_chars, 1, ALVEO_U280, optimized=False)
    optimized = estimate_fpga(paper_chars, 1, ALVEO_U280, optimized=True)
    print("\nmodelled Alveo U280 throughput (pw-134m):")
    print(f"  initial   : {initial.gpoints_per_second:.2e} GPts/s")
    print(f"  optimized : {optimized.gpoints_per_second:.2e} GPts/s "
          f"({optimized.gpoints_per_second / initial.gpoints_per_second:.0f}x)")


if __name__ == "__main__":
    main()
