"""The shared compilation stack: targets, pipeline, sessions and executors.

This is the paper's primary contribution packaged behind a small API::

    from repro.core import ExecutionConfig, Session, compile_stencil_program, dmp_target

    program = compile_stencil_program(stencil_module, dmp_target((2, 2)))
    with Session(ExecutionConfig(runtime="processes")) as session:
        plan = session.plan(program)
        plan.run([u0, u1], [timesteps])      # repeatable, amortized hot path

The legacy one-shot helpers ``run_local`` / ``run_distributed`` are
deprecated shims over a default session (bit-identical results).
"""

from .config import (
    EXECUTION_BACKENDS,
    EXECUTION_CODEGEN,
    EXECUTION_RUNTIMES,
    EXECUTION_TRACE,
    ExecutionConfig,
    ExecutionError,
    RuntimeFallbackWarning,
)
from .executor import (
    ExecutionResult,
    gather_field,
    local_field_slices,
    run_distributed,
    run_local,
    scatter_field,
)
from .pipeline import CompilationError, CompiledProgram, compile_stencil_program
from .session import Plan, Session, SessionCounters, default_session
from .targets import (
    Target,
    TargetKind,
    cpu_target,
    dmp_target,
    fpga_target,
    gpu_target,
    smp_target,
)

__all__ = [
    "Target", "TargetKind",
    "cpu_target", "smp_target", "dmp_target", "gpu_target", "fpga_target",
    "CompiledProgram", "compile_stencil_program", "CompilationError",
    "ExecutionConfig", "Session", "Plan", "SessionCounters", "default_session",
    "run_local", "run_distributed", "scatter_field", "gather_field",
    "local_field_slices",
    "ExecutionResult", "ExecutionError", "RuntimeFallbackWarning",
    "EXECUTION_BACKENDS", "EXECUTION_RUNTIMES", "EXECUTION_CODEGEN",
    "EXECUTION_TRACE",
]
