"""The builtin dialect: the module container and generic conversion casts."""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.attributes import Attribute, StringAttr, TypeAttribute
from ..ir.builder import build_single_block_region
from ..ir.context import Dialect
from ..ir.core import Operation, Region, SSAValue
from ..ir.traits import IsolatedFromAbove, Pure


class ModuleOp(Operation):
    """Top-level container for a compilation unit."""

    name = "builtin.module"
    traits = frozenset([IsolatedFromAbove()])

    def __init__(self, ops: Sequence[Operation] = (), sym_name: Optional[str] = None):
        attributes: dict[str, Attribute] = {}
        if sym_name is not None:
            attributes["sym_name"] = StringAttr(sym_name)
        super().__init__(
            attributes=attributes,
            regions=[build_single_block_region(ops=ops)],
        )

    @property
    def body(self) -> Region:
        return self.regions[0]

    @property
    def ops(self) -> list[Operation]:
        return self.body.block.ops

    def add_op(self, op: Operation) -> Operation:
        return self.body.block.add_op(op)

    def verify_(self) -> None:
        if len(self.regions) != 1:
            raise ValueError("builtin.module must have exactly one region")
        if len(self.regions[0].blocks) != 1:
            raise ValueError("builtin.module region must have exactly one block")


class UnrealizedConversionCastOp(Operation):
    """A cast between types that have no registered conversion.

    Used exactly as in the paper's fig. 4 to view a ``!stencil.field`` as a
    ``memref`` before handing it to ``dmp.swap``.
    """

    name = "builtin.unrealized_conversion_cast"
    traits = frozenset([Pure()])

    def __init__(self, inputs: Sequence[SSAValue], result_types: Sequence[TypeAttribute]):
        super().__init__(operands=list(inputs), result_types=list(result_types))

    @staticmethod
    def get(value: SSAValue, result_type: TypeAttribute) -> "UnrealizedConversionCastOp":
        return UnrealizedConversionCastOp([value], [result_type])

    @property
    def input(self) -> SSAValue:
        return self.operands[0]

    @property
    def output(self) -> SSAValue:
        return self.results[0]


Builtin = Dialect("builtin", [ModuleOp, UnrealizedConversionCastOp], [])
